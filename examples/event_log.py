#!/usr/bin/env python
"""Narrated run: the mechanism's decisions as they happen.

Attaches an event log to the SSMT engine and prints the life story of
one difficult branch: classification, build, promotion, spawns, aborts
and consumed predictions.

Run:  python examples/event_log.py [benchmark] [instructions]
"""

import sys

from repro.branch.unit import BranchPredictorComplex
from repro.core.events import EventLog
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.uarch.timing import OoOTimingModel
from repro.workloads import BENCHMARK_NAMES, benchmark_trace


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "comp"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}")

    trace = benchmark_trace(name, length)
    log = EventLog(capacity=100_000)
    engine = SSMTEngine(SSMTConfig(), initial_memory=trace.initial_memory,
                        event_log=log)
    OoOTimingModel().run(trace, BranchPredictorComplex(), listener=engine)

    print(f"{name}: {len(trace)} instructions")
    print("event totals:", log.summary())

    promotions = log.of_kind("promote")
    if not promotions:
        print("\n(no promotions at this trace length — try more "
              "instructions)")
        return
    branch = promotions[0].term_pc
    story = log.for_branch(branch)
    print(f"\nlife story of terminating branch @pc {branch} "
          f"({len(story)} events; first 30 shown):")
    for event in story[:30]:
        print(f"  {event}")

    predictions = [e for e in story if e.kind == "prediction"]
    if predictions:
        consumed = len(predictions)
        helpful = sum(1 for e in predictions if "hw_mis=True" in e.detail
                      and "correct=True" in e.detail)
        print(f"\n{consumed} predictions consumed for this branch; "
              f"{helpful} corrected a hardware mispredict.")


if __name__ == "__main__":
    main()
