#!/usr/bin/env python
"""Figure 7 in miniature: realistic SSMT speed-up over suite benchmarks.

Runs the baseline, the mechanism without pruning, with pruning, and the
overhead-only configuration for a few suite benchmarks, printing the bar
values the paper plots.

Run:  python examples/suite_speedup.py [instructions] [bench1 bench2 ...]

Set ``$REPRO_JOBS`` to fan the grid across a process pool.
"""

import sys

from repro.analysis import format_table
from repro.analysis.experiments import figure7_realistic
from repro.workloads import BENCHMARK_NAMES

DEFAULT_BENCHMARKS = ("comp", "gcc", "mcf_2k", "eon_2k", "perlbmk_2k")


def main():
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    names = tuple(sys.argv[2:]) or DEFAULT_BENCHMARKS
    unknown = [n for n in names if n not in BENCHMARK_NAMES]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}")

    print(f"running {len(names)} benchmarks x 4 machine configurations "
          f"({length} instructions each)...")
    results = figure7_realistic(names, trace_length=length,
                                build_latency=100)

    rows = []
    for r in results:
        metrics = r.pruning_metrics
        rows.append([
            r.benchmark,
            round(r.baseline_ipc, 2),
            round(r.speedup_no_pruning, 3),
            round(r.speedup_pruning, 3),
            round(r.speedup_overhead_only, 3),
            metrics["builder"]["built"],
            metrics["spawn"]["spawned"],
        ])
    print()
    print(format_table(
        ["bench", "base IPC", "no-pruning", "pruning", "overhead-only",
         "routines", "spawns"],
        rows, title="Realistic difficult-path SSMT speed-up (paper Fig. 7)"))
    print("\nExpected shape: pruning >= no-pruning > overhead-only ~ 1.0;"
          "\nmcf-like benchmarks also gain from microthread prefetching.")


if __name__ == "__main__":
    main()
