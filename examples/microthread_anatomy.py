#!/usr/bin/env python
"""Anatomy of a microthread: extraction, optimization, pruning.

Builds microthreads for the same difficult branch with the MCB
optimizations toggled, and shows how move elimination, constant
propagation and pruning transform the routine — ending with the
timeliness consequence (shorter dependence chain = earlier prediction).

Run:  python examples/microthread_anatomy.py
"""

from repro.core.builder import BuilderConfig, MicrothreadBuilder
from repro.core.path import PathTracker
from repro.core.prb import PostRetirementBuffer
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.valuepred import PredictorTrainer

# The branch predicate flows through: loop counter -> scaled index ->
# address -> load -> compare.  A MOV and a foldable LI chain are included
# so the optimizers have something to chew on.
KERNEL = """
.data table 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 2000
loop:
    mov r3, r1             ; move elimination target
    li r4, 3
    mul r3, r3, r4
    andi r3, r3, 63
    li r5, &table
    add r6, r5, r3
    ld r7, 0(r6)
    jmp hop
hop:
    li r8, 40              ; constant chain: 40 + 10 = 50
    addi r8, r8, 10
    blt r7, r8, below      ; terminating branch
    addi r9, r9, 1
below:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


def build_with(config, trace, instance=30):
    tracker = PathTracker(4)
    prb = PostRetirementBuffer(512)
    trainer = PredictorTrainer()
    builder = MicrothreadBuilder(config)
    target_pc = next(i.pc for i in assemble(KERNEL).instructions
                     if i.opcode.name == "BLT" and i.rs1 == 7)
    count = 0
    for idx, rec in enumerate(trace):
        flags = trainer.observe(rec)
        prb.insert(rec, idx, *flags)
        event = tracker.observe(rec, idx)
        if rec.pc == target_pc and rec.is_path_terminating:
            count += 1
            if count == instance:
                return builder.request(event, prb, now_cycle=0), builder
    raise SystemExit("instance not reached")


def describe(label, thread):
    print(f"\n=== {label} ===")
    print(f"routine size: {thread.routine_size} instructions, "
          f"longest dependence chain: {thread.longest_chain}")
    print(f"live-in registers: {thread.live_in_regs or 'none'}, "
          f"spawn pc: {thread.spawn_pc}, "
          f"separation: {thread.separation} instructions")
    print(thread.listing())


def main():
    trace = run_program(assemble(KERNEL), max_instructions=40_000)

    raw, _ = build_with(BuilderConfig(pruning=False, move_elimination=False,
                                      constant_propagation=False), trace)
    describe("raw extraction (no optimizations)", raw)

    optimized, _ = build_with(BuilderConfig(pruning=False), trace)
    describe("after move elimination + constant propagation", optimized)

    pruned, builder = build_with(BuilderConfig(pruning=True), trace)
    describe("after pruning (Vp_Inst/Ap_Inst)", pruned)
    print(f"\nbuilder counters: {builder.stats.moves_eliminated} moves "
          f"eliminated, {builder.stats.constants_folded} constants folded, "
          f"{builder.stats.value_pruned} value-pruned, "
          f"{builder.stats.address_pruned} address-pruned")

    print("\nWhy it matters: the pruned routine's shorter dependence chain "
          "means the\nStore_PCache completes sooner, turning late "
          "predictions into early ones\n(paper Figures 8 and 9).")


if __name__ == "__main__":
    main()
