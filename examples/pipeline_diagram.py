#!/usr/bin/env python
"""Pipeline diagrams: watch a misprediction bubble disappear.

Renders instruction-by-instruction pipeline timing around a difficult
branch, first under the baseline machine (20-cycle misprediction
bubbles) and then under the SSMT mechanism once microthread predictions
kick in.

Run:  python examples/pipeline_diagram.py
"""

from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.pipeline_view import (
    PipelineRecorder,
    render_pipeline,
    summarize_stalls,
)
from repro.uarch.timing import OoOTimingModel

KERNEL = """
.data table 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 100000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &table
    add r5, r4, r3
    ld r6, 0(r5)
    jmp hop
hop:
    li r7, 50
    blt r6, r7, below
    addi r8, r8, 1
below:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


def main():
    trace = run_program(assemble(KERNEL), max_instructions=30_000)
    window_start = 25_000  # well past predictor and Path Cache warm-up
    window = 30

    recorder = PipelineRecorder(start=window_start, count=window)
    OoOTimingModel().run(trace, BranchPredictorComplex(), listener=recorder)
    print("=== baseline machine (hardware hybrid only) ===")
    print(render_pipeline(recorder.records))
    print("mean stage gaps:", {k: round(v, 1) for k, v in
                               summarize_stalls(recorder.records).items()})

    engine = SSMTEngine(SSMTConfig(n=4, training_interval=8,
                                   build_latency=20),
                        initial_memory=trace.initial_memory)
    recorder = PipelineRecorder(start=window_start, count=window,
                                chain=engine)
    OoOTimingModel().run(trace, BranchPredictorComplex(), listener=recorder)
    print("\n=== with difficult-path microthreads ===")
    print(render_pipeline(recorder.records))
    print("mean stage gaps:", {k: round(v, 1) for k, v in
                               summarize_stalls(recorder.records).items()})
    print("\nReading: the baseline shows fetch gaps after each mispredicted "
          "'blt r6, r7'\n(the 20-cycle bubble); with microthread predictions "
          "the gap collapses or\nshrinks to the late-recovery distance.")


if __name__ == "__main__":
    main()
