#!/usr/bin/env python
"""Ramp-up dynamics: watching the Path Cache learn.

The hardware mechanism starts cold: paths must occur 32 times before
classification, the builder constructs one routine at a time, and only
then do predictions flow.  This example plots windowed speed-up over the
run for (a) the dynamic mechanism and (b) the profile-guided variant
that starts with a full MicroRAM — making the ramp visible.

Run:  python examples/rampup.py [benchmark] [instructions]
"""

import sys

from repro.analysis.timeline import sparkline, speedup_timeline
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.core.static import (
    StaticSSMTEngine,
    prebuild_microthreads,
    profile_difficult_paths,
)
from repro.workloads import BENCHMARK_NAMES, benchmark_trace


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "comp"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 300_000
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}")
    window = max(10_000, length // 15)

    trace = benchmark_trace(name, length)
    config = SSMTConfig()

    print(f"{name}: windowed speed-up over the baseline "
          f"({window}-instruction windows)\n")

    dynamic = speedup_timeline(
        trace, lambda: SSMTEngine(config, trace.initial_memory), window)
    values = [s for _, s in dynamic]
    print(f"dynamic        {sparkline(values, lo=0.95)}  "
          f"first={values[0]:.3f} last={values[-1]:.3f}")

    paths = profile_difficult_paths(trace, n=config.n,
                                    threshold=config.difficulty_threshold)
    threads = prebuild_microthreads(trace, paths, config)
    static = speedup_timeline(
        trace,
        lambda: StaticSSMTEngine(threads, config, trace.initial_memory),
        window)
    values = [s for _, s in static]
    print(f"profile-guided {sparkline(values, lo=0.95)}  "
          f"first={values[0]:.3f} last={values[-1]:.3f}")

    print("\nReading: the dynamic run climbs from ~1.0 as paths get "
          "classified and\nroutines built; the profile-guided run starts "
          "near its steady state.")


if __name__ == "__main__":
    main()
