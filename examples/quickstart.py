#!/usr/bin/env python
"""Quickstart: assemble a kernel, measure the baseline, run the SSMT
difficult-path machine, and inspect what it built.

Run:  python examples/quickstart.py
"""

from repro import assemble, run_program
from repro.analysis.experiments import baseline_run
from repro.core.ssmt import SSMTConfig, run_ssmt

# A loop whose branch tests a pseudo-random table value: the hardware
# hybrid cannot learn it, but the whole predicate (index hash, address,
# load, compare) is computable ahead of time by a microthread.
KERNEL = """
.data table 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 100000
loop:
    li r14, 2654435761     ; pseudo-random index: hash the loop counter
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &table
    add r5, r4, r3
    ld r6, 0(r5)           ; the difficult branch's input value
    jmp hop1
hop1:
    addi r9, r9, 1         ; unrelated work separating producer from branch
    jmp hop2
hop2:
    li r7, 50
    blt r6, r7, below      ; <-- the difficult branch
    addi r8, r8, 1
below:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


def main():
    program = assemble(KERNEL, name="quickstart")
    trace = run_program(program, max_instructions=60_000)

    base = baseline_run(trace)
    print(f"baseline:  IPC {base.ipc:.2f}, "
          f"{base.hw_mispredicts} mispredictions "
          f"({100 * base.mispredict_rate():.1f}% of branches)")

    config = SSMTConfig(n=4, training_interval=8, build_latency=20)
    result, engine = run_ssmt(trace, config)
    print(f"with SSMT: IPC {result.ipc:.2f}, "
          f"{result.effective_mispredicts} effective mispredictions")
    print(f"speed-up:  {result.ipc / base.ipc:.3f}x")

    print("\n--- what the machine did ---")
    spawn = engine.spawner.stats
    print(f"routines built:      {engine.builder.stats.built}")
    print(f"spawn attempts:      {spawn.attempts} "
          f"({spawn.pre_allocation_aborts} aborted pre-allocation)")
    print(f"spawned:             {spawn.spawned} "
          f"({spawn.aborted_active} aborted in flight)")
    print(f"prediction arrivals: {dict(engine.prediction_kind_counts)}")
    print(f"microthread accuracy: "
          f"{engine.correct_microthread_predictions} correct / "
          f"{engine.incorrect_microthread_predictions} wrong")

    # Show one of the routines it constructed.
    for routines in engine.microram._by_spawn_pc.values():
        thread = routines[0]
        print(f"\n--- a built microthread (path {thread.key.branches} -> "
              f"branch at pc {thread.term_pc}) ---")
        print(f"spawn pc {thread.spawn_pc}, separation "
              f"{thread.separation} instructions, "
              f"live-ins {thread.live_in_regs}")
        print(thread.listing())
        break


if __name__ == "__main__":
    main()
