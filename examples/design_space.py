#!/usr/bin/env python
"""Design-space exploration: the configurations the paper could not print.

The paper notes it "simulated many other configurations that we cannot
report due to space limitations" (§5.2).  This example sweeps the main
knobs of the mechanism — path length n, difficulty threshold T, the
training interval and machine width — and prints the sensitivity tables.

Run:  python examples/design_space.py [instructions]
"""

import sys

from repro.analysis.sweeps import (
    sweep_machine_width,
    sweep_report,
    sweep_ssmt_knob,
)

BENCHMARKS = ("comp", "gcc", "mcf_2k")


def main():
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    print(f"sweeping over {', '.join(BENCHMARKS)} "
          f"({length} instructions each)...\n")

    points = sweep_ssmt_knob("n", [4, 10, 16], BENCHMARKS, length)
    print(sweep_report(points, "path length n"))
    print()

    points = sweep_ssmt_knob("difficulty_threshold", [0.05, 0.10, 0.15],
                             BENCHMARKS, length)
    print(sweep_report(points, "difficulty threshold T"))
    print()

    points = sweep_ssmt_knob("training_interval", [8, 32, 128],
                             BENCHMARKS, length)
    print(sweep_report(points, "training interval"))
    print()

    points = sweep_ssmt_knob("n_contexts", [4, 32, 128], BENCHMARKS, length)
    print(sweep_report(points, "microcontexts"))
    print()

    points = sweep_machine_width([4, 8, 16], BENCHMARKS, length)
    print(sweep_report(points, "machine width"))
    print("\nNote: each width compares against its own same-width baseline.")


if __name__ == "__main__":
    main()
