#!/usr/bin/env python
"""Tour of the hand-written assembly kernels.

Runs each kernel under the baseline machine and the SSMT mechanism
(with and without the throttling extension) — showing where the paper's
mechanism wins (pointer chasing, partitioning), where it struggles
(tight loops whose branches the hybrid already predicts), and how
throttling contains the losses.

Run:  python examples/kernels_tour.py [instructions]
"""

import sys

from repro.analysis import format_table
from repro.analysis.experiments import baseline_run
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.sim.functional import run_program
from repro.workloads import KERNEL_NAMES, build_kernel


def main():
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    rows = []
    for name in KERNEL_NAMES:
        trace = run_program(build_kernel(name), max_instructions=length)
        base = baseline_run(trace)
        config = SSMTConfig(n=6, training_interval=8, build_latency=20)
        plain, _ = run_ssmt(trace, config)
        throttled_config = SSMTConfig(
            n=6, training_interval=8, build_latency=20,
            throttle_enabled=True)
        throttled, engine = run_ssmt(trace, throttled_config)
        rows.append([
            name,
            round(base.ipc, 2),
            round(100 * (1 - base.mispredict_rate()), 1),
            round(plain.ipc / base.ipc, 3),
            round(throttled.ipc / base.ipc, 3),
            engine.throttled_paths,
        ])
    print(format_table(
        ["kernel", "base IPC", "accuracy%", "SSMT", "SSMT+throttle",
         "throttled paths"],
        rows, title="Assembly kernels under difficult-path SSMT"))
    print("\nReading: data-dependent kernels (partition, histogram, "
          "linked_list) gain;\ntight already-predictable kernels lose to "
          "overhead unless throttled —\nthe trade-off the paper discusses "
          "in §1 and §5.3.")


if __name__ == "__main__":
    main()
