#!/usr/bin/env python
"""Compile-time difficult-path microthreading (extension).

The paper's hardware mechanism identifies difficult paths at run time
with a finite Path Cache and pays a warm-up ramp plus build latency.
This example runs the profile-guided variant: an offline pass finds
every difficult path (no capacity limit), pre-builds the microthreads,
and the machine starts with a full static MicroRAM.

Run:  python examples/profile_guided.py [benchmark] [instructions]
"""

import sys

from repro.analysis import format_table
from repro.analysis.experiments import baseline_run
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.core.static import (
    prebuild_microthreads,
    profile_difficult_paths,
    run_profile_guided,
)
from repro.workloads import BENCHMARK_NAMES, benchmark_trace


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}")

    trace = benchmark_trace(name, length)
    config = SSMTConfig()

    print(f"profiling {name} ({length} instructions)...")
    paths = profile_difficult_paths(trace, n=config.n,
                                    threshold=config.difficulty_threshold)
    print(f"  {len(paths)} difficult paths found; worst offenders:")
    for p in paths[:5]:
        print(f"    branch pc {p.key.term_pc}: {p.mispredicts} mispredicts "
              f"over {p.occurrences} occurrences "
              f"({100 * p.mispredict_rate:.0f}%)")

    threads = prebuild_microthreads(trace, paths, config)
    print(f"  {len(threads)} microthreads pre-built "
          f"(mean size {sum(t.routine_size for t in threads) / max(1, len(threads)):.1f} insts)")

    base = baseline_run(trace)
    dynamic, _ = run_ssmt(trace, config)
    static, engine = run_profile_guided(trace, config)

    print()
    print(format_table(
        ["configuration", "IPC", "speed-up"],
        [
            ["baseline (Table 3)", round(base.ipc, 2), 1.0],
            ["dynamic SSMT (the paper)", round(dynamic.ipc, 2),
             round(dynamic.ipc / base.ipc, 3)],
            ["profile-guided SSMT", round(static.ipc, 2),
             round(static.ipc / base.ipc, 3)],
        ],
        title=f"{name}: dynamic vs compile-time identification"))
    print("\nThe gap is the cost of run-time identification: Path Cache "
          "capacity,\ntraining intervals and builder latency — the "
          "future-work direction the\npaper sketches in §5.2/§6.")


if __name__ == "__main__":
    main()
