#!/usr/bin/env python
"""Difficult-path profiling (the paper's Tables 1-2) on a suite benchmark.

Shows why classifying predictability *per path* beats classifying per
branch: difficult branches hide easy paths, and easy branches hide
difficult paths.

Run:  python examples/difficult_paths.py [benchmark] [instructions]
"""

import sys

from repro.analysis import (
    characterize_paths,
    collect_control_events,
    coverage_analysis,
    format_table,
)
from repro.workloads import BENCHMARK_NAMES, benchmark_trace


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {', '.join(BENCHMARK_NAMES)}")

    print(f"profiling {name} over {length} instructions...")
    events = collect_control_events(benchmark_trace(name, length))

    # Table 1 flavour: path population vs n
    rows = []
    for n in (4, 10, 16):
        c = characterize_paths(events, n)
        rows.append([n, c.unique_paths, round(c.mean_scope, 1),
                     c.difficult_paths[0.05], c.difficult_paths[0.10],
                     c.difficult_paths[0.15]])
    print()
    print(format_table(
        ["n", "unique paths", "mean scope", "difficult T=.05",
         "T=.10", "T=.15"], rows,
        title=f"Path characterization of {name} (paper Table 1)"))

    # Table 2 flavour: branch vs path coverage
    results = coverage_analysis(events, ns=(4, 10, 16), thresholds=(0.10,))
    rows = [[r.scheme, round(100 * r.mispredict_coverage, 1),
             round(100 * r.execution_coverage, 1), r.difficult_count]
            for r in results]
    print()
    print(format_table(
        ["classification", "mispredict coverage %", "execution coverage %",
         "difficult count"], rows,
        title=f"Coverage of {name} at T=0.10 (paper Table 2)"))
    print("\nReading: going from 'branch' to 'path(16)' should raise "
          "misprediction\ncoverage while covering *fewer* dynamic branch "
          "executions — the paper's\ncase for attacking difficult paths "
          "rather than difficult branches.")


if __name__ == "__main__":
    main()
