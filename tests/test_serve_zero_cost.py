"""``repro.serve`` must be zero-cost when unused.

Only the ``serve`` and ``loadtest`` subcommands import the service
package (both defer the import into their command functions).  Every
other entry point — ``import repro.cli``, building the parser, running
a sweep through :mod:`repro.parallel` — must keep ``repro.serve`` (and
``asyncio``-based HTTP machinery) out of ``sys.modules``, same rule as
the predictor zoo (``test_zoo_zero_cost.py``).
"""

import json
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _loaded_serve_modules(program: str) -> list:
    probe = (
        program + "\n"
        "import sys\n"
        "loaded = [m for m in sys.modules if m.startswith('repro.serve')]\n"
        "print(__import__('json').dumps(loaded))\n"
    )
    proc = subprocess.run([sys.executable, "-c", probe],
                          capture_output=True, text=True,
                          env={"PYTHONPATH": SRC, "PATH": ""},
                          check=True)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_cli_import_does_not_load_serve():
    assert _loaded_serve_modules("import repro.cli") == []


def test_parser_build_does_not_load_serve():
    # Building --help for every subcommand touches all parser wiring.
    assert _loaded_serve_modules(
        "import repro.cli\n"
        "repro.cli.build_parser()") == []


def test_sweep_run_does_not_load_serve():
    assert _loaded_serve_modules(
        "from repro.parallel import SweepRunner, build_grid\n"
        "SweepRunner(jobs=1).run(build_grid(['comp'], 1000))") == []
