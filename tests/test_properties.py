"""Property-based tests (hypothesis) on core data structures and
invariants."""

import random
from types import SimpleNamespace

from hypothesis import given
from hypothesis import strategies as st

from repro.branch.base import SaturatingCounterTable
from repro.core.microthread import MicroOp, topological_order
from repro.core.path import PathKey, path_id_hash
from repro.core.path_cache import PathCache, PathCacheConfig
from repro.core.prb import PostRetirementBuffer
from repro.core.prediction_cache import PredictionCache, PredictionCacheEntry
from repro.isa.instructions import Instruction, Opcode
from repro.sim.functional import alu_op, to_signed, to_unsigned
from repro.telemetry import IntervalSampler
from repro.valuepred import StridePredictor


class _SamplerStubEngine:
    """Just enough engine surface for the sampler's row read."""

    class _Empty:
        capacity = 8

        def __init__(self, **attrs):
            self.__dict__.update(attrs)

        def __len__(self):
            return 0

        def difficult_count(self):
            return 0

    def __init__(self):
        self.prediction_cache = self._Empty(
            stats=SimpleNamespace(hits=0, misses=0))
        self.path_cache = self._Empty()
        self.spawner = SimpleNamespace(active=[])
        self.microram = self._Empty()

    def live_timing_result(self):
        return None

_MASK = (1 << 64) - 1

u64 = st.integers(min_value=0, max_value=_MASK)
small_int = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


class TestALUSemantics:
    @given(u64, u64)
    def test_add_matches_python_mod_2_64(self, a, b):
        assert alu_op(Opcode.ADD, a, b) == (a + b) % (1 << 64)

    @given(u64, u64)
    def test_sub_add_roundtrip(self, a, b):
        assert alu_op(Opcode.ADD, alu_op(Opcode.SUB, a, b), b) == a

    @given(u64, u64)
    def test_xor_involution(self, a, b):
        assert alu_op(Opcode.XOR, alu_op(Opcode.XOR, a, b), b) == a

    @given(u64, u64)
    def test_and_subset_of_or(self, a, b):
        conj = alu_op(Opcode.AND, a, b)
        disj = alu_op(Opcode.OR, a, b)
        assert conj & disj == conj

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_shift_roundtrip_preserves_low_bits(self, a, k):
        shifted = alu_op(Opcode.SLL, a, k)
        back = alu_op(Opcode.SRL, shifted, k)
        mask = _MASK >> k
        assert back == a & mask

    @given(u64, u64)
    def test_slt_consistent_with_signed_interpretation(self, a, b):
        assert alu_op(Opcode.SLT, a, b) == (1 if to_signed(a) < to_signed(b) else 0)

    @given(u64)
    def test_signed_unsigned_roundtrip(self, a):
        assert to_unsigned(to_signed(a)) == a

    @given(u64, u64)
    def test_results_always_in_range(self, a, b):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                   Opcode.OR, Opcode.XOR, Opcode.SLT, Opcode.SLTU):
            assert 0 <= alu_op(op, a, b) <= _MASK


class TestPathHashProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    max_size=32))
    def test_hash_in_range(self, pcs):
        assert 0 <= path_id_hash(tuple(pcs)) < (1 << 24)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=16),
           st.integers(min_value=0, max_value=1 << 20))
    def test_hash_changes_with_extension_usually(self, pcs, extra):
        """Appending a branch almost always changes the hash; we only
        require determinism and range here, plus change when extra != 0."""
        base = path_id_hash(tuple(pcs))
        extended = path_id_hash(tuple(pcs) + (extra,))
        assert extended == path_id_hash(tuple(pcs) + (extra,))

    @given(st.lists(st.integers(min_value=0, max_value=255),
                    min_size=2, max_size=8))
    def test_rotation_distinguishes_order(self, pcs):
        """For distinct elements, reversing the path changes the hash in
        the overwhelming majority of cases; assert determinism and
        self-consistency instead of cherry-picking."""
        forward = path_id_hash(tuple(pcs))
        assert forward == path_id_hash(tuple(pcs))


class TestCounterTableInvariants:
    @given(st.lists(st.booleans(), max_size=200),
           st.integers(min_value=1, max_value=4))
    def test_counter_stays_in_range(self, outcomes, bits):
        table = SaturatingCounterTable(16, bits=bits)
        for taken in outcomes:
            table.update(3, taken)
            assert 0 <= table.counter(3) <= table.max_value

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_prediction_matches_counter_threshold(self, outcomes):
        table = SaturatingCounterTable(16)
        for taken in outcomes:
            table.update(5, taken)
        assert table.predict(5) == (table.counter(5) >= table.threshold)

    @given(st.integers(min_value=2, max_value=64))
    def test_all_taken_saturates(self, count):
        table = SaturatingCounterTable(8)
        for _ in range(count + 4):
            table.update(0, True)
        assert table.counter(0) == table.max_value


class TestStridePredictorInvariants:
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=3, max_value=20))
    def test_arithmetic_sequences_learned(self, start, stride, length):
        predictor = StridePredictor(confidence_threshold=2)
        values = [(start + i * stride) & _MASK for i in range(length)]
        for value in values:
            predictor.train(7, value)
        expected = (values[-1] + stride) & _MASK
        assert predictor.predict(7, ahead=1) == expected

    @given(st.lists(u64, min_size=1, max_size=50))
    def test_confidence_bounded(self, values):
        predictor = StridePredictor(max_confidence=7)
        for value in values:
            predictor.train(3, value)
            assert 0 <= predictor.confidence(3) <= 7


class TestPRBInvariants:
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=300))
    def test_length_never_exceeds_capacity(self, capacity, inserts):
        from repro.sim.trace import DynamicInstruction
        prb = PostRetirementBuffer(capacity)
        inst = Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1, pc=0)
        for i in range(inserts):
            prb.insert(DynamicInstruction(i, inst), i)
        assert len(prb) == min(capacity, inserts)
        assert prb.youngest_pos == inserts - 1

    @given(st.integers(min_value=2, max_value=32))
    def test_producer_links_point_backwards(self, capacity):
        from repro.sim.trace import DynamicInstruction
        prb = PostRetirementBuffer(capacity)
        inst = Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1, pc=0)
        entries = []
        for i in range(capacity * 2):
            entries.append(prb.insert(DynamicInstruction(i, inst), i))
        for entry in entries[1:]:
            for producer in entry.src_producers:
                if producer is not None:
                    assert producer < entry.pos


class TestPredictionCacheInvariants:
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 100)),
                    max_size=100))
    def test_size_never_exceeds_capacity(self, writes):
        cache = PredictionCache(capacity=8)
        for path_id, seq in writes:
            cache.write(path_id, seq,
                        PredictionCacheEntry(True, 0, 0), current_seq=50)
            assert len(cache) <= 8


class TestPathCachePromotionAccounting:
    """stats.promotions/demotions must equal the number of observed
    Promoted-bit flips across ``entries()`` snapshots, for any call
    sequence (transition-only counting)."""

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["mispredict", "correct", "promote", "demote"]),
    ), max_size=150))
    def test_counters_equal_observed_bit_flips(self, ops):
        cache = PathCache(PathCacheConfig(
            entries=8, assoc=2, training_interval=2,
            difficulty_threshold=0.10))

        def snapshot():
            return {k: e.promoted for k, e in cache.entries()}

        flips_up = flips_down = 0
        prev = snapshot()
        for idx, op in ops:
            k = PathKey(term_pc=idx, branches=(idx,))
            if op == "mispredict":
                cache.update(k, idx, mispredicted=True)
            elif op == "correct":
                cache.update(k, idx, mispredicted=False)
            else:
                cache.mark_promoted(k, idx, op == "promote")
            now = snapshot()
            for key, promoted in now.items():
                was = prev.get(key, False)
                if promoted and not was:
                    flips_up += 1
                elif was and not promoted:
                    flips_down += 1
            prev = now
        assert cache.stats.promotions == flips_up
        assert cache.stats.demotions == flips_down


class TestSamplerWindowTiling:
    """Interval windows must tile the run exactly: the sum of
    ``window_instructions`` over all samples (including the flushed
    final row) equals the retired-instruction count."""

    @given(st.integers(min_value=1, max_value=13),
           st.integers(min_value=0, max_value=100),
           st.booleans())
    def test_windows_tile_exactly(self, every, retired, with_result):
        sampler = IntervalSampler(every=every)
        engine = _SamplerStubEngine()
        for i in range(retired):
            sampler.on_retire(engine, i, retire_cycle=i + 1)
        result = (SimpleNamespace(cycles=retired + 5)
                  if with_result else None)
        sampler.flush(engine, result=result)
        assert sum(s.window_instructions for s in sampler.samples) == retired
        finals = [s for s in sampler.samples if s.final]
        assert len(finals) == (1 if retired % every else 0)
        if sampler.samples:
            assert sampler.samples[-1].instructions == retired


class TestTopologicalOrderInvariants:
    @given(st.integers(min_value=1, max_value=60), st.integers(0, 2 ** 31))
    def test_random_dags_ordered(self, size, seed):
        rng = random.Random(seed)
        nodes = [MicroOp("const", imm=0, order=0)]
        for i in range(1, size):
            n_inputs = rng.randint(0, min(3, len(nodes)))
            inputs = rng.sample(nodes, n_inputs)
            nodes.append(MicroOp("op", op=Opcode.ADD, inputs=inputs, order=i))
        root = MicroOp("branch", op=Opcode.BEQ,
                       inputs=[nodes[-1]], order=size)
        order = topological_order(root)
        position = {node.uid: i for i, node in enumerate(order)}
        for node in order:
            for child in node.inputs:
                assert position[child.uid] < position[node.uid]
