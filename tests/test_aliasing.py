"""Tests for the Path_Id aliasing analysis."""


from repro.analysis.aliasing import path_id_aliasing
from repro.analysis.events import ControlEvent


def synthetic_events(paths, repeats=5, term_pc=999):
    """Build a control-event stream that walks each given path (a tuple
    of taken-branch pcs) and then hits the terminating branch."""
    events = []
    idx = 0
    for _ in range(repeats):
        for path in paths:
            for pc in path:
                events.append(ControlEvent(idx, pc, True, False, False, True))
                idx += 1
            events.append(ControlEvent(idx, term_pc, False, True, False, True))
            idx += 1
    return events


class TestPathIdAliasing:
    def test_distinct_paths_counted(self):
        paths = [(1, 2, 3), (4, 5, 6), (7, 8, 9)]
        events = synthetic_events(paths)
        result = path_id_aliasing(events, n=3, bits_list=(24,))[0]
        # the walk makes the 3-branch window slide across path
        # boundaries, so more windows than the 3 "intended" paths exist
        assert result.unique_paths >= 3
        assert result.total_occurrences > 0

    def test_wide_hash_no_aliasing_on_small_sets(self):
        paths = [(i, i + 100, i + 200) for i in range(20)]
        events = synthetic_events(paths)
        result = path_id_aliasing(events, n=3, bits_list=(24,))[0]
        assert result.aliased_ids == 0
        assert result.occurrence_alias_rate == 0.0

    def test_tiny_hash_aliases(self):
        # 4-bit ids cannot distinguish hundreds of windows
        paths = [(i * 3 + 1, i * 7 + 2, i * 11 + 5) for i in range(60)]
        events = synthetic_events(paths, repeats=2)
        narrow, wide = path_id_aliasing(events, n=3, bits_list=(4, 24))
        assert narrow.aliased_ids > 0
        assert narrow.occurrence_alias_rate > wide.occurrence_alias_rate

    def test_rates_bounded(self):
        paths = [(1, 2, 3), (4, 5, 6)]
        events = synthetic_events(paths)
        for result in path_id_aliasing(events, n=3, bits_list=(8, 16)):
            assert 0.0 <= result.occurrence_alias_rate <= 1.0
            assert result.used_ids <= result.unique_paths

    def test_empty_events(self):
        result = path_id_aliasing([], n=4, bits_list=(24,))[0]
        assert result.unique_paths == 0
        assert result.occurrence_alias_rate == 0.0


class TestRotationChoice:
    def test_rotate_not_dividing_width(self):
        """Regression guard for the rotate-3/24-bit resonance: the hash
        rotation must not divide the default width evenly."""
        from repro.core.path import DEFAULT_PATH_ID_BITS, _ROTATE

        assert DEFAULT_PATH_ID_BITS % _ROTATE != 0

    def test_depth_8_paths_distinguished(self):
        """With rotate-3/24-bit, paths differing only 8 branches back
        collided; the current hash must distinguish them."""
        from repro.core.path import path_id_hash

        base = tuple(range(100, 110))
        variant = (base[0] ^ 0x5,) + base[1:]  # differs 10 back
        assert path_id_hash(base) != path_id_hash(variant)
        base9 = tuple(range(200, 209))
        variant9 = (base9[0] ^ 0x3,) + base9[1:]  # differs 9 back
        assert path_id_hash(base9) != path_id_hash(variant9)
