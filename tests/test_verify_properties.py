"""Property test: builder output over generated workloads verifies clean.

For arbitrary synthetic workloads (hypothesis-drawn seeds, shapes and
path depths) every microthread the MicrothreadBuilder produces must pass
the full static verifier against the live PRB snapshot at build time —
zero errors and zero warnings.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - optional dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.builder import BuilderConfig, MicrothreadBuilder
from repro.core.path import PathTracker
from repro.core.prb import PostRetirementBuffer
from repro.sim.functional import run_program
from repro.valuepred import PredictorTrainer
from repro.verify import verify_microthread
from repro.workloads.generator import generate_program
from repro.workloads.spec import SiteKind, WorkloadSpec

MIXES = [
    {SiteKind.DATA: 3.0, SiteKind.LOOP: 1.0, SiteKind.BIASED: 1.0},
    {SiteKind.PATTERN: 2.0, SiteKind.PATHDEP: 1.0, SiteKind.DATA: 1.0},
    {SiteKind.STOREDEP: 2.0, SiteKind.DATA: 2.0, SiteKind.LOOP: 1.0},
]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n=st.sampled_from([2, 4, 8]),
    mix=st.sampled_from(MIXES),
    pruning=st.booleans(),
)
def test_builder_output_always_verifies_clean(seed, n, mix, pruning):
    spec = WorkloadSpec(name=f"hyp-{seed}", seed=seed, n_functions=2,
                        sites_per_function=4, mix=mix)
    trace = run_program(generate_program(spec), max_instructions=8000)
    tracker = PathTracker(n)
    prb = PostRetirementBuffer(512)
    trainer = PredictorTrainer()
    builder = MicrothreadBuilder(BuilderConfig(build_latency=0,
                                               pruning=pruning))
    built = 0
    for idx, rec in enumerate(trace):
        flags = trainer.observe(rec)
        prb.insert(rec, idx, *flags)
        event = tracker.observe(rec, idx)
        if event is None or event.partial:
            continue
        thread = builder.request(event, prb, 0)
        if thread is None:
            continue
        built += 1
        report = verify_microthread(thread, prb)
        assert report.ok, report.format()
        assert not report.warnings, report.format()
        if built >= 60:  # plenty of coverage per example
            break
