"""Property tests for the predictor zoo (repro.branch.zoo).

The repo-wide fused-interface contract — split ``predict()`` /
``update()`` and fused ``predict_and_update()`` are bit-identical in
both prediction and state — is checked here for **every** registered
scheme on hypothesis-generated branch streams, so a new zoo predictor
cannot ship a divergent fused path.  Config plumbing (canonical
round-trips, validation, the arena baseline set) rides along.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.hybrid import HybridPredictor
from repro.branch.unit import BranchPredictorComplex
from repro.branch.zoo import (
    ARENA_BASELINES,
    PredictorConfig,
    config_from_dict,
    make_complex,
    make_predictor,
    registered_schemes,
    small_config,
)

SCHEMES = registered_schemes()

_STREAM = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4095), st.booleans()),
    max_size=120)
_PROBES = st.lists(st.integers(min_value=0, max_value=4095), max_size=16)


class TestFusedSplitContract:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @settings(deadline=None, max_examples=25)
    @given(stream=_STREAM, probes=_PROBES)
    def test_fused_matches_split(self, scheme, stream, probes):
        """predict_and_update == predict-then-update, prediction AND
        state, for every registered scheme."""
        fused = make_predictor(small_config(scheme))
        split = make_predictor(small_config(scheme))
        for pc, taken in stream:
            expected = split.predict(pc)
            split.update(pc, taken)
            assert fused.predict_and_update(pc, taken) == expected
        # Hidden state divergence would surface as disagreeing
        # predictions on probe PCs...
        for pc in probes:
            assert fused.predict(pc) == split.predict(pc)
        # ... or under continued training on a shared suffix.
        for pc in probes:
            taken = pc % 3 == 0
            assert (fused.predict_and_update(pc, taken)
                    == split.predict_and_update(pc, taken))

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_update_trains(self, scheme):
        """A heavily-biased stream must be learned by every scheme."""
        predictor = make_predictor(small_config(scheme))
        for _ in range(64):
            predictor.predict_and_update(0x40, True)
        assert predictor.predict(0x40) is True


class TestConfig:
    def test_round_trip(self):
        for scheme in SCHEMES:
            config = small_config(scheme)
            assert config_from_dict(dataclasses.asdict(config)) == config

    def test_unknown_key_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            config_from_dict({"scheme": "tage", "no_such_knob": 1})

    def test_unknown_scheme_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            make_predictor(PredictorConfig(scheme="neural-net-9000"))

    def test_h2p_base_cannot_self_nest(self):
        with pytest.raises(ValueError):
            PredictorConfig(scheme="h2p", h2p_base="h2p")


class TestRegistry:
    def test_arena_baselines(self):
        """The arena races at least the four baselines the study needs."""
        assert len(ARENA_BASELINES) >= 4
        assert {"hybrid", "tage", "perceptron",
                "h2p-tage"} <= set(ARENA_BASELINES)
        for config in ARENA_BASELINES.values():
            unit = make_complex(config)
            assert isinstance(unit, BranchPredictorComplex)

    def test_hybrid_scheme_is_the_paper_default(self):
        unit = make_complex(PredictorConfig(scheme="hybrid"))
        default = BranchPredictorComplex()
        assert isinstance(unit.direction, HybridPredictor)
        assert type(unit.direction) is type(default.direction)

    def test_every_scheme_constructs(self):
        for scheme in SCHEMES:
            predictor = make_predictor(small_config(scheme))
            assert predictor.predict(0x10) in (True, False)


class TestSchemeBehaviour:
    def test_tage_allocates_on_mispredicts(self):
        predictor = make_predictor(small_config("tage"))
        # History-correlated pattern the bimodal base cannot learn.
        for i in range(512):
            predictor.predict_and_update(0x80, (i % 4) < 2)
        assert predictor.allocations > 0
        assert sum(predictor.provider_hits[:-1]) > 0  # tagged providers hit

    def test_h2p_promotes_hard_branches(self):
        predictor = make_predictor(
            small_config("h2p", h2p_base="bimodal"))
        # Alternating outcomes keep the bimodal base near 50% — exactly
        # the hard-to-predict profile the side-table exists for.
        for i in range(256):
            predictor.predict_and_update(0xC0, i % 2 == 0)
        assert predictor.promoted_count >= 1
