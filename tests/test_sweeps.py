"""Tests for the configuration sweep helpers."""

import pytest

from repro.analysis.sweeps import (
    SweepPoint,
    sweep_machine_width,
    sweep_report,
    sweep_ssmt_knob,
)

SHORT = 30_000
BENCHES = ("comp",)


class TestSweepSSMTKnob:
    def test_sweep_n(self):
        points = sweep_ssmt_knob("n", [4, 10], BENCHES, SHORT)
        assert [p.setting for p in points] == [4, 10]
        for p in points:
            assert set(p.per_benchmark) == set(BENCHES)
            assert p.mean_speedup > 0.8

    def test_sweep_threshold(self):
        points = sweep_ssmt_knob("difficulty_threshold", [0.05, 0.15],
                                 BENCHES, SHORT)
        assert len(points) == 2

    def test_unknown_knob_raises(self):
        with pytest.raises(ValueError, match="no knob"):
            sweep_ssmt_knob("bogus", [1], BENCHES, SHORT)

    def test_geomean_matches_single_benchmark(self):
        points = sweep_ssmt_knob("n", [4], BENCHES, SHORT)
        p = points[0]
        assert p.geomean_speedup == pytest.approx(p.mean_speedup)


class TestSweepMachineWidth:
    def test_widths_each_use_own_baseline(self):
        points = sweep_machine_width([4, 16], BENCHES, SHORT)
        assert [p.setting for p in points] == [4, 16]
        for p in points:
            # gains are relative to a same-width baseline, so they stay
            # in a plausible band even for the narrow machine
            assert 0.7 < p.mean_speedup < 2.0


class TestSweepReport:
    def test_report_renders(self):
        points = [SweepPoint(4, {"comp": 1.1}), SweepPoint(10, {"comp": 1.2})]
        text = sweep_report(points, "n")
        assert "Sensitivity to n" in text
        assert "1.100" in text and "1.200" in text
