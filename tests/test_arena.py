"""The predictor arena (repro.analysis.arena) and its H2P analytics."""

import pytest

from repro.analysis.arena import ARENA_SCHEMA, run_arena
from repro.analysis.events import collect_control_events
from repro.analysis.h2p import (
    calibration_target,
    compare_profiles,
    profile_paths,
)
from repro.workloads import benchmark_trace

_INSTRUCTIONS = 4000


@pytest.fixture(scope="module")
def artifact():
    return run_arena(["gcc"], _INSTRUCTIONS)


class TestArenaArtifact:
    def test_schema_and_baseline_count(self, artifact):
        assert artifact["schema"] == ARENA_SCHEMA == "repro.arena/1"
        # The study needs the paper hybrid plus at least three modern
        # baselines.
        assert len(artifact["baselines"]) >= 4
        assert {"hybrid", "tage", "perceptron",
                "h2p-tage"} <= set(artifact["baselines"])

    def test_per_benchmark_rows(self, artifact):
        for label, row in artifact["baselines"].items():
            bench = row["per_benchmark"]["gcc"]
            assert 0.0 < bench["accuracy"] <= 1.0
            assert bench["baseline_ipc"] > 0
            assert bench["ssmt_speedup"] > 0
            assert bench["potential_speedup"] > 0
            # Perfect prediction can only help.
            assert bench["oracle_speedup"] >= 1.0
            assert set(bench["timeliness"]) == {"early", "late", "useless",
                                                "total"}
            assert row["predictor"]["config_version"] == 1

    def test_headroom_rows(self, artifact):
        assert set(artifact["headroom"]) == set(artifact["baselines"])
        for row in artifact["headroom"].values():
            assert set(row) == {"mean_accuracy", "geomean_ssmt_speedup",
                                "geomean_potential_speedup",
                                "geomean_oracle_headroom"}

    def test_h2p_analytics(self, artifact):
        reference = artifact["context"]["reference"]
        assert reference == "hybrid"
        for label, per_bench in artifact["h2p"].items():
            summary = per_bench["gcc"]
            assert set(summary["regimes"]) == {"easy", "transient", "h2p"}
            assert sum(summary["regimes"].values()) \
                == summary["unique_paths"]
            if label == reference:
                assert "vs_reference" not in summary
            else:
                diff = summary["vs_reference"]
                assert diff["killed"] + diff["surviving"] \
                    == diff["reference_h2p"]

    def test_calibration_targets(self, artifact):
        target = artifact["calibration_targets"]["gcc"]
        assert target["strongest_baseline"] in artifact["baselines"]
        assert set(target["per_baseline_h2p"]) == set(artifact["baselines"])
        assert target["surviving_h2p_paths"] \
            == min(target["per_baseline_h2p"].values())

    def test_oracle_points_shared_across_baselines(self, artifact):
        """One oracle per benchmark: 1 + 4 baselines x 3 kinds."""
        expected = 1 + len(artifact["baselines"]) * 3
        assert artifact["context"]["points"] == expected


class TestExecutionModes:
    def _strip_context(self, art):
        return {k: v for k, v in art.items() if k != "context"}

    def test_serial_parallel_cached_identical(self, tmp_path, artifact):
        """The artifact outside ``context`` is bit-identical whether the
        grid ran serially, across a pool, or from the result cache."""
        cache = str(tmp_path / "cache")
        parallel = run_arena(["gcc"], _INSTRUCTIONS, jobs=2,
                             cache_dir=cache)
        cached = run_arena(["gcc"], _INSTRUCTIONS, cache_dir=cache)
        assert cached["context"]["cache_hits"] \
            == cached["context"]["points"]
        assert self._strip_context(parallel) == self._strip_context(artifact)
        assert self._strip_context(cached) == self._strip_context(artifact)

    def test_subset_and_unknown_baselines(self):
        small = run_arena(["gcc"], 2000, baselines=["hybrid", "tage"])
        assert set(small["baselines"]) == {"hybrid", "tage"}
        with pytest.raises(ValueError):
            run_arena(["gcc"], 2000, baselines=["not-a-predictor"])


class TestH2PModule:
    def test_profile_and_compare(self):
        from repro.branch.zoo import ARENA_BASELINES, make_complex

        trace = benchmark_trace("gcc", _INSTRUCTIONS)
        hybrid = profile_paths(collect_control_events(
            trace, predictor=make_complex(ARENA_BASELINES["hybrid"])))
        tage = profile_paths(collect_control_events(
            trace, predictor=make_complex(ARENA_BASELINES["tage"])))
        assert 0.0 < hybrid.accuracy <= 1.0
        assert hybrid.regimes["h2p"] == len(hybrid.h2p_paths())
        diff = compare_profiles(hybrid, tage)
        assert diff["killed"] + diff["surviving"] == diff["reference_h2p"]
        target = calibration_target({"hybrid": hybrid, "tage": tage})
        assert target["strongest_baseline"] in ("hybrid", "tage")

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            calibration_target({})
