"""Tests for trace serialization round-trips."""

import pytest

from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.sim.traceio import (
    TraceIOError,
    dumps,
    load_trace,
    loads,
    save_trace,
)

SOURCE = """
.data arr 8 5 6 7 8 9 10 11 12
    li r1, 0
    li r2, 30
loop:
    andi r3, r1, 7
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    li r7, 9
    blt r6, r7, low
    st r6, 1(r5)
low:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


@pytest.fixture(scope="module")
def trace():
    return run_program(assemble(SOURCE), max_instructions=2_000)


class TestRoundTrip:
    def test_record_count_and_name(self, trace):
        restored = loads(dumps(trace))
        assert len(restored) == len(trace)
        assert restored.name == trace.name
        assert restored.halted == trace.halted

    def test_dynamic_fields_preserved(self, trace):
        restored = loads(dumps(trace))
        for original, copy in zip(trace, restored):
            assert original.pc == copy.pc
            assert original.result == copy.result
            assert original.ea == copy.ea
            assert original.taken == copy.taken
            assert original.next_pc == copy.next_pc
            assert original.seq == copy.seq

    def test_static_instructions_shared(self, trace):
        """Records at the same pc share one Instruction object."""
        restored = loads(dumps(trace))
        by_pc = {}
        for rec in restored:
            by_pc.setdefault(rec.pc, rec.inst)
            assert rec.inst is by_pc[rec.pc]

    def test_opcode_and_operands_preserved(self, trace):
        restored = loads(dumps(trace))
        for original, copy in zip(trace, restored):
            assert original.inst.opcode == copy.inst.opcode
            assert original.inst.rd == copy.inst.rd
            assert original.inst.imm == copy.inst.imm
            assert original.inst.target == copy.inst.target

    def test_initial_memory_preserved(self, trace):
        restored = loads(dumps(trace))
        assert restored.initial_memory == trace.initial_memory

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.rpt"
        save_trace(trace, str(path))
        restored = load_trace(str(path))
        assert len(restored) == len(trace)

    def test_restored_trace_drives_analyses(self, trace):
        from repro.analysis import collect_control_events

        restored = loads(dumps(trace))
        original_events = collect_control_events(trace, warmup=0)
        restored_events = collect_control_events(restored, warmup=0)
        assert len(original_events) == len(restored_events)
        assert all(a.mispredicted == b.mispredicted
                   for a, b in zip(original_events, restored_events))

    def test_restored_trace_drives_ssmt(self, trace):
        from repro.core.ssmt import SSMTConfig, run_ssmt

        restored = loads(dumps(trace))
        first, _ = run_ssmt(trace, SSMTConfig(n=4, training_interval=8))
        second, _ = run_ssmt(restored, SSMTConfig(n=4, training_interval=8))
        assert first.cycles == second.cycles


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceIOError, match="not a repro trace"):
            loads("garbage v1\n")

    def test_bad_version(self):
        with pytest.raises(TraceIOError, match="unsupported version"):
            loads("repro-trace v99\n")

    def test_truncated_file(self, trace):
        text = dumps(trace)
        with pytest.raises((TraceIOError, ValueError, IndexError)):
            loads(text[: len(text) // 2])

    def test_unknown_pc_reference(self):
        text = ("repro-trace v1\nname x\nhalted 0\nstatic 0\nmemory 0\n"
                "records 1\nD 5 0 0 0 - 0 6\n")
        with pytest.raises(TraceIOError, match="unknown pc"):
            loads(text)
