"""Model-based property tests: hardware structures vs reference models.

Each structure is driven with random operation sequences and compared
against an obviously-correct Python reference implementation.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.btb import BranchTargetBuffer
from repro.core.microram import MicroRAM
from repro.core.microthread import Microthread, MicroOp, topological_order
from repro.core.path import PathKey
from repro.core.prediction_cache import PredictionCache, PredictionCacheEntry
from repro.isa.instructions import Opcode
from repro.uarch.caches import _SetAssocCache


def make_thread(term_pc, spawn_pc):
    root = MicroOp("branch", op=Opcode.BEQ,
                   inputs=[MicroOp("const", imm=0), MicroOp("const", imm=0)])
    return Microthread(
        key=PathKey(term_pc, (term_pc + 1,)), path_id=term_pc, root=root,
        nodes=topological_order(root), live_in_regs=(), spawn_pc=spawn_pc,
        separation=5, term_pc=term_pc, term_taken_target=0, prefix=(),
        expected_suffix=(),
    )


class ReferenceLRU:
    """Reference fully-associative LRU of bounded size."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.order = []  # least-recent first

    def touch(self, key):
        if key in self.order:
            self.order.remove(key)
        self.order.append(key)
        evicted = None
        if len(self.order) > self.capacity:
            evicted = self.order.pop(0)
        return evicted


class TestMicroRAMAgainstReference:
    @given(st.lists(st.tuples(st.sampled_from(["insert", "touch", "remove"]),
                              st.integers(0, 9)), max_size=120),
           st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_lru_behaviour_matches_reference(self, operations, capacity):
        ram = MicroRAM(capacity=capacity)
        reference = ReferenceLRU(capacity)
        for op, key_id in operations:
            key = PathKey(key_id, (key_id + 1,))
            if op == "insert":
                evicted = ram.insert(make_thread(key_id, key_id + 100))
                ref_evicted = reference.touch(key)
                assert evicted == ref_evicted
            elif op == "touch":
                ram.touch(key)
                if key in reference.order:
                    reference.touch(key)
            else:
                ram.remove(key)
                if key in reference.order:
                    reference.order.remove(key)
            assert len(ram) == len(reference.order)
            for live in reference.order:
                assert live in ram


class TestSetAssocCacheAgainstReference:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300),
           st.sampled_from([(64, 2, 8), (128, 4, 8), (64, 1, 8)]))
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_sequence_matches_reference(self, lines, geometry):
        total, assoc, line_words = geometry
        cache = _SetAssocCache(total, assoc, line_words)
        n_sets = total // (assoc * line_words)
        reference = {s: [] for s in range(n_sets)}  # per-set MRU-last
        for line in lines:
            ways = reference[line % n_sets]
            expected_hit = line in ways
            if expected_hit:
                ways.remove(line)
            elif len(ways) >= assoc:
                ways.pop(0)
            ways.append(line)
            assert cache.lookup(line) == expected_hit


class TestPredictionCacheAgainstReference:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 40)),
                    max_size=120),
           st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_written_entries_retrievable_until_reclaimed(self, writes,
                                                         capacity):
        cache = PredictionCache(capacity=capacity)
        live = {}
        for path_id, seq in writes:
            current = 10  # front-end position; seqs < 10 become stale
            cache.write(path_id, seq, PredictionCacheEntry(True, 0, 0),
                        current_seq=current)
            live[(path_id, seq)] = True
            assert len(cache) <= capacity
            # the just-written key is always retrievable
            assert cache.lookup(path_id, seq) is not None


class TestBTBAgainstReference:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 127)),
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_direct_mapped_semantics(self, operations):
        btb = BranchTargetBuffer(entries=16)
        reference = {}  # slot -> (tag, target)
        for is_update, pc in operations:
            slot = pc % 16
            if is_update:
                btb.update(pc, pc * 3)
                reference[slot] = (pc, pc * 3)
            else:
                expected = None
                if slot in reference and reference[slot][0] == pc:
                    expected = reference[slot][1]
                assert btb.lookup(pc) == expected
