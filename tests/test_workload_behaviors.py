"""Statistical tests of the per-behaviour site emitters: each SiteKind
must actually produce the predictability regime it claims."""


from repro.branch.unit import BranchPredictorComplex
from repro.sim.functional import run_program
from repro.workloads.generator import generate_program
from repro.workloads.spec import SiteKind, WorkloadSpec


def mispredict_rate_by_tag(kind, seed=11, n=120_000, **spec_overrides):
    """Steady-state misprediction rate of the given site kind's tagged
    terminating branches."""
    spec = WorkloadSpec(
        name=f"behav-{kind.value}-{seed}", seed=seed,
        n_functions=2, sites_per_function=4, mix={kind: 1.0},
        **spec_overrides,
    )
    trace = run_program(generate_program(spec), max_instructions=n)
    unit = BranchPredictorComplex()
    warmup = n // 2
    executed = mispredicted = 0
    prefix = kind.value if kind != SiteKind.PATHDEP else "pathdep"
    for i, rec in enumerate(trace):
        if not rec.inst.is_control:
            continue
        outcome = unit.process(rec)
        if i < warmup:
            continue
        tag = rec.inst.tag or ""
        if tag.startswith(prefix):
            executed += 1
            mispredicted += outcome.mispredicted
    assert executed > 50, "site branches must actually execute"
    return mispredicted / executed


class TestEasyKinds:
    def test_biased_is_easy(self):
        assert mispredict_rate_by_tag(SiteKind.BIASED) < 0.03

    def test_small_period_pattern_is_easy(self):
        rate = mispredict_rate_by_tag(SiteKind.PATTERN,
                                      pattern_periods=(4, 8))
        assert rate < 0.05

    def test_constant_trip_loops_are_easy(self):
        rate = mispredict_rate_by_tag(SiteKind.LOOP, data_trip_fraction=0.0)
        assert rate < 0.08


class TestDifficultKinds:
    def test_data_is_difficult(self):
        rate = mispredict_rate_by_tag(SiteKind.DATA,
                                      threshold_range=(45, 55))
        assert rate > 0.25

    def test_data_trip_loops_are_difficult(self):
        rate = mispredict_rate_by_tag(SiteKind.LOOP, data_trip_fraction=1.0)
        assert rate > 0.10

    def test_indirect_is_difficult(self):
        spec = WorkloadSpec(name="behav-ind", seed=5, n_functions=2,
                            sites_per_function=4,
                            mix={SiteKind.INDIRECT: 1.0})
        trace = run_program(generate_program(spec), max_instructions=120_000)
        unit = BranchPredictorComplex()
        for rec in trace:
            if rec.inst.is_control:
                unit.process(rec)
        assert unit.indirect_count > 100
        assert unit.indirect_mispredicts / unit.indirect_count > 0.3


class TestPathDependence:
    def test_pathdep_branch_easy_in_aggregate_hard_per_path(self):
        """The PATHDEP consumer must be cheap when classified per branch
        but expose difficult paths — the paper's §3.2.1 regime."""
        from repro.analysis import collect_control_events, coverage_analysis

        spec = WorkloadSpec(name="behav-pd", seed=9, n_functions=2,
                            sites_per_function=4,
                            mix={SiteKind.PATHDEP: 1.0})
        trace = run_program(generate_program(spec), max_instructions=150_000)
        events = collect_control_events(trace)
        results = coverage_analysis(events, ns=(10,), thresholds=(0.10,))
        branch = next(r for r in results if r.scheme == "branch")
        path = next(r for r in results if r.scheme == "path(10)")
        # paths pick out the difficult minority without losing coverage
        assert path.execution_coverage <= branch.execution_coverage + 0.02
        assert path.mispredict_coverage >= branch.mispredict_coverage - 0.05


class TestStoreDep:
    def test_storedep_sites_store_and_load_same_address(self):
        spec = WorkloadSpec(name="behav-sd", seed=4, n_functions=1,
                            sites_per_function=2,
                            mix={SiteKind.STOREDEP: 1.0})
        trace = run_program(generate_program(spec), max_instructions=60_000)
        store_addresses = {r.ea for r in trace if r.inst.is_store}
        load_addresses = {r.ea for r in trace if r.inst.is_load}
        assert store_addresses & load_addresses


class TestCorrelated:
    def test_correlated_branch_matches_producer_outcome(self):
        spec = WorkloadSpec(name="behav-corr", seed=3, n_functions=1,
                            sites_per_function=4,
                            mix={SiteKind.DATA: 1.0, SiteKind.CORRELATED: 1.0})
        trace = run_program(generate_program(spec), max_instructions=80_000)
        # find a corr-tagged branch and the preceding data-tagged branch
        last_data_outcome = {}
        agreements = comparisons = 0
        for rec in trace:
            tag = rec.inst.tag or ""
            if tag.startswith("data") and rec.is_conditional_branch:
                last_data_outcome["value"] = rec.taken
            elif tag.startswith("corr") and rec.is_conditional_branch \
                    and "value" in last_data_outcome:
                comparisons += 1
                agreements += rec.taken == last_data_outcome["value"]
        if comparisons:
            # correlation holds when the correlated site's producer is the
            # data site (generation-order dependent); require clear bias
            assert agreements / comparisons > 0.5
