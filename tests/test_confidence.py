"""Tests for the JRS confidence estimator and its coverage analysis."""

import pytest

from repro.analysis.confidence import (
    compare_confidence_schemes,
    confidence_coverage,
)
from repro.analysis.events import collect_control_events
from repro.branch.confidence import ConfidenceEstimator
from repro.isa.assembler import assemble
from repro.sim.functional import run_program


class TestConfidenceEstimator:
    def test_starts_low_confidence(self):
        estimator = ConfidenceEstimator(threshold=4)
        assert not estimator.is_confident(10)

    def test_correct_streak_builds_confidence(self):
        estimator = ConfidenceEstimator(threshold=4)
        for _ in range(4):
            estimator.update(10, correct=True)
        assert estimator.is_confident(10)

    def test_mispredict_resets(self):
        estimator = ConfidenceEstimator(threshold=4)
        for _ in range(10):
            estimator.update(10, correct=True)
        estimator.update(10, correct=False)
        assert estimator.counter(10) == 0
        assert not estimator.is_confident(10)

    def test_counter_saturates(self):
        estimator = ConfidenceEstimator(max_count=15)
        for _ in range(40):
            estimator.update(3, correct=True)
        assert estimator.counter(3) == 15

    def test_query_stats(self):
        estimator = ConfidenceEstimator(threshold=1)
        estimator.is_confident(5)
        estimator.update(5, True)
        estimator.is_confident(5)
        assert estimator.low_confidence_queries == 1
        assert estimator.high_confidence_queries == 1
        assert estimator.low_confidence_fraction == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceEstimator(entries=100)
        with pytest.raises(ValueError):
            ConfidenceEstimator(threshold=0)
        with pytest.raises(ValueError):
            ConfidenceEstimator(max_count=3, threshold=5)


MIXED_PROGRAM = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 3000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    li r7, 50
    blt r6, r7, t1          ; difficult (pseudo-random)
    addi r8, r8, 1
t1:
    andi r9, r1, 1023
    li r10, 1000
    blt r9, r10, t2         ; easy (heavily biased)
    addi r8, r8, 2
t2:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


@pytest.fixture(scope="module")
def events():
    trace = run_program(assemble(MIXED_PROGRAM), max_instructions=60_000)
    return collect_control_events(trace)


class TestConfidenceCoverage:
    def test_flags_cover_most_mispredicts(self, events):
        result = confidence_coverage(events, use_path=False)
        assert result.mispredict_coverage > 0.5
        assert result.total > 0

    def test_execution_coverage_below_one(self, events):
        result = confidence_coverage(events, use_path=False)
        # The easy branch must mostly be flagged confident.
        assert result.execution_coverage < 0.9

    def test_path_indexing_variant_runs(self, events):
        result = confidence_coverage(events, n=4, use_path=True)
        assert result.scheme == "jrs-path(4)"
        assert 0.0 <= result.mispredict_coverage <= 1.0

    def test_compare_schemes_shapes(self, events):
        results = compare_confidence_schemes(events, ns=(4, 10))
        schemes = [r.scheme for r in results]
        assert schemes == ["jrs-pc", "jrs-path(4)", "jrs-path(10)"]

    def test_low_threshold_flags_less(self, events):
        strict = confidence_coverage(events, threshold=2, use_path=False)
        lax = confidence_coverage(events, threshold=14, use_path=False)
        # a higher confidence bar flags more instances as low-confidence
        assert lax.execution_coverage >= strict.execution_coverage
