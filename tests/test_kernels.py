"""Tests for the hand-written assembly kernels."""

import pytest

from repro.analysis.experiments import baseline_run
from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.sim.functional import run_program
from repro.workloads.kernels import KERNEL_NAMES, KERNELS, build_kernel


def kernel_trace(name, n=40_000):
    return run_program(build_kernel(name), max_instructions=n)


class TestKernelBasics:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_kernel_runs_forever(self, name):
        trace = kernel_trace(name, 10_000)
        assert len(trace) == 10_000
        assert not trace.halted

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_kernel_deterministic(self, name):
        first = kernel_trace(name, 3_000)
        second = kernel_trace(name, 3_000)
        assert all(a.pc == b.pc and a.result == b.result
                   for a, b in zip(first, second))

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            build_kernel("nonsense")

    def test_registry_consistent(self):
        assert set(KERNEL_NAMES) == set(KERNELS)
        assert len(KERNEL_NAMES) >= 6


class TestKernelSemantics:
    def test_linked_list_visits_every_node(self):
        trace = kernel_trace("linked_list", 10_000)
        # pointer loads (offset 1) walk distinct node addresses
        next_loads = {r.ea for r in trace
                      if r.is_load and r.inst.imm == 1}
        assert len(next_loads) == 256

    def test_binary_search_probe_count_logarithmic(self):
        trace = kernel_trace("binary_search", 20_000)
        # the probe loop runs ~log2(1024)=10 probes per query
        probes = sum(1 for r in trace
                     if r.is_load and r.inst.tag is None and r.inst.imm == 0)
        outers = sum(1 for r in trace if r.inst.opcode.name == "JMP"
                     and r.pc > 0 and r.next_pc < 5)
        assert probes > 5 * max(1, outers)

    def test_interpreter_dispatches_all_opcodes(self):
        trace = kernel_trace("interpreter", 20_000)
        indirect_targets = {r.next_pc for r in trace if r.inst.is_indirect}
        assert len(indirect_targets) == 4

    def test_histogram_counts_accumulate(self):
        program = build_kernel("histogram")
        from repro.sim.functional import FunctionalSimulator

        sim = FunctionalSimulator(program, max_instructions=30_000)
        sim.run()
        stores = [rec for rec in []]  # state checked via memory below
        counts_base = None
        # counts is the second .data block: find any store address
        store_addresses = {ea for ea, v in sim.memory.items() if v > 5}
        assert store_addresses  # buckets accumulated past their initial 0

    def test_state_machine_states_in_range(self):
        trace = kernel_trace("state_machine", 20_000)
        # loads from the transition table produce the next state (< 8)
        state_loads = [r for r in trace if r.is_load and r.inst.rd == 2]
        assert state_loads
        assert all(r.result < 8 for r in state_loads)


class TestKernelPredictability:
    def test_interpreter_indirects_are_difficult(self):
        trace = kernel_trace("interpreter", 40_000)
        unit = BranchPredictorComplex()
        for rec in trace:
            if rec.inst.is_control:
                unit.process(rec)
        assert unit.indirect_mispredicts / unit.indirect_count > 0.3

    def test_partition_comparison_is_difficult(self):
        trace = kernel_trace("partition", 40_000)
        base = baseline_run(trace)
        assert base.mispredict_rate() > 0.05

    def test_linked_list_values_are_difficult(self):
        trace = kernel_trace("linked_list", 40_000)
        base = baseline_run(trace)
        assert base.mispredict_rate() > 0.05


class TestKernelsUnderSSMT:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_ssmt_runs_clean_and_accurate(self, name):
        trace = kernel_trace(name, 40_000)
        _, engine = run_ssmt(trace, SSMTConfig(n=6, training_interval=8,
                                               build_latency=20))
        ok = engine.correct_microthread_predictions
        bad = engine.incorrect_microthread_predictions
        if ok + bad > 50:
            assert ok / (ok + bad) > 0.9

    def test_partition_gains_from_ssmt(self):
        trace = kernel_trace("partition", 60_000)
        base = baseline_run(trace)
        result, _ = run_ssmt(trace, SSMTConfig(n=6, training_interval=8,
                                               build_latency=20))
        assert result.ipc > base.ipc

    def test_throttle_rescues_binary_search(self):
        """binary_search is overhead-dominated; the §5.3 throttle must
        recover most of the loss."""
        trace = kernel_trace("binary_search", 60_000)
        base = baseline_run(trace)
        plain, _ = run_ssmt(trace, SSMTConfig(n=6, training_interval=8,
                                              build_latency=20))
        throttled, engine = run_ssmt(trace, SSMTConfig(
            n=6, training_interval=8, build_latency=20,
            throttle_enabled=True))
        assert engine.throttled_paths > 0
        assert throttled.ipc > plain.ipc
        assert throttled.ipc > 0.85 * base.ipc
