"""Integration tests: the full pipeline over suite benchmarks.

These use short traces (tens of thousands of instructions) so the whole
file stays fast; the benchmark harness runs the full-length versions.
"""

import pytest

from repro.analysis import (
    characterize_paths,
    collect_control_events,
    coverage_analysis,
)
from repro.analysis.experiments import (
    baseline_run,
    figure6_potential,
    figure7_realistic,
    figure8_routines,
    figure9_timeliness,
    intro_perfect_prediction,
)
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.workloads import BENCHMARK_NAMES, benchmark_trace

SHORT = 40_000
SAMPLE = ("comp", "li")


class TestBaselinePipeline:
    @pytest.mark.parametrize("name", SAMPLE)
    def test_baseline_runs(self, name):
        result = baseline_run(benchmark_trace(name, SHORT))
        assert result.instructions == SHORT
        assert 0.5 < result.ipc < 16.0

    def test_all_benchmarks_generate(self):
        for name in BENCHMARK_NAMES:
            trace = benchmark_trace(name, 2_000)
            assert len(trace) == 2_000


class TestAnalysisPipeline:
    def test_table1_pipeline(self):
        events = collect_control_events(benchmark_trace("comp", SHORT))
        result = characterize_paths(events, n=4)
        assert result.unique_paths > 0
        assert result.mean_scope > 0

    def test_table2_pipeline(self):
        events = collect_control_events(benchmark_trace("comp", SHORT))
        results = coverage_analysis(events, ns=(4,), thresholds=(0.10,))
        assert len(results) == 2


class TestExperimentDrivers:
    def test_intro_driver(self):
        speedups = intro_perfect_prediction(SAMPLE, trace_length=SHORT)
        assert set(speedups) == set(SAMPLE)
        assert all(s >= 0.95 for s in speedups.values())

    def test_figure6_driver(self):
        results = figure6_potential(("comp",), ns=(4,), trace_length=SHORT)
        assert 4 in results["comp"]
        assert results["comp"][4] > 0.9

    def test_figure7_through_9_drivers(self):
        realistic = figure7_realistic(("comp",), trace_length=SHORT,
                                      build_latency=20)
        row = realistic[0]
        assert row.baseline_ipc > 0
        assert row.speedup_pruning > 0.8

        fig8 = figure8_routines(realistic)
        assert "size_pruning" in fig8["comp"]

        fig9 = figure9_timeliness(realistic)
        breakdown = fig9["comp"]["pruning"]
        if breakdown["total"]:
            total_fraction = (breakdown["early"] + breakdown["late"]
                              + breakdown["useless"])
            assert total_fraction == pytest.approx(1.0)


class TestSSMTOnSuite:
    @pytest.mark.parametrize("name", SAMPLE)
    def test_ssmt_machine_runs_clean(self, name):
        trace = benchmark_trace(name, SHORT)
        result, engine = run_ssmt(
            trace, SSMTConfig(training_interval=8, build_latency=20))
        assert result.instructions == SHORT
        report = engine.report()
        assert report["microthread_incorrect"] <= max(
            10, report["microthread_correct"])

    def test_determinism(self):
        trace = benchmark_trace("comp", SHORT)
        config = SSMTConfig(training_interval=8)
        first, _ = run_ssmt(trace, config)
        second, _ = run_ssmt(trace, SSMTConfig(training_interval=8))
        assert first.cycles == second.cycles
        assert first.effective_mispredicts == second.effective_mispredicts
