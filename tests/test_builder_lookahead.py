"""Tests for the Vp/Ap look-ahead distance computation (§4.2.5)."""


from repro.core.builder import BuilderConfig, MicrothreadBuilder, _instances_ahead
from repro.core.path import PathTracker
from repro.core.prb import PostRetirementBuffer
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.valuepred import PredictorTrainer


def filled_prb(source, n=2_000):
    trace = run_program(assemble(source), max_instructions=n)
    prb = PostRetirementBuffer(512)
    for idx, rec in enumerate(trace):
        prb.insert(rec, idx)
    return trace, prb


TIGHT_LOOP = """
    li r1, 0
    li r2, 100
loop:
    addi r3, r3, 1
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


class TestInstancesAhead:
    def test_target_at_spawn_counts_one(self):
        trace, prb = filled_prb(TIGHT_LOOP)
        # pick an instance of the addi r3 (pc=2) in steady state
        target = next(i for i, r in enumerate(trace) if r.pc == 2 and i > 50)
        assert _instances_ahead(prb, 2, spawn_idx=target, target_idx=target) == 1

    def test_counts_instances_in_window(self):
        trace, prb = filled_prb(TIGHT_LOOP)
        # window spanning exactly three loop iterations contains three
        # instances of pc=2 (one per iteration)
        targets = [i for i, r in enumerate(trace) if r.pc == 2 and i > 50]
        spawn, target = targets[0], targets[2]
        assert _instances_ahead(prb, 2, spawn, target) == 3

    def test_negative_when_target_before_spawn(self):
        trace, prb = filled_prb(TIGHT_LOOP)
        targets = [i for i, r in enumerate(trace) if r.pc == 2 and i > 50]
        target, spawn = targets[0], targets[2]
        # two newer instances (at targets[1], targets[2]... strictly
        # between target and spawn: targets[1] only, plus any at spawn?)
        ahead = _instances_ahead(prb, 2, spawn, target)
        assert ahead == -1  # one instance strictly between

    def test_zero_when_adjacent(self):
        trace, prb = filled_prb(TIGHT_LOOP)
        targets = [i for i, r in enumerate(trace) if r.pc == 2 and i > 50]
        target = targets[0]
        spawn = target + 1  # spawn right after the target retired
        assert _instances_ahead(prb, 2, spawn, target) == 0

    def test_respects_prb_residency(self):
        # a long-running loop evicts early positions from the 512-entry
        # buffer; evicted instances count as absent
        endless = TIGHT_LOOP.replace("li r2, 100", "li r2, 1000000")
        trace, prb = filled_prb(endless, n=2_000)
        assert prb.get(2) is None  # fell out
        assert _instances_ahead(prb, 2, 0, 3) == 0


LOOKAHEAD_LOOP = """
    li r1, 0
    li r2, 3000
outer:
    addi r9, r9, 1
    li r10, 3
    li r3, 0
inner:
    addi r3, r3, 1
    blt r3, r10, inner
    li r14, 2654435761
    mul r4, r1, r14
    srli r4, r4, 7
    andi r4, r4, 127
    li r5, 64
    blt r4, r5, skip
    addi r8, r8, 1
skip:
    addi r1, r1, 1
    jmp outer
"""


class TestLookaheadInBuiltRoutines:
    def test_pruned_routines_predict_correctly(self):
        """Pruned Vp_Inst nodes with multi-instance windows must still
        pre-compute the correct outcome (the regression that motivated
        instance counting)."""
        from repro.core.ssmt import SSMTConfig, run_ssmt

        trace = run_program(assemble(LOOKAHEAD_LOOP),
                            max_instructions=50_000)
        _, engine = run_ssmt(trace, SSMTConfig(n=6, training_interval=8,
                                               build_latency=20,
                                               pruning=True))
        ok = engine.correct_microthread_predictions
        bad = engine.incorrect_microthread_predictions
        if ok + bad > 30:
            assert ok / (ok + bad) > 0.95

    def test_ahead_values_recorded_on_vp_nodes(self):
        trace = run_program(assemble(LOOKAHEAD_LOOP),
                            max_instructions=30_000)
        tracker = PathTracker(6)
        prb = PostRetirementBuffer(512)
        trainer = PredictorTrainer()
        builder = MicrothreadBuilder(BuilderConfig(pruning=True))
        target_pc = next(i.pc for i in assemble(LOOKAHEAD_LOOP).instructions
                         if i.opcode.name == "BLT" and i.rs1 == 4)
        count = 0
        threads = []
        for idx, rec in enumerate(trace):
            flags = trainer.observe(rec)
            prb.insert(rec, idx, *flags)
            event = tracker.observe(rec, idx)
            if rec.pc == target_pc:
                count += 1
                if count in (40, 60, 80):
                    builder.busy_until = 0
                    thread = builder.request(event, prb, 0)
                    if thread is not None:
                        threads.append(thread)
        assert threads
        vp_nodes = [n for t in threads for n in t.nodes
                    if n.kind in ("vp", "ap")]
        if vp_nodes:
            assert all(isinstance(n.ahead, int) for n in vp_nodes)
