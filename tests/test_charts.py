"""Tests for the text chart renderers."""


from repro.analysis.charts import bar_chart, grouped_bar_chart, timeliness_stack


class TestBarChart:
    def test_renders_labels_and_values(self):
        text = bar_chart([("gcc", 1.09), ("comp", 1.20)], title="Fig")
        assert text.splitlines()[0] == "Fig"
        assert "gcc" in text and "1.090" in text

    def test_longest_value_fills_width(self):
        text = bar_chart([("a", 1.0), ("b", 2.0)], width=20)
        b_line = next(l for l in text.splitlines() if l.startswith("b"))
        assert "█" * 20 in b_line

    def test_baseline_marker(self):
        text = bar_chart([("a", 0.9), ("b", 1.3)], baseline=1.0)
        assert "^" in text and "baseline=1.000" in text

    def test_empty_items(self):
        assert bar_chart([], title="t") == "t"

    def test_constant_values_no_crash(self):
        text = bar_chart([("a", 1.0), ("b", 1.0)])
        assert text.count("|") == 4


class TestGroupedBarChart:
    def test_legend_and_rows(self):
        text = grouped_bar_chart({
            "gcc": {"pruning": 1.09, "no-pruning": 1.07},
            "comp": {"pruning": 1.20, "no-pruning": 1.10},
        })
        assert "█=pruning" in text
        assert "▓=no-pruning" in text
        assert text.count("|") == 8  # 2 groups x 2 series x 2 pipes

    def test_missing_series_skipped(self):
        text = grouped_bar_chart({
            "a": {"x": 1.0},
            "b": {"x": 1.0, "y": 2.0},
        })
        assert text.count("|") == 6

    def test_empty(self):
        assert grouped_bar_chart({}, title="t") == "t"


class TestTimelinessStack:
    def test_fractions_rendered(self):
        text = timeliness_stack({
            "gcc": {"early": 0.2, "late": 0.7, "useless": 0.1},
        })
        assert "e=20%" in text and "l=70%" in text and "u=10%" in text

    def test_legend_present(self):
        text = timeliness_stack({"x": {"early": 1.0, "late": 0.0,
                                       "useless": 0.0}})
        assert "legend" in text
