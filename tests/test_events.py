"""Tests for the SSMT event log."""

import pytest

from repro.branch.unit import BranchPredictorComplex
from repro.core.events import Event, EventLog
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.timing import OoOTimingModel

DATA_LOOP = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 100000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    jmp h1
h1:
    li r7, 50
    blt r6, r7, t
    addi r8, r8, 1
t:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


def run_with_log(log=None, n=30_000):
    trace = run_program(assemble(DATA_LOOP), max_instructions=n)
    log = log if log is not None else EventLog()
    engine = SSMTEngine(SSMTConfig(n=4, training_interval=8,
                                   build_latency=20),
                        initial_memory=trace.initial_memory,
                        event_log=log)
    OoOTimingModel().run(trace, BranchPredictorComplex(), listener=engine)
    return log, engine


class TestEventLogUnit:
    def test_bounded_capacity(self):
        log = EventLog(capacity=5)
        for i in range(20):
            log.emit("spawn", i, 0, 99)
        assert len(log) == 5
        assert log.counts["spawn"] == 20  # counters see everything

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog().emit("bogus", 0, 0, 0)

    def test_kind_filter(self):
        log = EventLog(kinds=("promote",))
        log.emit("promote", 1, 0, 5)
        log.emit("spawn", 2, 0, 5)
        assert len(log) == 1
        assert log.counts["spawn"] == 1  # counted but not stored

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_unknown_filter_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog(kinds=("promote", "bogus"))

    def test_filter_drops_are_counted(self):
        log = EventLog(kinds=("promote",))
        log.emit("promote", 1, 0, 5)
        log.emit("spawn", 2, 0, 5)
        log.emit("spawn", 3, 0, 5)
        assert log.dropped_count("spawn") == 2
        assert log.dropped_count("promote") == 0
        assert log.dropped_count() == 2

    def test_ring_evictions_are_counted(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("spawn", i, 0, 9)
        assert len(log) == 3
        assert log.dropped_count("spawn") == 7

    def test_counts_equal_stored_plus_dropped(self):
        """The invariant: counts[kind] == stored(kind) + dropped[kind]."""
        log = EventLog(capacity=4, kinds=("spawn", "promote"))
        for i in range(6):
            log.emit("spawn", i, 0, 9)
        for i in range(3):
            log.emit("promote", i, 0, 9)
        log.emit("demote", 0, 0, 9)  # filtered out
        for kind in ("spawn", "promote", "demote"):
            assert log.counts[kind] \
                == len(log.of_kind(kind)) + log.dropped_count(kind)

    def test_event_str(self):
        text = str(Event("spawn", 10, 5, 99, "sep=7"))
        assert "spawn" in text and "branch@99" in text and "sep=7" in text


class TestEngineIntegration:
    def test_lifecycle_events_recorded(self):
        log, engine = run_with_log()
        summary = log.summary()
        assert summary.get("build", 0) > 0
        assert summary.get("promote", 0) > 0
        assert summary.get("spawn", 0) > 0
        assert summary.get("prediction", 0) > 0

    def test_counts_match_engine_stats(self):
        log, engine = run_with_log()
        assert log.counts["spawn"] == engine.spawner.stats.spawned
        assert log.counts["build"] == engine.builder.stats.built
        assert log.counts["active_abort"] \
            == engine.spawner.stats.aborted_active
        assert log.counts["pre_alloc_abort"] \
            == engine.spawner.stats.pre_allocation_aborts

    def test_for_branch_filters(self):
        log, engine = run_with_log()
        some_branch = next(iter(log.of_kind("promote"))).term_pc
        story = log.for_branch(some_branch)
        assert story
        assert all(e.term_pc == some_branch for e in story)

    def test_narrate_renders(self):
        log, _ = run_with_log()
        text = log.narrate(limit=10)
        assert len(text.splitlines()) <= 10
        assert "branch@" in text

    def test_invariant_holds_after_engine_run(self):
        """Even under a tight ring, counts == stored + dropped per kind."""
        log, _ = run_with_log(log=EventLog(capacity=64))
        for kind in log.counts:
            assert log.counts[kind] \
                == len(log.of_kind(kind)) + log.dropped_count(kind), kind

    def test_no_log_attached_is_silent(self):
        trace = run_program(assemble(DATA_LOOP), max_instructions=20_000)
        engine = SSMTEngine(SSMTConfig(n=4, training_interval=8),
                            initial_memory=trace.initial_memory)
        OoOTimingModel().run(trace, BranchPredictorComplex(),
                             listener=engine)
        assert engine.event_log is None


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(n=0),
        dict(difficulty_threshold=2.0),
        dict(n_contexts=0),
        dict(spawn_dispatch_latency=-1),
        dict(throttle_window=0),
        dict(throttle_useless_fraction=0.0),
        dict(rebuild_violation_threshold=0),
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SSMTConfig(**kwargs)
