"""Tests for the parallel sweep runner, task keys, and result cache.

The correctness contract under test: serial, parallel, and cached
executions of the same grid produce bit-identical per-point payloads,
and the on-disk cache makes repeated sweeps free (simulated=0).
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.cli import main
from repro.core.oracle import PotentialConfig
from repro.core.ssmt import SSMTConfig
from repro.parallel import (
    CODE_SCHEMA_VERSION,
    POINT_SCHEMA,
    ResultCache,
    SweepRunner,
    SweepTask,
    build_grid,
    canonical_json,
    default_jobs,
    merge_sweep,
    parse_knob_value,
    run_task,
    task_key,
)

SHORT = 3000


def t(**overrides):
    defaults = dict(kind="ssmt", benchmark="comp", instructions=SHORT)
    defaults.update(overrides)
    return SweepTask(**defaults)


# -- module-level workers (must be picklable for the process pool) ------------


def _crashy_worker(task):
    """Dies hard inside pool workers; behaves normally in the parent, so
    the runner's serial fallback can finish the sweep."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return run_task(task)


def _sleepy_worker(task):
    time.sleep(5.0)
    return run_task(task)


def _failing_worker(task):
    raise ValueError(f"cannot simulate {task.benchmark}")


# -- task keys ----------------------------------------------------------------


class TestTaskKey:
    def test_stable_across_instances(self):
        assert t().key == t().key
        assert task_key(t()) == t().key

    def test_key_is_hex_sha256(self):
        key = t().key
        assert len(key) == 64
        int(key, 16)

    def test_differs_by_benchmark_kind_length_config(self):
        keys = {
            t().key,
            t(benchmark="gcc").key,
            t(kind="baseline", config=None).key,
            t(instructions=SHORT + 1).key,
            t(config=SSMTConfig(n=4)).key,
            t(kind="potential", config=None,
              potential=PotentialConfig(n=4)).key,
        }
        assert len(keys) == 6

    def test_label_excluded_from_key(self):
        assert t(label="a").key == t(label="b").key

    def test_identity_embeds_schema_version(self):
        assert t().identity()["schema_version"] == CODE_SCHEMA_VERSION

    def test_canonical_json_sorts_keys(self):
        assert (canonical_json({"b": 1, "a": 2})
                == canonical_json({"a": 2, "b": 1}))

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            t(kind="bogus")

    def test_invalid_instructions_rejected(self):
        with pytest.raises(ValueError):
            t(instructions=0)

    def test_predictor_is_part_of_the_key(self):
        from repro.branch.zoo import small_config

        default = t()
        tage = t(predictor=small_config("tage"))
        perceptron = t(predictor=small_config("perceptron"))
        assert default.identity()["predictor"] is None
        assert tage.identity()["predictor"]["scheme"] == "tage"
        assert len({default.key, tage.key, perceptron.key}) == 3
        assert t(predictor=small_config("tage")).key == tage.key

    def test_oracle_normalises_predictor_to_none(self):
        """Oracle prediction ignores the hardware predictor, so oracle
        points share one cache entry across all arena baselines."""
        from repro.branch.zoo import small_config

        plain = t(kind="oracle", config=None)
        zoo = t(kind="oracle", config=None,
                predictor=small_config("tage"))
        assert zoo.predictor is None
        assert zoo.key == plain.key

    def test_predictor_must_be_a_config_instance(self):
        with pytest.raises(ValueError):
            t(predictor="tage")


class TestSchemaVersionMigration:
    def test_version_was_bumped_for_the_predictor_field(self):
        assert CODE_SCHEMA_VERSION >= 2

    def test_old_version_cache_entry_is_a_clean_miss(self, tmp_path,
                                                     monkeypatch):
        """An entry cached under the previous CODE_SCHEMA_VERSION is
        unreachable by construction — a plain miss, never an
        invalid/corrupt read."""
        import repro.parallel.taskkey as taskkey_mod

        task = t()
        current_key = task.key
        monkeypatch.setattr(taskkey_mod, "CODE_SCHEMA_VERSION",
                            CODE_SCHEMA_VERSION - 1)
        old_key = task.key
        monkeypatch.undo()
        assert old_key != current_key
        assert task.key == current_key

        cache = ResultCache(str(tmp_path))
        cache.put(old_key, {"schema": POINT_SCHEMA, "task_key": old_key,
                            "value": 1})
        assert cache.get(current_key) is None
        assert cache.misses == 1
        assert cache.invalid == 0
        # The stale entry is intact on disk, readable under its own key.
        assert cache.get(old_key)["value"] == 1


class TestParseKnobValue:
    def test_types(self):
        assert parse_knob_value("n", "16") == 16
        assert parse_knob_value("difficulty_threshold", "0.05") == 0.05
        assert parse_knob_value("pruning", "false") is False
        assert parse_knob_value("pruning", "on") is True

    def test_bad_bool(self):
        with pytest.raises(ValueError):
            parse_knob_value("pruning", "maybe")

    def test_unknown_knob(self):
        with pytest.raises(ValueError):
            parse_knob_value("bogus", "1")


# -- result cache -------------------------------------------------------------


class TestResultCache:
    def payload(self, key):
        return {"schema": POINT_SCHEMA, "task_key": key, "value": 42}

    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = t().key
        cache.put(key, self.payload(key))
        assert cache.get(key) == self.payload(key)
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = t().key
        cache.put(key, self.payload(key))
        path = next(tmp_path.glob("*.json"))
        path.write_text("{ not json")
        assert cache.get(key) is None
        assert cache.invalid == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, other = t().key, t(benchmark="gcc").key
        cache.put(key, self.payload(key))
        # copy the entry under the wrong key (stale/foreign file)
        (tmp_path / f"{other}.json").write_text(
            (tmp_path / f"{key}.json").read_text())
        assert cache.get(other) is None

    def test_put_rejects_foreign_payload(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.put(t().key, self.payload(t(benchmark="gcc").key))


# -- the runner ---------------------------------------------------------------


GRID = [
    SweepTask(kind="baseline", benchmark="comp", instructions=SHORT),
    SweepTask(kind="ssmt", benchmark="comp", instructions=SHORT,
              label="ssmt"),
    SweepTask(kind="baseline", benchmark="gcc", instructions=SHORT),
    SweepTask(kind="ssmt", benchmark="gcc", instructions=SHORT,
              label="ssmt"),
]


class TestSweepRunner:
    def test_serial_parallel_cached_bit_identical(self, tmp_path):
        serial = SweepRunner(jobs=1).run(GRID)
        parallel = SweepRunner(jobs=2).run(GRID)
        first = SweepRunner(jobs=2, cache_dir=str(tmp_path)).run(GRID)
        cached = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(GRID)
        assert serial.results == parallel.results
        assert serial.results == first.results
        assert serial.results == cached.results
        assert serial.simulated == parallel.simulated == 4
        assert cached.simulated == 0 and cached.cache_hits == 4
        # payloads survive a JSON round-trip unchanged (true bit-identity)
        assert (json.loads(json.dumps(serial.results))
                == serial.results)

    def test_dedup_folds_equal_keys(self):
        outcome = SweepRunner(jobs=1).run([GRID[0], GRID[1], GRID[0]])
        assert outcome.deduped == 1
        assert outcome.simulated == 2
        assert outcome.results[0] == outcome.results[2]

    def test_labels_follow_the_requesting_task(self):
        a = GRID[1]
        b = SweepTask(kind="ssmt", benchmark="comp", instructions=SHORT,
                      label="other")
        outcome = SweepRunner(jobs=1).run([a, b])
        assert outcome.deduped == 1
        assert outcome.results[0]["label"] == "ssmt"
        assert outcome.results[1]["label"] == "other"

    def test_no_resume_recomputes_but_writes(self, tmp_path):
        first = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(GRID[:2])
        again = SweepRunner(jobs=1, cache_dir=str(tmp_path),
                            resume=False).run(GRID[:2])
        assert first.simulated == again.simulated == 2
        assert again.cache_hits == 0

    def test_payload_shape(self):
        outcome = SweepRunner(jobs=1).run(GRID[:2])
        base, ssmt = outcome.results
        for payload in (base, ssmt):
            assert payload["schema"] == POINT_SCHEMA
            assert payload["timing"]["instructions"] == SHORT
            assert payload["timing"]["cycles"] > 0
        assert base["metrics"] is None and base["config"] is None
        assert ssmt["metrics"]["path_cache"]["updates"] > 0
        assert ssmt["config"]["n"] == 10

    def test_worker_crash_degrades_to_serial(self):
        runner = SweepRunner(jobs=2, max_retries=1, worker=_crashy_worker)
        outcome = runner.run(GRID[:2])
        assert outcome.failures == 0
        assert outcome.retries == 2          # two pool rebuilds, then serial
        assert all(r is not None for r in outcome.results)

    def test_deterministic_failure_recorded(self):
        outcome = SweepRunner(jobs=1, worker=_failing_worker).run(GRID[:2])
        assert outcome.failures == 2
        assert outcome.results == [None, None]
        assert all("ValueError" in reason
                   for reason in outcome.errors.values())

    def test_stall_timeout_cancels_points(self):
        runner = SweepRunner(jobs=2, task_timeout=0.3,
                             worker=_sleepy_worker)
        outcome = runner.run(GRID[:2])
        assert outcome.failures == 2
        assert all("timeout" in reason
                   for reason in outcome.errors.values())

    def test_summary_line_format(self):
        outcome = SweepRunner(jobs=1).run(GRID[:1])
        line = outcome.summary_line()
        assert line.startswith("sweep: points=1 simulated=1 cache_hits=0 "
                               "deduped=0 failures=0 retries=0 jobs=1")

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert SweepRunner().jobs == 3
        monkeypatch.setenv("REPRO_JOBS", "junk")
        assert default_jobs() == 1


# -- grid + merge -------------------------------------------------------------


class TestGridAndMerge:
    def test_build_grid_shapes(self):
        tasks = build_grid(("comp", "gcc"), SHORT, knob="n", values=(4, 10),
                           widths=(4, 8))
        # per width: 2 baselines + 2 settings x 2 benchmarks
        assert len(tasks) == 2 * (2 + 4)
        labels = {task.label for task in tasks}
        assert "baseline|w=4" in labels and "n=10|w=8" in labels

    def test_merge_attaches_speedups_and_aggregates(self):
        outcome = SweepRunner(jobs=1).run(GRID)
        merged = merge_sweep(outcome.results, context={"note": "test"})
        assert merged["schema"] == "repro.sweep/1"
        assert merged["context"] == {"note": "test"}
        ssmt_points = [p for p in merged["points"] if p["kind"] == "ssmt"]
        assert all("speedup" in p for p in ssmt_points)
        agg = merged["aggregates"]["ssmt"]
        assert set(agg["per_benchmark"]) == {"comp", "gcc"}
        assert agg["mean_speedup"] > 0.5

    def test_build_grid_predictor_threads_through(self):
        from repro.branch.zoo import small_config

        config = small_config("tage")
        tasks = build_grid(("comp",), SHORT, predictor=config)
        assert all(task.predictor == config for task in tasks)
        default = build_grid(("comp",), SHORT)
        assert all(task.predictor is None for task in default)
        assert {task.key for task in tasks}.isdisjoint(
            {task.key for task in default})

    def test_merge_without_baseline_has_no_speedup(self):
        outcome = SweepRunner(jobs=1).run([GRID[1]])
        merged = merge_sweep(outcome.results)
        assert "speedup" not in merged["points"][0]
        assert merged["aggregates"] == {}


# -- CLI ----------------------------------------------------------------------


class TestSweepCLI:
    ARGS = ["sweep", "--benchmarks", "comp", "--instructions", str(SHORT),
            "--knob", "n", "--values", "4", "10", "--jobs", "2"]

    def test_repeated_run_hits_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        out_a = str(tmp_path / "a.json")
        out_b = str(tmp_path / "b.json")
        assert main(self.ARGS + ["--cache-dir", cache_dir,
                                 "--json-out", out_a]) == 0
        first = capsys.readouterr().out
        assert "simulated=3" in first and "cache_hits=0" in first
        assert main(self.ARGS + ["--cache-dir", cache_dir,
                                 "--json-out", out_b]) == 0
        second = capsys.readouterr().out
        assert "simulated=0" in second and "cache_hits=3" in second
        with open(out_a) as a, open(out_b) as b:
            assert json.load(a)["points"] == json.load(b)["points"]

    def test_bench_out_artifact(self, tmp_path, capsys):
        bench_dir = str(tmp_path)
        assert main(self.ARGS + ["--bench-out", bench_dir]) == 0
        capsys.readouterr()
        with open(os.path.join(bench_dir, "BENCH_sweep.json")) as handle:
            artifact = json.load(handle)
        assert artifact["schema"] == "repro.bench/1"
        assert "n=4" in artifact["results"]

    def test_values_require_knob(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--values", "4"])

    def test_predictor_flag_runs_zoo_baseline(self, capsys):
        assert main(["sweep", "--benchmarks", "comp", "--instructions",
                     "2000", "--predictor", "tage"]) == 0
        assert "simulated=2" in capsys.readouterr().out

    def test_unknown_predictor_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmarks", "comp", "--instructions",
                  "2000", "--predictor", "mystery-meat"])
