"""Tests for the repro.obs observability layer.

Covers the dual-domain event model (catalogue validation, bounded
recorder with drop accounting, the flight tap), the Chrome trace-event
export and its round-trip, the misprediction flight recorder (online
H2P classification, dump bounding, artifact diffing), the ObsSession
integration on a promoting benchmark, the tracer's rejected-spawn and
aborted-then-consumed attribution fixes, the obs CLI surface, and the
zero-cost guarantee (a default run never imports repro.obs, proven in
a fresh subprocess).
"""

import json
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.obs import (
    CYCLE_DOMAIN,
    EVENT_CATALOG,
    FLIGHT_SCHEMA,
    OBS_SCHEMA,
    WALL_DOMAIN,
    EventRecorder,
    FlightRecorder,
    ObsEvent,
    ObsSession,
    diff_flight,
    events_from_chrome,
    load_flight,
    to_chrome_trace,
    write_chrome_trace,
    write_flight,
)
from repro.obs.events import PH_COMPLETE, PH_COUNTER
from repro.obs.export import CATEGORY_TIDS, DOMAIN_PIDS
from repro.telemetry.tracer import (
    CAUSE_PATH_DEVIATION,
    REJECT_NO_CONTEXT,
    REJECT_PATH_PREFIX,
    ThreadTracer,
)
from repro.workloads import benchmark_trace

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: a benchmark/length pair known to promote paths and spawn microthreads
SPAN_BENCH = "li"
SPAN_LENGTH = 50_000


@pytest.fixture(scope="module")
def obs_run():
    """One instrumented run shared by the integration tests."""
    trace = benchmark_trace(SPAN_BENCH, SPAN_LENGTH)
    flight = FlightRecorder(window=32)
    session = ObsSession(sample_every=0, flight=flight)
    result, engine = run_ssmt(trace, SSMTConfig(), telemetry=session)
    return session, result, engine


# -- event model --------------------------------------------------------------


class TestEventModel:
    def test_catalog_domains_are_valid(self):
        for name, (domain, cat) in EVENT_CATALOG.items():
            assert domain in (CYCLE_DOMAIN, WALL_DOMAIN), name
            assert cat in CATEGORY_TIDS, name

    def test_cycle_event(self):
        rec = EventRecorder()
        event = rec.cycle("mispredict", 42, pc=7)
        assert event.domain == CYCLE_DOMAIN
        assert event.ts == 42
        assert event.args == {"pc": 7}

    def test_wall_event_timestamps_advance(self):
        tick = iter(range(100))
        rec = EventRecorder(clock=lambda: next(tick))
        first = rec.wall("cache_hit", key="a")
        second = rec.wall("cache_hit", key="b")
        assert second.ts > first.ts >= 0

    def test_unknown_name_rejected(self):
        rec = EventRecorder()
        with pytest.raises(KeyError):
            rec.cycle("not_an_event", 0)

    def test_wrong_domain_rejected(self):
        rec = EventRecorder()
        with pytest.raises(ValueError):
            rec.cycle("cache_hit", 0)       # wall-domain name
        with pytest.raises(ValueError):
            rec.wall("mispredict")          # cycle-domain name

    def test_bounded_with_drop_accounting(self):
        rec = EventRecorder(max_events=3)
        for cycle in range(5):
            rec.cycle("mispredict", cycle)
        assert len(rec) == 3
        assert rec.total_dropped == 2
        assert rec.dropped["branch"] == 2
        # oldest events were evicted
        assert [e.ts for e in rec.sorted_events()] == [2, 3, 4]

    def test_cycle_tap_sees_dropped_events(self):
        rec = EventRecorder(max_events=2)
        tapped = []
        rec.cycle_tap = tapped.append
        for cycle in range(5):
            rec.cycle("mispredict", cycle)
        assert len(tapped) == 5     # the tap is never blinded by bounding

    def test_sort_order_is_domain_ts_seq(self):
        rec = EventRecorder(clock=lambda: 0.0)
        rec.wall("cache_hit")
        rec.cycle("mispredict", 10)
        rec.cycle("promote", 5, pc=1)
        names = [e.name for e in rec.sorted_events()]
        assert names == ["promote", "mispredict", "cache_hit"]

    def test_event_round_trip(self):
        event = ObsEvent(CYCLE_DOMAIN, 9, 3, "build", "builder",
                         ph=PH_COMPLETE, dur=4.0, args={"pc": 1})
        back = ObsEvent.from_dict(event.as_dict())
        assert back.as_dict() == event.as_dict()

    def test_as_dict_counts(self):
        rec = EventRecorder()
        rec.cycle("mispredict", 1)
        rec.cycle("mispredict", 2)
        rec.cycle("promote", 3, pc=0)
        out = rec.as_dict()
        assert out["stored"] == 3
        assert out["count_mispredict"] == 2
        assert out["count_promote"] == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventRecorder(max_events=0)


# -- Chrome trace export ------------------------------------------------------


class TestChromeExport:
    def _events(self):
        rec = EventRecorder(clock=lambda: 0.0)
        rec.cycle("mispredict", 10, pc=5, idx=100)
        rec.cycle("microthread_span", 3, ph=PH_COMPLETE, dur=7.0, pc=5,
                  span_id=0)
        rec.cycle("active_contexts", 10, ph=PH_COUNTER, active=2)
        rec.wall("task_dispatch", key="abc")
        return rec.sorted_events()

    def test_payload_shape(self):
        payload = to_chrome_trace(self._events(), context={"bench": "li"})
        assert payload["schema"] == OBS_SCHEMA
        assert payload["otherData"]["bench"] == "li"
        assert payload["otherData"]["events"] == 4

    def test_domains_get_distinct_processes(self):
        payload = to_chrome_trace(self._events())
        rows = [r for r in payload["traceEvents"] if r["ph"] != "M"]
        pids = {r["domain"]: r["pid"] for r in rows}
        assert pids == {"cycle": DOMAIN_PIDS[CYCLE_DOMAIN],
                        "wall": DOMAIN_PIDS[WALL_DOMAIN]}

    def test_metadata_tracks_named(self):
        payload = to_chrome_trace(self._events())
        meta = [r for r in payload["traceEvents"] if r["ph"] == "M"]
        names = {r["args"]["name"] for r in meta
                 if r["name"] == "process_name"}
        assert names == {"sim cycles", "wall clock"}
        threads = {r["args"]["name"] for r in meta
                   if r["name"] == "thread_name"}
        assert {"branch", "microthread", "occupancy", "sweep"} <= threads

    def test_phases_and_durations(self):
        payload = to_chrome_trace(self._events())
        by_name = {r["name"]: r for r in payload["traceEvents"]
                   if r["ph"] != "M"}
        assert by_name["mispredict"]["ph"] == "i"
        assert by_name["mispredict"]["s"] == "t"
        assert by_name["microthread_span"]["ph"] == "X"
        assert by_name["microthread_span"]["dur"] == 7.0
        assert by_name["active_contexts"]["ph"] == "C"
        assert by_name["active_contexts"]["args"] == {"active": 2}

    def test_round_trip(self, tmp_path):
        events = self._events()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), events, dropped=3)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["otherData"]["dropped"] == 3
        back = events_from_chrome(payload)
        assert [e.as_dict() for e in back] == [e.as_dict() for e in events]

    def test_round_trip_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            events_from_chrome({"schema": "repro.sweep/1",
                                "traceEvents": []})


# -- flight recorder ----------------------------------------------------------


class TestFlightRecorder:
    def test_regime_transitions(self):
        flight = FlightRecorder()
        path = (1, 2)
        assert flight.regime(9, path) == "transient"
        # three always-mispredicting executions: not yet min_occurrences
        for idx in range(3):
            assert flight.on_branch(idx, 9, path, True, idx * 10) is None
        assert flight.regime(9, path) == "transient"
        # the 4th execution crosses min_occurrences -> path becomes H2P
        assert flight.on_branch(3, 9, path, True, 30) is None
        assert flight.regime(9, path) == "h2p"

    def test_trigger_requires_prior_h2p_regime(self):
        """The regime is evaluated *before* the triggering observation,
        so the first firing is the (min_occurrences+1)-th mispredict."""
        flight = FlightRecorder()
        path = (1,)
        for idx in range(4):
            flight.on_branch(idx, 9, path, True, idx)
        assert flight.h2p_mispredicts == 0
        dump = flight.on_branch(4, 9, path, True, 40)
        assert dump is not None
        assert flight.h2p_mispredicts == 1
        assert dump.occurrences == 5 and dump.mispredicts == 5

    def test_correct_prediction_never_triggers(self):
        flight = FlightRecorder()
        path = (1,)
        for idx in range(10):
            flight.on_branch(idx, 9, path, True, idx)
        assert flight.on_branch(10, 9, path, False, 100) is None

    def test_easy_path_never_triggers(self):
        flight = FlightRecorder()
        path = (2,)
        for idx in range(200):
            flight.on_branch(idx, 5, path, False, idx)
        flight.on_branch(200, 5, path, True, 200)
        assert flight.h2p_mispredicts == 0
        assert flight.regime(5, path) == "easy"

    def test_dump_carries_ring_and_inflight(self):
        flight = FlightRecorder(window=2)
        for seq, cycle in enumerate((1, 2, 3)):
            flight.tap(ObsEvent(CYCLE_DOMAIN, cycle, seq, "mispredict",
                                "branch"))
        spawner = SimpleNamespace(active=[SimpleNamespace(
            thread=SimpleNamespace(term_pc=9, path_id=1),
            spawn_idx=50, target_seq=60, spawn_cycle=100,
            arrival_cycle=140, aborted=False, suffix_progress=2)])
        path = (1,)
        for idx in range(4):
            flight.on_branch(idx, 9, path, True, idx)
        dump = flight.on_branch(4, 9, path, True, 150, spawner=spawner)
        assert [e["ts"] for e in dump.events] == [2, 3]   # window=2
        assert dump.inflight[0]["term_pc"] == 9
        assert dump.inflight[0]["slack_vs_trigger"] == 10  # 150 - 140

    def test_dumps_bounded_but_tally_complete(self):
        flight = FlightRecorder(max_dumps=2)
        path = (1,)
        for idx in range(20):
            flight.on_branch(idx, 9, path, True, idx)
        assert len(flight.dumps) == 2
        assert flight.h2p_mispredicts == 16     # every firing counted
        assert flight.triggers_by_pc[9] == 16

    def test_artifact_round_trip_and_diff(self, tmp_path):
        def run(pcs):
            flight = FlightRecorder()
            for pc in pcs:
                for idx in range(6):
                    flight.on_branch(idx, pc, (pc,), True, idx)
            return flight

        ref_path = tmp_path / "ref.json"
        cand_path = tmp_path / "cand.json"
        write_flight(str(ref_path), run([7, 8]), context={"run": "off"})
        write_flight(str(cand_path), run([8, 11]))
        reference = load_flight(str(ref_path))
        assert reference["schema"] == FLIGHT_SCHEMA
        assert reference["context"] == {"run": "off"}
        diff = diff_flight(reference, load_flight(str(cand_path)))
        assert diff["repaired_pcs"] == [7]
        assert diff["surviving_pcs"] == [8]
        assert diff["introduced_pcs"] == [11]
        assert diff["event_mix"] == {}       # no tapped events either run

    def test_load_flight_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "repro.report/1"}')
        with pytest.raises(ValueError):
            load_flight(str(path))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(window=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_dumps=0)


# -- ObsSession integration ---------------------------------------------------


class TestObsSession:
    def test_lifecycle_events_recorded(self, obs_run):
        session, _, engine = obs_run
        counts = session.recorder.counts()
        assert counts["promote"] == engine.path_cache.stats.promotions
        assert counts["build"] == engine.builder.stats.built
        assert counts["spawn"] == engine.spawner.stats.spawned
        assert counts["run"] == 1
        assert counts.get("mispredict", 0) > 0
        assert counts.get("microthread_span", 0) > 0
        assert counts.get("store_pcache", 0) > 0

    def test_spans_match_tracer(self, obs_run):
        session, _, _ = obs_run
        spans = [e for e in session.recorder.events
                 if e.name == "microthread_span"]
        assert len(spans) == len(session.tracer.spans)
        assert all(e.ph == PH_COMPLETE and e.dur >= 0 for e in spans)

    def test_consumed_predictions_have_kinds(self, obs_run):
        session, _, engine = obs_run
        consumed = [e for e in session.recorder.events
                    if e.name == "prediction_consumed"]
        assert len(consumed) == sum(engine.prediction_kind_counts.values())
        assert all(e.args["kind"] for e in consumed)

    def test_occupancy_counters_throttled(self, obs_run):
        session, result, _ = obs_run
        gauges = [e for e in session.recorder.events
                  if e.name == "active_contexts"]
        assert gauges
        assert all(e.ph == PH_COUNTER for e in gauges)
        assert len(gauges) <= result.cycles // session.occupancy_every + 1

    def test_flight_fired_on_h2p(self, obs_run):
        session, _, _ = obs_run
        assert session.flight.h2p_mispredicts > 0
        assert session.flight.dumps
        markers = [e for e in session.recorder.events
                   if e.name == "h2p_mispredict"]
        assert len(markers) == session.flight.h2p_mispredicts

    def test_registry_exports_obs_counters(self, obs_run):
        session, _, _ = obs_run
        snapshot = session.registry.snapshot()
        assert snapshot["obs.stored"] == len(session.recorder)
        assert snapshot["obs.flight.h2p_mispredicts"] > 0

    def test_run_determinism(self, obs_run):
        """Two ObsSession runs of the same trace produce identical
        cycle-domain streams (the property shard merging relies on)."""
        session, _, _ = obs_run
        trace = benchmark_trace(SPAN_BENCH, SPAN_LENGTH)
        again = ObsSession(sample_every=0)
        run_ssmt(trace, SSMTConfig(), telemetry=again)

        def stream(s):
            # seq is projected away: the fixture's flight recorder
            # interleaves h2p_mispredict events that shift numbering
            return [(e.ts, e.name, e.ph, e.dur,
                     json.dumps(e.args, sort_keys=True))
                    for e in s.recorder.sorted_events()
                    if e.domain == CYCLE_DOMAIN
                    and e.name != "h2p_mispredict"]

        assert stream(session) == stream(again)

    def test_chrome_payload_loads_round_trip(self, obs_run):
        session, _, _ = obs_run
        payload = session.chrome_payload(context={"benchmark": SPAN_BENCH})
        assert payload["schema"] == OBS_SCHEMA
        back = events_from_chrome(payload)
        assert len(back) == len(session.recorder)

    def test_report_still_builds(self, obs_run):
        """ObsSession stays a full TelemetrySession."""
        session, result, engine = obs_run
        report = session.build_report(SPAN_BENCH, result, engine)
        assert report.metrics["spawn.spawned"] > 0
        assert report.metrics["obs.stored"] == len(session.recorder)


# -- tracer attribution fixes -------------------------------------------------


def _instance(term_pc=9, spawn_cycle=100):
    return SimpleNamespace(
        thread=SimpleNamespace(term_pc=term_pc, path_id=1),
        spawn_idx=50, target_seq=60, spawn_cycle=spawn_cycle,
        completion_cycle=120, arrival_cycle=118, aborted=False,
        suffix_progress=1)


class TestTracerAttribution:
    def test_spawn_rejections_tallied_by_reason(self):
        tracer = ThreadTracer()
        thread = SimpleNamespace(term_pc=9)
        tracer.on_spawn_rejected(thread, 1, 10, REJECT_PATH_PREFIX)
        tracer.on_spawn_rejected(thread, 2, 20, REJECT_PATH_PREFIX)
        tracer.on_spawn_rejected(thread, 3, 30, REJECT_NO_CONTEXT)
        out = tracer.as_dict()
        assert out[f"rejected_{REJECT_PATH_PREFIX}"] == 2
        assert out[f"rejected_{REJECT_NO_CONTEXT}"] == 1
        assert len(tracer) == 0     # no span ever opened

    def test_aborted_then_consumed_outcome_attributed(self):
        """An aborted instance's prediction can still be consumed (its
        Store_PCache landed before the kill); the outcome must land on
        the closed span instead of being dropped."""
        tracer = ThreadTracer()
        instance = _instance()
        tracer.on_spawn(instance)
        tracer.on_execute(instance, 105)
        tracer.on_abort(instance, CAUSE_PATH_DEVIATION, idx=70, cycle=119)
        tracer.on_outcome(instance, "late_partial", False,
                          target_fetch_cycle=117)
        span = tracer.spans[0]
        assert span.status == "aborted"
        assert span.outcome == "late_partial"
        assert span.target_fetch_cycle == 117
        assert span.slack_cycles == -1      # arrived 1 cycle late

    def test_closed_retention_bounded(self):
        tracer = ThreadTracer()
        instances = [_instance() for _ in range(80)]
        for instance in instances:
            tracer.on_spawn(instance)
            tracer.on_complete(instance, idx=70, cycle=130)
        assert len(tracer._closed) <= 64
        # the oldest closed span is no longer attributable...
        tracer.on_outcome(instances[0], "early", True, 117)
        assert tracer.spans[0].outcome == ""
        # ...but recent ones still are
        tracer.on_outcome(instances[-1], "early", True, 117)
        assert tracer.spans[-1].outcome == "early"

    def test_finish_clears_closed(self):
        tracer = ThreadTracer()
        instance = _instance()
        tracer.on_spawn(instance)
        tracer.on_complete(instance, idx=70, cycle=130)
        tracer.finish()
        tracer.on_outcome(instance, "early", True, 117)
        assert tracer.spans[0].outcome == ""


# -- engine wiring ------------------------------------------------------------


class TestEngineWiring:
    def test_rejections_recorded_on_real_run(self, obs_run):
        """The spawn manager reports pre-allocation rejections; on a
        promoting benchmark the invoke/spawn gap must be attributed."""
        session, _, engine = obs_run
        tally = session.tracer.tallies.spawn_rejections
        stats = engine.spawner.stats
        assert tally[REJECT_PATH_PREFIX] == stats.pre_allocation_aborts
        assert tally[REJECT_NO_CONTEXT] == stats.no_free_context

    def test_base_session_control_hook_is_none(self):
        from repro.telemetry import TelemetrySession
        assert TelemetrySession().control_hook is None

    def test_plain_run_matches_obs_run(self):
        """Observation is strictly observational: cycles and IPC are
        bit-identical with and without an attached ObsSession."""
        trace = benchmark_trace(SPAN_BENCH, 20_000)
        bare, _ = run_ssmt(trace, SSMTConfig())
        observed, _ = run_ssmt(benchmark_trace(SPAN_BENCH, 20_000),
                               SSMTConfig(),
                               telemetry=ObsSession(sample_every=0))
        assert bare.as_dict() == observed.as_dict()


# -- CLI ----------------------------------------------------------------------


class TestObsCli:
    def test_trace_writes_perfetto_and_flight(self, tmp_path, capsys):
        perfetto = tmp_path / "run.perfetto.json"
        flight = tmp_path / "flight.json"
        rc = main(["trace", SPAN_BENCH, "--instructions", "30000",
                   "--limit", "0", "--perfetto", str(perfetto),
                   "--flight-out", str(flight)])
        assert rc == 0
        payload = json.loads(perfetto.read_text())
        assert payload["schema"] == OBS_SCHEMA
        domains = {r.get("domain") for r in payload["traceEvents"]
                   if r["ph"] != "M"}
        assert domains == {"cycle", "wall"}
        assert load_flight(str(flight))["h2p_mispredicts"] > 0
        out = capsys.readouterr().out
        assert "perfetto" in out

    def test_postmortem_renders_dumps(self, tmp_path, capsys):
        flight = tmp_path / "flight.json"
        main(["trace", SPAN_BENCH, "--instructions", "30000",
              "--limit", "0", "--flight-out", str(flight)])
        capsys.readouterr()
        rc = main(["postmortem", str(flight), "--dumps", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "h2p_mispredicts=" in out
        assert "dump#0" in out

    def test_postmortem_diff(self, tmp_path, capsys):
        flight = tmp_path / "flight.json"
        main(["trace", SPAN_BENCH, "--instructions", "30000",
              "--limit", "0", "--flight-out", str(flight)])
        capsys.readouterr()
        rc = main(["postmortem", str(flight), "--diff", str(flight),
                   "--dumps", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repaired pcs" in out
        assert "introduced pcs: []" in out


# -- the zero-cost guarantee --------------------------------------------------


class TestZeroCost:
    def test_default_paths_never_import_obs(self):
        """A fresh interpreter running the default worker, a plain
        telemetry run, and an untraced CLI sweep keeps repro.obs out of
        sys.modules entirely."""
        program = (
            "import sys\n"
            "from repro.parallel.taskkey import SweepTask\n"
            "from repro.parallel.worker import run_task\n"
            "run_task(SweepTask(kind='ssmt', benchmark='gcc',\n"
            "                   instructions=2000))\n"
            "from repro.telemetry import TelemetrySession\n"
            "from repro.core.ssmt import SSMTConfig, run_ssmt\n"
            "from repro.workloads import benchmark_trace\n"
            "run_ssmt(benchmark_trace('gcc', 2000), SSMTConfig(),\n"
            "         telemetry=TelemetrySession())\n"
            "from repro.cli import main\n"
            "main(['sweep', '--benchmarks', 'gcc',\n"
            "      '--instructions', '2000'])\n"
            "obs = [m for m in sys.modules if m.startswith('repro.obs')]\n"
            "print('OBS_MODULES=' + __import__('json').dumps(obs))\n"
        )
        proc = subprocess.run([sys.executable, "-c", program],
                              capture_output=True, text=True,
                              env={"PYTHONPATH": SRC, "PATH": ""},
                              check=True)
        marker = [line for line in proc.stdout.splitlines()
                  if line.startswith("OBS_MODULES=")]
        assert marker, proc.stdout
        assert json.loads(marker[0][len("OBS_MODULES="):]) == []
