"""Sweep-side observability tests.

The centrepiece is the event-identity property: serial, parallel, and
cached executions of the same grid produce trace shards whose merged
timelines are event-identical under :func:`timeline_identity` (the
projection that drops only the legitimately nondeterministic wall
timestamps).  Around it: shard I/O and merge mechanics, the
:class:`SweepObs` runner observer (wall events, live echo lines,
heartbeat/stall surfacing), the extended summary-line accounting
(cache_misses / workers / rebuilds), and the traced-worker payload
bit-identity guarantee.
"""

import functools
import json
import time

from repro.cli import main
from repro.obs import (
    OBS_SCHEMA,
    SweepObs,
    load_shards,
    merge_shards,
    timeline_identity,
    write_merged_trace,
    write_shard,
)
from repro.obs.events import CYCLE_DOMAIN, WALL_DOMAIN, EventRecorder
from repro.obs.sweepobs import load_shard, shard_path
from repro.parallel.runner import SweepOutcome, SweepRunner
from repro.parallel.taskkey import SweepTask
from repro.parallel.worker import run_task, run_task_traced

SHORT = 3000

GRID = [
    SweepTask(kind="baseline", benchmark="comp", instructions=SHORT),
    SweepTask(kind="ssmt", benchmark="comp", instructions=SHORT),
    SweepTask(kind="ssmt", benchmark="li", instructions=SHORT),
]


def t(**overrides):
    defaults = dict(kind="ssmt", benchmark="comp", instructions=SHORT)
    defaults.update(overrides)
    return SweepTask(**defaults)


def traced_runner(trace_dir, **kwargs):
    worker = functools.partial(run_task_traced, trace_dir=str(trace_dir))
    return SweepRunner(worker=worker, **kwargs)


# -- the event-identity property ---------------------------------------------


class TestTimelineIdentity:
    def test_serial_parallel_cached_event_identical(self, tmp_path):
        """The tentpole property: three execution strategies, one
        timeline."""
        dirs = [tmp_path / name for name in ("serial", "parallel", "cached")]
        cache = tmp_path / "cache"

        serial = traced_runner(dirs[0], jobs=1).run(GRID)
        parallel = traced_runner(dirs[1], jobs=2,
                                 cache_dir=str(cache)).run(GRID)
        # warm cache: nothing simulates, shards come from the first pass
        cached = traced_runner(dirs[1], jobs=2,
                               cache_dir=str(cache)).run(GRID)
        assert serial.simulated == parallel.simulated == len(GRID)
        assert cached.simulated == 0 and cached.cache_hits == len(GRID)

        identities = [timeline_identity(load_shards(str(d)))
                      for d in (dirs[0], dirs[1])]
        assert identities[0] == identities[1]
        assert identities[0]     # non-trivial: events actually recorded
        # payloads are bit-identical across all three strategies too
        assert (json.dumps(serial.results, sort_keys=True)
                == json.dumps(parallel.results, sort_keys=True)
                == json.dumps(cached.results, sort_keys=True))

    def test_identity_excludes_wall_coordinates(self):
        def shard(wall_ts):
            rec = EventRecorder(clock=lambda: wall_ts)
            rec.cycle("mispredict", 10, pc=1)
            rec.wall("task_run", dur=wall_ts)
            return {"k": list(rec.events)}

        assert timeline_identity(shard(1.0)) == timeline_identity(shard(9.0))

    def test_identity_sees_cycle_divergence(self):
        def shard(cycle):
            rec = EventRecorder(clock=lambda: 0.0)
            rec.cycle("mispredict", cycle, pc=1)
            return {"k": list(rec.events)}

        assert timeline_identity(shard(10)) != timeline_identity(shard(11))


# -- shards and merging -------------------------------------------------------


class TestShards:
    def _events(self, cycle):
        rec = EventRecorder(clock=lambda: 0.0)
        rec.cycle("mispredict", cycle, pc=1)
        rec.wall("task_run")
        return rec.sorted_events()

    def test_shard_round_trip(self, tmp_path):
        events = self._events(5)
        path = write_shard(str(tmp_path), "k1", events,
                           context={"label": "x"})
        assert path == shard_path(str(tmp_path), "k1")
        back = load_shard(str(tmp_path), "k1")
        assert [e.as_dict() for e in back] == [e.as_dict() for e in events]

    def test_load_shards_skips_foreign_files(self, tmp_path):
        write_shard(str(tmp_path), "k1", self._events(5))
        (tmp_path / "sweep-merged.perfetto.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("hi")
        assert sorted(load_shards(str(tmp_path))) == ["k1"]

    def test_merge_orders_and_tags(self, tmp_path):
        shards = {"bbb": self._events(5), "aaa": self._events(9)}
        merged = merge_shards(shards)
        # cycle events first (both shards), then wall events
        assert [e.domain for e in merged] == [CYCLE_DOMAIN, CYCLE_DOMAIN,
                                              WALL_DOMAIN, WALL_DOMAIN]
        assert [e.ts for e in merged[:2]] == [5, 9]
        assert [e.args["task"] for e in merged[:2]] == ["bbb", "aaa"]
        assert [e.seq for e in merged] == [0, 1, 2, 3]  # reassigned

    def test_write_merged_trace(self, tmp_path):
        shards = {"k1": self._events(5), "k2": self._events(6)}
        path = tmp_path / "merged.perfetto.json"
        payload = write_merged_trace(str(path), shards)
        assert payload["schema"] == OBS_SCHEMA
        assert payload["otherData"]["shards"] == 2
        assert json.loads(path.read_text())["otherData"]["events"] == 4


# -- the traced worker --------------------------------------------------------


class TestTracedWorker:
    def test_payload_bit_identical_to_untraced(self, tmp_path):
        task = t(benchmark="li")
        plain = run_task(task)
        traced = run_task_traced(task, trace_dir=str(tmp_path))
        assert (json.dumps(plain, sort_keys=True)
                == json.dumps(traced, sort_keys=True))

    def test_shard_written_with_context(self, tmp_path):
        task = t(benchmark="li")
        run_task_traced(task, trace_dir=str(tmp_path))
        with open(shard_path(str(tmp_path), task.key)) as handle:
            payload = json.load(handle)
        other = payload["otherData"]
        assert other["task_key"] == task.key
        assert other["benchmark"] == "li"
        names = {r["name"] for r in payload["traceEvents"]
                 if r["ph"] != "M"}
        assert "task_run" in names      # the wall-domain envelope
        assert "run" in names           # the cycle-domain run span


# -- the runner observer ------------------------------------------------------


class _Boom(Exception):
    pass


def _failing_worker(task):
    raise _Boom(f"no result for {task.label}")


class TestSweepObs:
    def test_wall_events_for_lifecycle(self, tmp_path):
        obs = SweepObs()
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path), observer=obs)
        runner.run(GRID[:2])
        counts = obs.recorder.counts()
        assert counts["task_dispatch"] == 2
        assert counts["task_run"] == 2
        assert "cache_hit" not in counts

        rerun = SweepObs()
        SweepRunner(jobs=1, cache_dir=str(tmp_path),
                    observer=rerun).run(GRID[:2])
        assert rerun.recorder.counts() == {"cache_hit": 2}

    def test_cache_miss_only_counted_when_reading(self, tmp_path):
        obs = SweepObs()
        outcome = SweepRunner(jobs=1, cache_dir=str(tmp_path),
                              observer=obs).run(GRID[:1])
        assert outcome.cache_misses == 1
        assert obs.recorder.counts()["cache_miss"] == 1
        # without a cache there is nothing to miss
        bare = SweepObs()
        outcome = SweepRunner(jobs=1, observer=bare).run(GRID[:1])
        assert outcome.cache_misses == 0
        assert "cache_miss" not in bare.recorder.counts()

    def test_failure_recorded(self):
        obs = SweepObs()
        outcome = SweepRunner(jobs=1, worker=_failing_worker,
                              observer=obs).run(GRID[:1])
        assert outcome.failures == 1
        counts = obs.recorder.counts()
        assert counts["task_failed"] == 1
        assert "task_run" not in counts

    def test_live_echo_lines(self):
        lines = []
        obs = SweepObs(live=True, echo=lines.append)
        SweepRunner(jobs=1, observer=obs).run(GRID[:1])
        assert any(line.startswith("sweep[live]: done") for line in lines)
        silent = []
        SweepRunner(jobs=1, observer=SweepObs(live=False,
                                              echo=silent.append)
                    ).run(GRID[:1])
        assert silent == []

    def test_heartbeat_and_stall_events(self):
        lines = []
        obs = SweepObs(live=True, heartbeat_interval=0.1,
                       echo=lines.append)
        obs.on_heartbeat(done=1, total=4, inflight=3, waited=0.05)
        obs.on_heartbeat(done=1, total=4, inflight=3, waited=5.0)
        obs.on_stall(["k1", "k2"], 9.0)
        obs.on_rebuild(1)
        counts = obs.recorder.counts()
        assert counts == {"heartbeat": 2, "stall": 1, "pool_rebuild": 1}
        assert any("no completion for 5.0s" in line for line in lines)
        assert any("STALL" in line for line in lines)
        assert any("rebuilding" in line for line in lines)

    def test_heartbeats_fire_during_slow_parallel_run(self):
        obs = SweepObs(heartbeat_interval=0.1)
        runner = SweepRunner(jobs=2, observer=obs, worker=_dawdle_worker)
        outcome = runner.run(GRID[:2])
        assert outcome.failures == 0
        assert obs.recorder.counts().get("heartbeat", 0) >= 1

    def test_stall_cancels_and_notifies(self):
        obs = SweepObs(heartbeat_interval=0.05)
        runner = SweepRunner(jobs=2, task_timeout=0.3, observer=obs,
                             worker=_sleepy_worker)
        outcome = runner.run(GRID[:2])
        assert outcome.failures == 2
        counts = obs.recorder.counts()
        assert counts["stall"] == 1
        assert counts.get("heartbeat", 0) >= 1   # surfaced while developing

    def test_write_trace(self, tmp_path):
        obs = SweepObs()
        SweepRunner(jobs=1, observer=obs).run(GRID[:1])
        path = tmp_path / "runner.perfetto.json"
        payload = obs.write_trace(str(path), context={"jobs": 1})
        assert payload["schema"] == OBS_SCHEMA
        assert payload["otherData"]["done"] == 1
        assert payload["otherData"]["jobs"] == 1


# module-level workers (must be picklable for the process pool)


def _dawdle_worker(task):
    time.sleep(0.35)
    return run_task(task)


def _sleepy_worker(task):
    time.sleep(60)
    return run_task(task)


# -- summary-line accounting --------------------------------------------------


class TestSummaryAccounting:
    def test_summary_line_new_fields(self):
        outcome = SweepOutcome(results=[None], simulated=1, jobs=2,
                               cache_misses=3, workers=2, rebuilds=1,
                               elapsed=1.0)
        line = outcome.summary_line()
        # existing consumers assert on the prefix through jobs=
        assert "jobs=2 cache_misses=3 workers=2 rebuilds=1" in line
        assert line.endswith("elapsed=1.00s")

    def test_serial_counts_one_worker(self):
        outcome = SweepRunner(jobs=1).run(GRID[:1])
        assert outcome.workers == 1

    def test_parallel_workers_capped_by_pending(self):
        outcome = SweepRunner(jobs=8).run(GRID[:2])
        assert outcome.workers == 2

    def test_all_cached_engages_no_workers(self, tmp_path):
        SweepRunner(jobs=2, cache_dir=str(tmp_path)).run(GRID[:2])
        outcome = SweepRunner(jobs=2, cache_dir=str(tmp_path)).run(GRID[:2])
        assert outcome.workers == 0
        assert outcome.cache_misses == 0


# -- CLI ----------------------------------------------------------------------


class TestSweepCli:
    def test_trace_out_writes_shards_and_merged(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        rc = main(["sweep", "--benchmarks", "li", "--instructions",
                   str(SHORT), "--trace-out", str(trace_dir), "--live"])
        assert rc == 0
        shards = load_shards(str(trace_dir))
        assert len(shards) == 2      # baseline + ssmt
        merged = json.loads(
            (trace_dir / "sweep-merged.perfetto.json").read_text())
        assert merged["schema"] == OBS_SCHEMA
        assert merged["otherData"]["shards"] == 2
        runner_trace = json.loads(
            (trace_dir / "sweep-runner.perfetto.json").read_text())
        assert runner_trace["otherData"]["done"] == 2
        out = capsys.readouterr().out
        assert "sweep[live]: done" in out
        assert "sweep-merged.perfetto.json" in out

    def test_untraced_sweep_unchanged(self, capsys):
        rc = main(["sweep", "--benchmarks", "comp", "--instructions",
                   str(SHORT)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep[live]" not in out
        assert "perfetto" not in out
