"""Behavioural tests of SSMT engine corner cases: demotion, eviction,
prediction-cache keying, builder retry, branch-mode classification."""


from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, SSMTEngine, run_ssmt
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.timing import OoOTimingModel

# Phase-change program: the branch is data-driven (difficult) for the
# first phase, then the selector makes it constant (easy).  Difficult
# paths must be promoted in phase 1 and demoted during phase 2.
PHASED = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 6000
    li r20, 3000
loop:
    bge r1, r20, easy_phase
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    jmp have_value
easy_phase:
    li r6, 10
have_value:
    jmp h1
h1:
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


def small_config(**overrides):
    defaults = dict(n=4, training_interval=8, build_latency=20)
    defaults.update(overrides)
    return SSMTConfig(**defaults)


class TestDemotion:
    def test_paths_demoted_when_phase_changes(self):
        trace = run_program(assemble(PHASED), max_instructions=120_000)
        _, engine = run_ssmt(trace, small_config())
        stats = engine.path_cache.stats
        assert stats.promotions > 0
        assert stats.demotions > 0

    def test_microram_shrinks_after_demotion(self):
        trace = run_program(assemble(PHASED), max_instructions=120_000)
        _, engine = run_ssmt(trace, small_config())
        # By the end of the easy phase only the (new) easy-phase state
        # remains; difficult-phase routines were demoted.
        assert len(engine.microram) < engine.microram.insertions


class TestMicroRAMPressure:
    def test_tiny_microram_evicts_and_clears_promoted(self):
        trace = run_program(assemble(PHASED), max_instructions=60_000)
        _, engine = run_ssmt(trace, small_config(microram_entries=2))
        assert len(engine.microram) <= 2
        if engine.microram.evictions:
            # Evicted paths can re-promote later: promotions exceed
            # the MicroRAM's resident count.
            assert engine.path_cache.stats.promotions > len(engine.microram)


class TestBuilderRetry:
    def test_busy_builder_leads_to_retry_and_eventual_build(self):
        trace = run_program(assemble(PHASED), max_instructions=60_000)
        _, engine = run_ssmt(trace, small_config(build_latency=3000))
        stats = engine.builder.stats
        # with a huge build latency, many requests hit a busy builder...
        assert stats.refused_busy > 0
        # ...but promotion requests keep retrying and some succeed.
        assert stats.built >= 1


class TestBranchModeClassification:
    def test_branch_mode_tracks_by_pc(self):
        trace = run_program(assemble(PHASED), max_instructions=60_000)
        _, engine = run_ssmt(trace, small_config(classify_by_branch=True))
        assert engine.builder.stats.built > 0
        # every MicroRAM key is branch-level (empty path tuple)
        for key in list(engine.microram._by_key):
            assert key.branches == ()

    def test_branch_mode_predictions_consumed(self):
        trace = run_program(assemble(PHASED), max_instructions=60_000)
        result, engine = run_ssmt(trace, small_config(classify_by_branch=True))
        assert sum(engine.prediction_kind_counts.values()) > 0


class TestStashHygiene:
    def test_pending_mispredict_stash_bounded(self):
        """Warm-up (partial) path events must still consume stashed
        outcomes (regression for a slow leak)."""
        trace = run_program(assemble(PHASED), max_instructions=30_000)
        _, engine = run_ssmt(trace, small_config())
        assert len(engine._pending_mispredict) == 0


class TestEngineIsolation:
    def test_two_runs_do_not_share_state(self):
        trace = run_program(assemble(PHASED), max_instructions=30_000)
        _, first = run_ssmt(trace, small_config())
        _, second = run_ssmt(trace, small_config())
        assert first is not second
        assert first.builder.stats.built == second.builder.stats.built

    def test_engine_without_memory_image_runs(self):
        """Microthreads read zeros for unknown memory: predictions may be
        wrong but nothing crashes (and violation handling still works)."""
        trace = run_program(assemble(PHASED), max_instructions=30_000)
        engine = SSMTEngine(small_config())  # no initial_memory
        result = OoOTimingModel().run(trace, BranchPredictorComplex(),
                                      listener=engine)
        assert result.instructions == len(trace)
