"""Tests for the full BranchPredictorComplex over dynamic traces."""

from repro.branch.unit import BranchPredictorComplex, default_complex, oracle_complex
from repro.isa.assembler import assemble
from repro.sim.functional import run_program


def trace_of(source, n=10_000):
    return run_program(assemble(source), max_instructions=n)


def process_all(unit, trace):
    outcomes = []
    for rec in trace:
        if rec.inst.is_control:
            outcomes.append((rec, unit.process(rec)))
    return outcomes


class TestConditionalPrediction:
    def test_biased_loop_branch_mostly_correct(self):
        trace = trace_of("""
            li r1, 0
            li r2, 1000
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """, n=5000)
        unit = BranchPredictorComplex()
        outcomes = process_all(unit, trace)
        mispredicts = sum(1 for _, o in outcomes if o.mispredicted)
        assert mispredicts <= 5
        assert unit.accuracy() > 0.99

    def test_predicted_target_for_taken(self):
        trace = trace_of("li r1, 0\nli r2, 5\nloop:\naddi r1, r1, 1\nblt r1, r2, loop\nhalt")
        unit = BranchPredictorComplex()
        last_branch_outcome = None
        for rec in trace:
            if rec.inst.is_control:
                last_branch_outcome = unit.process(rec)
        # the final (not-taken) branch predicts fall-through
        assert last_branch_outcome.predicted_target in (4, 2)

    def test_btb_miss_flagged_on_first_taken(self):
        trace = trace_of("li r1, 0\nli r2, 9\nloop:\naddi r1, r1, 1\nblt r1, r2, loop\nhalt")
        unit = BranchPredictorComplex()
        saw_btb_miss = False
        for rec in trace:
            if rec.inst.is_control:
                outcome = unit.process(rec)
                if outcome.btb_miss:
                    saw_btb_miss = True
        assert saw_btb_miss


class TestReturnPrediction:
    def test_call_return_pairs_never_mispredict(self):
        trace = trace_of("""
            li r1, 0
            li r2, 50
        loop:
            call fn
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        fn:
            ret
        """, n=3000)
        unit = BranchPredictorComplex()
        process_all(unit, trace)
        assert unit.return_count > 10
        assert unit.return_mispredicts == 0


class TestIndirectPrediction:
    def test_stable_indirect_target_learned(self):
        trace = trace_of("""
            li r1, 0
            li r2, 50
        loop:
            li r3, 6
            jr r3
            halt
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """, n=3000)
        unit = BranchPredictorComplex()
        process_all(unit, trace)
        assert unit.indirect_count > 10
        # first occurrence mispredicts; afterwards the target cache learns
        assert unit.indirect_mispredicts <= unit.indirect_count // 2


class TestOracleComplex:
    def test_oracle_never_mispredicts_direction(self):
        trace = trace_of("""
            li r1, 0
            li r2, 64
        loop:
            andi r3, r1, 7
            li r4, 3
            blt r3, r4, skip
            addi r5, r5, 1
        skip:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """, n=5000)
        unit = oracle_complex()
        process_all(unit, trace)
        assert unit.conditional_mispredicts == 0

    def test_default_complex_uses_table3_sizes(self):
        unit = default_complex()
        assert unit.btb.entries == 4096
        assert unit.ras.entries == 32
        assert unit.target_cache.entries == 64 * 1024
        assert unit.direction.selector.entries == 64 * 1024


class TestStatistics:
    def test_counts_partition_by_kind(self):
        trace = trace_of("""
            li r1, 0
            li r2, 10
        loop:
            call fn
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        fn:
            ret
        """, n=2000)
        unit = BranchPredictorComplex()
        process_all(unit, trace)
        assert unit.conditional_count > 0
        assert unit.return_count > 0
        assert unit.unconditional_count > 0  # the calls
        assert unit.total_predicted == (
            unit.conditional_count + unit.indirect_count
            + unit.return_count + unit.unconditional_count
        )

    def test_accuracy_with_no_branches_is_one(self):
        assert BranchPredictorComplex().accuracy() == 1.0
