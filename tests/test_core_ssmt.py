"""End-to-end tests of the SSMT engine on small crafted programs."""

import pytest

from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, SSMTEngine, run_ssmt
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.timing import OoOTimingModel

# A loop with a data-dependent branch whose predicate is fully computable
# from in-scope instructions: prime microthread territory.
DATA_LOOP = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 4000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    jmp h1
h1:
    addi r9, r9, 1
    jmp h2
h2:
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


def fast_config(**overrides):
    """Small structures + short training so tests converge quickly."""
    defaults = dict(n=4, training_interval=8, build_latency=20)
    defaults.update(overrides)
    return SSMTConfig(**defaults)


@pytest.fixture(scope="module")
def data_trace():
    return run_program(assemble(DATA_LOOP), max_instructions=40_000)


class TestEndToEnd:
    def test_machine_learns_and_predicts(self, data_trace):
        result, engine = run_ssmt(data_trace, fast_config())
        assert engine.builder.stats.built > 0
        assert engine.spawner.stats.spawned > 0
        assert engine.prediction_cache.stats.writes > 0
        used = (engine.correct_microthread_predictions
                + engine.incorrect_microthread_predictions)
        assert used > 0
        # pre-computation should be overwhelmingly correct
        assert engine.correct_microthread_predictions > 10 * max(
            1, engine.incorrect_microthread_predictions)

    def test_speedup_over_baseline(self, data_trace):
        base = OoOTimingModel().run(data_trace, BranchPredictorComplex())
        result, _ = run_ssmt(data_trace, fast_config())
        assert result.ipc > base.ipc

    def test_effective_mispredicts_reduced(self, data_trace):
        base = OoOTimingModel().run(data_trace, BranchPredictorComplex())
        result, _ = run_ssmt(data_trace, fast_config())
        # early correct predictions remove mispredictions outright
        assert result.effective_mispredicts < base.effective_mispredicts

    def test_overhead_only_mode_uses_no_predictions(self, data_trace):
        result, engine = run_ssmt(data_trace,
                                  fast_config(use_predictions=False))
        assert engine.spawner.stats.spawned > 0     # threads still run
        assert result.prediction_kinds == {}        # but never consumed
        assert result.hw_mispredicts == result.effective_mispredicts

    def test_prediction_kinds_recorded(self, data_trace):
        result, engine = run_ssmt(data_trace, fast_config())
        assert sum(result.prediction_kinds.values()) > 0
        assert set(result.prediction_kinds) <= {
            "early", "late_agree", "late_useful", "late_harmful", "useless"
        }
        assert result.prediction_kinds == engine.prediction_kind_counts

    def test_report_structure(self, data_trace):
        _, engine = run_ssmt(data_trace, fast_config())
        report = engine.report()
        for key in ("path_cache", "builder", "spawn", "prediction_cache",
                    "prediction_kinds", "microram_routines"):
            assert key in report

    def test_pruning_config_produces_vp_nodes(self, data_trace):
        _, engine = run_ssmt(data_trace, fast_config(pruning=True))
        assert engine.builder.stats.value_pruned > 0

    def test_no_pruning_config_produces_none(self, data_trace):
        _, engine = run_ssmt(data_trace, fast_config(pruning=False))
        assert engine.builder.stats.value_pruned == 0
        assert engine.builder.stats.address_pruned == 0


STORE_INTERFERENCE = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 4000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    jmp h0
h0:
    andi r10, r1, 7
    li r11, 3
    bne r10, r11, nostore
    andi r12, r1, 63
    st r12, 0(r5)
nostore:
    ld r6, 0(r5)
    jmp h1
h1:
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


class TestMemoryDependenceSpeculation:
    def test_violations_detected_and_rebuilt(self):
        trace = run_program(assemble(STORE_INTERFERENCE),
                            max_instructions=50_000)
        result, engine = run_ssmt(trace, fast_config())
        # every 8th iteration stores to the address the microthread loads
        assert engine.spawner.stats.memdep_violations > 0
        assert engine.builder.stats.rebuilds > 0

    def test_violated_predictions_not_consumed(self):
        trace = run_program(assemble(STORE_INTERFERENCE),
                            max_instructions=50_000)
        _, engine = run_ssmt(trace, fast_config())
        assert engine.prediction_cache.stats.invalidations > 0


class TestAbortMechanism:
    def test_aborts_occur_on_divergent_paths(self, data_trace):
        _, engine = run_ssmt(data_trace, fast_config())
        stats = engine.spawner.stats
        # DATA_LOOP's terminating branch alternates sides, so spawned
        # microthreads frequently see a path deviation.
        assert stats.aborted_active > 0 or stats.pre_allocation_aborts > 0

    def test_abort_disabled_still_correct(self, data_trace):
        result, engine = run_ssmt(data_trace, fast_config(abort_enabled=False))
        assert engine.spawner.stats.aborted_active == 0
        assert engine.spawner.stats.pre_allocation_aborts == 0
        # Stale (path-mismatched) predictions are filtered by the
        # (Path_Id, Seq_Num) match, so accuracy holds even without aborts.
        assert result.ipc > 0


class TestEngineStateTracking:
    def test_reg_values_follow_architectural_state(self, data_trace):
        engine = SSMTEngine(fast_config(),
                            initial_memory=data_trace.initial_memory)
        OoOTimingModel().run(data_trace, BranchPredictorComplex(),
                             listener=engine)
        # r2 holds the loop bound 4000 throughout
        assert engine.reg_values[2] == 4000

    def test_memory_image_follows_stores(self):
        trace = run_program(assemble(STORE_INTERFERENCE),
                            max_instructions=20_000)
        engine = SSMTEngine(fast_config(),
                            initial_memory=trace.initial_memory)
        OoOTimingModel().run(trace, BranchPredictorComplex(),
                             listener=engine)
        stores = [r for r in trace if r.inst.is_store]
        last = stores[-1]
        assert engine.memory[last.ea] == last.result


class TestConfig:
    def test_default_config_matches_paper(self):
        cfg = SSMTConfig()
        assert cfg.n == 10
        assert cfg.difficulty_threshold == 0.10
        assert cfg.path_cache_entries == 8192
        assert cfg.training_interval == 32
        assert cfg.prb_capacity == 512
        assert cfg.build_latency == 100
        assert cfg.microram_entries == 8192
        assert cfg.prediction_cache_entries == 128

    def test_sub_configs_derive(self):
        cfg = SSMTConfig(difficulty_threshold=0.15, mcb_capacity=32)
        assert cfg.path_cache_config().difficulty_threshold == 0.15
        assert cfg.builder_config().mcb_capacity == 32
