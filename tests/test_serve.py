"""The sweep service core: gridspec, queue, scheduler, store, service.

Everything here drives :class:`repro.serve.SweepService` directly (no
sockets) — the HTTP layer has its own tests.  The properties pinned
down:

* submit validation is strict and **rejections never touch the queue**;
* identical grids dedup onto one job (including under concurrency);
* served results are byte-identical to the local runner pipeline;
* worker loss mid-grid resumes idempotently from the journal, with
  already-stored points served as cache hits rather than re-simulated;
* fair scheduling interleaves tenants shard-by-shard;
* rate limiting is per tenant and deterministic given the clock.
"""

import json
import threading

import pytest

from repro.parallel import SweepRunner, merge_sweep
from repro.parallel.cache import POINT_SCHEMA
from repro.parallel.taskkey import canonical_json
from repro.serve import (
    GridSpecError,
    JobNotSettledError,
    JobQueue,
    MemoryResultStore,
    RateLimitError,
    ServiceConfig,
    SweepService,
    make_store,
    normalise_spec,
    spec_job_id,
    spec_tasks,
    store_stats,
)
from repro.serve.scheduler import FairScheduler, TokenBucket

SMALL = {"benchmarks": ["comp"], "instructions": 2000}


def make_service(tmp_path, store=None, **config):
    store = store if store is not None else MemoryResultStore()
    return SweepService(str(tmp_path / "queue"), store,
                        ServiceConfig(jobs=1, **config))


# -- gridspec -------------------------------------------------------------


def test_normalise_fills_defaults():
    spec = normalise_spec({"benchmarks": ["comp"]})
    assert spec["instructions"] == 20_000
    assert spec["kernel"] == "scalar"
    assert spec["knob"] is None and spec["values"] == []
    assert spec["widths"] == [] and spec["sample"] is None


@pytest.mark.parametrize("payload,field", [
    ("not a dict", ""),
    ({"bogus": 1}, "bogus"),
    ({"benchmarks": ["nope"]}, "benchmarks"),
    ({"benchmarks": []}, "benchmarks"),
    ({"benchmarks": ["comp"], "instructions": 0}, "instructions"),
    ({"benchmarks": ["comp"], "instructions": "many"}, "instructions"),
    ({"benchmarks": ["comp"], "values": [4]}, "values"),
    ({"benchmarks": ["comp"], "knob": "not_a_knob", "values": [4]},
     "values"),
    ({"benchmarks": ["comp"], "kernel": "quantum"}, "kernel"),
    ({"benchmarks": ["comp"], "predictor": "crystal-ball"}, "predictor"),
    ({"benchmarks": ["comp"], "sample": {"interval": "x"}},
     "sample.interval"),
    ({"benchmarks": ["comp"], "sample": {"interval": 1000, "extra": 1}},
     "sample"),
])
def test_normalise_rejections(payload, field):
    with pytest.raises(GridSpecError) as excinfo:
        normalise_spec(payload)
    assert excinfo.value.field == field
    assert excinfo.value.as_dict()["code"] == "invalid_request"


def test_normalise_instruction_cap():
    with pytest.raises(GridSpecError):
        normalise_spec(SMALL, max_instructions=1000)
    assert normalise_spec(SMALL, max_instructions=2000)


def test_equivalent_payloads_share_a_job_id():
    # JSON-native and string knob values mean the same grid.
    a = {"benchmarks": ["comp"], "instructions": 2000,
         "knob": "n", "values": [4, 10]}
    b = {"benchmarks": ["comp"], "instructions": 2000,
         "knob": "n", "values": ["4", "10"]}
    assert spec_job_id(normalise_spec(a)) == spec_job_id(normalise_spec(b))
    # ...and a different grid does not.
    c = dict(a, values=[4, 16])
    assert spec_job_id(normalise_spec(c)) != spec_job_id(normalise_spec(a))


def test_spec_tasks_match_cli_grid():
    from repro.parallel import build_grid

    spec = normalise_spec({"benchmarks": ["comp", "gcc"],
                           "instructions": 2000,
                           "knob": "n", "values": [4, 10]})
    via_spec = [t.key for t in spec_tasks(spec)]
    via_cli = [t.key for t in build_grid(["comp", "gcc"], 2000,
                                         knob="n", values=[4, 10])]
    assert via_spec == via_cli


# -- stores ---------------------------------------------------------------


def _point(key):
    return {"schema": POINT_SCHEMA, "task_key": key, "kind": "baseline",
            "label": "x", "benchmark": "comp", "instructions": 10}


def test_memory_store_contract():
    store = MemoryResultStore()
    assert store.get("k") is None and store.misses == 1
    with pytest.raises(ValueError):
        store.put("k", _point("other"))          # content-address check
    store.put("k", _point("k"))
    assert store.get("k")["task_key"] == "k"
    assert (store.hits, store.writes) == (1, 1)
    assert "k" in store and store.hits == 1      # membership is neutral
    assert len(store) == 1
    # Foreign schema entries read as misses, never errors.
    store._data["bad"] = {"schema": "alien/9", "task_key": "bad"}
    assert store.get("bad") is None and store.invalid == 1
    assert store_stats(store)["entries"] == 2


def test_make_store(tmp_path):
    assert isinstance(make_store("mem://"), MemoryResultStore)
    disk = make_store(str(tmp_path / "cache"))
    disk.put("k", _point("k"))
    assert disk.get("k") is not None
    with pytest.raises(ValueError):
        make_store("s3://bucket/prefix")


# -- scheduler ------------------------------------------------------------


def test_token_bucket():
    bucket = TokenBucket(rate=1.0, burst=2)
    assert bucket.try_take(0.0) and bucket.try_take(0.0)
    assert not bucket.try_take(0.0)              # burst exhausted
    assert bucket.try_take(1.0)                  # refilled one token
    assert not bucket.try_take(1.0)
    assert TokenBucket(rate=0.0, burst=1).try_take(0.0)  # 0 = unlimited


def test_fair_scheduler_round_robins_tenants():
    sched = FairScheduler()
    sched.enqueue("a", "a1")
    sched.enqueue("a", "a2")
    sched.enqueue("b", "b1")
    order = [sched.next_job() for _ in range(3)]
    # a's second job must not run before b's first.
    assert order.index("b1") < order.index("a2")
    assert sched.next_job() is None
    sched.enqueue("a", "a1")
    sched.enqueue("a", "a1")                     # duplicate is a no-op
    assert len(sched) == 1


# -- job queue journal ----------------------------------------------------


def test_journal_replay_and_recovery(tmp_path):
    root = str(tmp_path / "q")
    queue = JobQueue(root)
    queue.submit("j1", "alice", {"spec": 1}, ["k1", "k2", "k3"])
    queue.mark_task("j1", "k1", "done")
    queue.mark_task("j1", "k2", "running")
    queue.mark_task("j1", "k3", "failed", "boom")

    replayed = JobQueue(root)                    # simulated process loss
    job = replayed.get("j1")
    assert job.task_states == {"k1": "done", "k2": "queued",
                               "k3": "failed"}
    assert job.failures == {"k3": "boom"}
    assert replayed.recovered_tasks == 1         # k2: running -> queued
    assert replayed.incomplete() == [job]


def test_journal_tolerates_torn_tail(tmp_path):
    root = str(tmp_path / "q")
    queue = JobQueue(root)
    queue.submit("j1", "alice", {}, ["k1"])
    with open(queue.journal_path, "a") as handle:
        handle.write('{"ev": "task", "job": "j1", "key": "k1", "sta')
    replayed = JobQueue(root)
    assert replayed.get("j1").task_states == {"k1": "queued"}


def test_journal_header_carries_schema(tmp_path):
    queue = JobQueue(str(tmp_path / "q"))
    with open(queue.journal_path) as handle:
        header = json.loads(handle.readline())
    assert header["schema"] == "repro.serve.job/1"


# -- service: submit / dedup / results ------------------------------------


def test_submit_run_result_byte_identical(tmp_path):
    service = make_service(tmp_path)
    receipt = service.submit(SMALL)
    assert receipt["created"] and receipt["state"] == "running"
    with pytest.raises(JobNotSettledError):
        service.result(receipt["job"])
    assert service.drain() == 1
    report = service.result(receipt["job"])
    assert report["schema"] == "repro.sweep/1"

    outcome = SweepRunner(jobs=1).run(spec_tasks(normalise_spec(SMALL)))
    local = merge_sweep(outcome.results, errors=outcome.errors)
    for section in ("points", "aggregates", "failures"):
        assert canonical_json(report[section]) == \
            canonical_json(local[section])


def test_identical_submissions_share_one_execution(tmp_path):
    service = make_service(tmp_path)
    first = service.submit(SMALL, tenant="alice")
    second = service.submit(dict(SMALL), tenant="bob")
    assert second["job"] == first["job"] and not second["created"]
    service.drain()
    assert service.stats()["store"]["writes"] == first["total_tasks"]
    # Resubmission after completion: immediate, still the same job.
    third = service.submit(dict(SMALL), tenant="carol")
    assert third["job"] == first["job"] and third["state"] == "done"


def test_concurrent_identical_submissions_dedup(tmp_path):
    """The dedup property under a thundering herd: exactly one job is
    created no matter how many identical submissions race."""
    service = make_service(tmp_path)
    receipts = []
    barrier = threading.Barrier(8)

    def submit(i):
        barrier.wait()
        receipts.append(service.submit(dict(SMALL), tenant=f"t{i}"))

    threads = [threading.Thread(target=submit, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({r["job"] for r in receipts}) == 1
    assert sum(1 for r in receipts if r["created"]) == 1
    service.drain()
    assert service.stats()["queue"]["jobs"] == 1
    assert service.stats()["store"]["writes"] == \
        receipts[0]["total_tasks"]


def test_rejected_submission_never_touches_the_queue(tmp_path):
    service = make_service(tmp_path)
    journal_before = open(service.queue.journal_path).read()
    for payload in ({"bogus": 1}, {"benchmarks": ["nope"]}, [1, 2], None):
        with pytest.raises(GridSpecError):
            service.submit(payload)
    assert service.stats()["queue"]["jobs"] == 0
    assert open(service.queue.journal_path).read() == journal_before


def test_rate_limit_is_per_tenant(tmp_path):
    service = make_service(tmp_path, rate=1.0, burst=1)
    service.submit(SMALL, tenant="alice", now=0.0)
    with pytest.raises(RateLimitError):
        service.submit(SMALL, tenant="alice", now=0.0)
    # A different tenant has its own bucket...
    service.submit(SMALL, tenant="bob", now=0.0)
    # ...and alice recovers once tokens refill.
    assert service.submit(SMALL, tenant="alice", now=1.5)["job"]


def test_unknown_job_queries(tmp_path):
    service = make_service(tmp_path)
    assert service.status("nope") is None
    assert service.result("nope") is None
    assert service.task("0" * 64) is None


# -- service: scheduling and resume ---------------------------------------


def test_shards_interleave_tenants(tmp_path):
    service = make_service(tmp_path, shard_size=1)
    small_a = service.submit({"benchmarks": ["comp", "gcc"],
                              "instructions": 1000}, tenant="alice")
    small_b = service.submit({"benchmarks": ["comp"],
                              "instructions": 1500}, tenant="bob")
    # alice's job needs 4 shards (shard_size=1); bob's needs 2.  Fair
    # round-robin must settle bob before alice despite FIFO arrival.
    settled_order = []
    while service.step():
        for job_id in (small_a["job"], small_b["job"]):
            state = service.status(job_id)["state"]
            if state != "running" and job_id not in settled_order:
                settled_order.append(job_id)
    assert settled_order[0] == small_b["job"]


def test_worker_loss_resumes_idempotently(tmp_path):
    """Kill the 'server' mid-grid; a new one over the same journal and
    store finishes the job without re-simulating completed points."""
    store = MemoryResultStore()
    service = make_service(tmp_path, store=store, shard_size=2)
    receipt = service.submit({"benchmarks": ["comp", "gcc"],
                              "instructions": 1000})
    assert service.step()                        # 2 of 4 tasks done
    writes_before = store.writes
    assert writes_before == 2
    # Simulate a crash: also mark one task running in the journal, as a
    # real crash mid-shard would leave it.
    job = service.queue.get(receipt["job"])
    pending = job.pending_keys()
    service.queue.mark_task(receipt["job"], pending[0], "running")
    del service

    revived = make_service(tmp_path, store=store, shard_size=2)
    assert revived.queue.recovered_tasks == 1
    status = revived.status(receipt["job"])
    assert status["state"] == "running"
    assert status["counts"]["queued"] == 2       # running reverted
    revived.drain()
    assert revived.status(receipt["job"])["state"] == "done"
    # Idempotent: the done points were NOT re-simulated or re-written.
    assert store.writes == writes_before + 2
    report = revived.result(receipt["job"])
    assert len(report["points"]) == 4 and not report["failures"]


def test_resume_serves_stored_points_as_hits(tmp_path):
    """A resubmitted grid on a fresh queue but warm store is all hits."""
    store = MemoryResultStore()
    service = make_service(tmp_path, store=store)
    receipt = service.submit(SMALL)
    service.drain()
    simulated_writes = store.writes

    fresh = SweepService(str(tmp_path / "queue2"), store,
                         ServiceConfig(jobs=1))
    fresh.submit(SMALL)
    fresh.drain()
    assert store.writes == simulated_writes      # nothing re-simulated
    assert store.hits >= receipt["total_tasks"]
    for section in ("points", "aggregates"):
        assert canonical_json(fresh.result(receipt["job"])[section]) == \
            canonical_json(service.result(receipt["job"])[section])


def test_failed_points_surface_in_status_and_result(tmp_path):
    service = make_service(tmp_path)
    receipt = service.submit(SMALL)
    job = service.queue.get(receipt["job"])
    # Force both tasks to fail without touching the simulator.
    for key in list(job.task_states):
        service.queue.mark_task(receipt["job"], key, "failed", "boom")
    service.drain()
    status = service.status(receipt["job"])
    assert status["state"] == "failed"
    assert set(status["failures"].values()) == {"boom"}
    report = service.result(receipt["job"])
    assert report["points"] == [] and len(report["failures"]) == 2


def test_events_stream_reaches_terminal_event(tmp_path):
    service = make_service(tmp_path)
    receipt = service.submit(SMALL)
    service.drain()
    events, settled = service.events_since(receipt["job"], 0, timeout=0.0)
    names = [e["ev"] for e in events]
    assert names[0] == "job_submitted"
    assert "job_done" in names
    assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)
    # After the terminal event the stream reports settled-and-empty.
    _, settled = service.events_since(receipt["job"], events[-1]["seq"],
                                      timeout=0.0)
    assert settled


def test_schema_version_bump_strands_stored_entries(tmp_path, monkeypatch):
    """A CODE_SCHEMA_VERSION bump makes every stored entry unreachable:
    the new keys simply never collide with the old ones."""
    import repro.parallel.taskkey as taskkey

    store = MemoryResultStore()
    service = make_service(tmp_path, store=store)
    service.submit(SMALL)
    service.drain()
    old_keys = set(store._data)
    assert old_keys

    monkeypatch.setattr(taskkey, "CODE_SCHEMA_VERSION",
                        taskkey.CODE_SCHEMA_VERSION + 1)
    new_keys = {t.key for t in spec_tasks(normalise_spec(SMALL))}
    assert new_keys and new_keys.isdisjoint(old_keys)
