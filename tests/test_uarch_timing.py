"""Tests for the out-of-order timing model."""


from repro.branch.unit import BranchPredictorComplex, oracle_complex
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.config import TABLE3_BASELINE
from repro.uarch.timing import OoOTimingModel, PredictionEntry


def trace_of(source, n=20_000):
    return run_program(assemble(source), max_instructions=n)


def run_timing(source, config=TABLE3_BASELINE, n=20_000, predictor=None,
               listener=None):
    trace = trace_of(source, n)
    model = OoOTimingModel(config)
    predictor = predictor or BranchPredictorComplex()
    return model.run(trace, predictor, listener=listener)


STRAIGHT_LINE = "\n".join(f"li r{1 + (i % 8)}, {i}" for i in range(64)) + "\nhalt"


class TestWidthLimits:
    def test_independent_code_approaches_fetch_width(self):
        result = run_timing(STRAIGHT_LINE)
        # 64 independent LIs on a 16-wide machine: a handful of cycles.
        assert result.ipc > 4.0

    def test_narrow_machine_is_slower(self):
        narrow = TABLE3_BASELINE.scaled(fetch_width=2, issue_width=2,
                                        retire_width=2)
        wide = run_timing(STRAIGHT_LINE)
        thin = run_timing(STRAIGHT_LINE, config=narrow)
        assert thin.cycles > wide.cycles * 2

    def test_serial_chain_bound_by_latency(self):
        chain = "li r1, 0\n" + "\n".join("addi r1, r1, 1" for _ in range(100)) + "\nhalt"
        result = run_timing(chain)
        # 100 dependent adds cannot beat 1 IPC on the chain.
        assert result.cycles >= 100


class TestWindow:
    def test_window_limits_overlap(self):
        # Two cold, long-latency loads separated by filler: a big window
        # overlaps their miss latencies; a 16-entry window serialises the
        # second load behind the first load's retirement.
        filler = "\n".join(f"li r{3 + (i % 4)}, {i}" for i in range(100))
        source = f"""
            li r1, 0x4000
            ld r2, 0(r1)
            {filler}
            li r5, 0x8000
            ld r6, 0(r5)
            halt
        """
        big = run_timing(source)
        small = run_timing(source,
                           config=TABLE3_BASELINE.scaled(window_size=16))
        assert small.cycles > big.cycles + 50


class TestMispredictionPenalty:
    LOOP_RANDOMISH = """
    .data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
        li r1, 0
        li r2, 500
    loop:
        andi r3, r1, 63
        li r4, &arr
        add r5, r4, r3
        ld r6, 0(r5)
        li r7, 50
        blt r6, r7, skip
        addi r8, r8, 1
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """

    def test_oracle_faster_than_hardware(self):
        trace = trace_of(self.LOOP_RANDOMISH)
        base = OoOTimingModel().run(trace, BranchPredictorComplex())
        perfect = OoOTimingModel().run(trace, oracle_complex())
        assert base.hw_mispredicts > 20
        assert perfect.effective_mispredicts == 0
        assert perfect.cycles < base.cycles

    def test_larger_penalty_hurts_more(self):
        trace = trace_of(self.LOOP_RANDOMISH)
        short = OoOTimingModel(TABLE3_BASELINE.scaled(mispredict_penalty=10)).run(
            trace, BranchPredictorComplex())
        long = OoOTimingModel(TABLE3_BASELINE.scaled(mispredict_penalty=40)).run(
            trace, BranchPredictorComplex())
        assert long.cycles > short.cycles

    def test_mispredict_counts_recorded(self):
        result = run_timing(self.LOOP_RANDOMISH)
        assert result.effective_mispredicts == result.hw_mispredicts
        assert result.conditional_branches > 900
        assert 0.0 < result.mispredict_rate() < 0.5


class TestMemoryTiming:
    def test_cache_misses_slow_execution(self):
        # Walk far more data than L1 holds, dependent loads.
        source = """
            li r1, 0
            li r2, 3000
            li r3, 0x10000
        loop:
            add r4, r3, r1
            ld r5, 0(r4)
            addi r1, r1, 97
            blt r1, r2, loop
            halt
        """
        fast_mem = TABLE3_BASELINE.scaled(memory_latency=5)
        slow_mem = TABLE3_BASELINE.scaled(memory_latency=400)
        fast = run_timing(source, config=fast_mem)
        slow = run_timing(source, config=slow_mem)
        assert slow.cycles > fast.cycles

    def test_store_to_load_forwarding_orders(self):
        source = """
            li r1, 0x100
            li r2, 7
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
        """
        result = run_timing(source)
        assert result.cycles > 0  # sanity: no crash, ordering handled


class TestListenerHooks:
    class Recorder:
        def __init__(self):
            self.fetches = []
            self.retires = []
            self.controls = []

        def on_fetch(self, idx, rec, cycle, engine):
            self.fetches.append(idx)

        def on_retire(self, idx, rec, cycle):
            self.retires.append((idx, cycle))

        def on_control(self, idx, rec, outcome, fetch, resolve):
            self.controls.append(idx)

    def test_hooks_called_for_every_instruction(self):
        recorder = self.Recorder()
        result = run_timing("li r1, 1\nli r2, 2\nhalt", listener=recorder)
        assert recorder.fetches == [0, 1, 2]
        assert len(recorder.retires) == 3

    def test_retire_cycles_monotonic(self):
        recorder = self.Recorder()
        run_timing(STRAIGHT_LINE, listener=recorder)
        cycles = [c for _, c in recorder.retires]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))

    def test_control_hook_only_for_controls(self):
        recorder = self.Recorder()
        run_timing("li r1, 1\njmp next\nnext:\nhalt", listener=recorder)
        assert recorder.controls == [1]


class TestMicrothreadPredictionPaths:
    """Drive lookup_prediction directly to exercise early/late handling."""

    SOURCE = """
        li r1, 0
        li r2, 200
    loop:
        andi r3, r1, 1
        li r4, 1
        beq r3, r4, odd
        addi r5, r5, 1
    odd:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """

    class OracleListener:
        """Perfect early predictions for every conditional branch."""

        def __init__(self):
            self.kinds = []

        def lookup_prediction(self, idx, rec, fetch_cycle):
            if rec.is_conditional_branch:
                return PredictionEntry(rec.taken, rec.next_pc, 0)
            return None

        def on_prediction_outcome(self, idx, rec, kind, used, correct, hw_mis):
            self.kinds.append(kind)

    class WrongListener:
        """Early predictions that are always wrong."""

        def lookup_prediction(self, idx, rec, fetch_cycle):
            if rec.is_conditional_branch:
                return PredictionEntry(not rec.taken, rec.next_pc, 0)
            return None

    def test_early_correct_predictions_remove_mispredicts(self):
        listener = self.OracleListener()
        with_oracle = run_timing(self.SOURCE, listener=listener)
        plain = run_timing(self.SOURCE)
        assert with_oracle.effective_mispredicts == 0
        assert with_oracle.cycles <= plain.cycles
        assert set(listener.kinds) == {"early"}

    def test_early_wrong_predictions_introduce_mispredicts(self):
        wrong = run_timing(self.SOURCE, listener=self.WrongListener())
        plain = run_timing(self.SOURCE)
        assert wrong.effective_mispredicts > plain.effective_mispredicts
        assert wrong.cycles > plain.cycles

    def test_late_correct_prediction_shortens_recovery(self):
        class LateListener:
            def lookup_prediction(self, idx, rec, fetch_cycle):
                if rec.is_conditional_branch:
                    # arrives shortly after fetch: late but before resolve
                    return PredictionEntry(rec.taken, rec.next_pc,
                                           fetch_cycle + 1)
                return None

        late = run_timing(self.SOURCE, listener=LateListener())
        plain = run_timing(self.SOURCE)
        assert late.early_recoveries > 0
        assert late.cycles < plain.cycles

    def test_useless_predictions_change_nothing(self):
        class UselessListener:
            def lookup_prediction(self, idx, rec, fetch_cycle):
                if rec.is_conditional_branch:
                    return PredictionEntry(rec.taken, rec.next_pc,
                                           fetch_cycle + 10_000)
                return None

        useless = run_timing(self.SOURCE, listener=UselessListener())
        plain = run_timing(self.SOURCE)
        assert useless.effective_mispredicts == plain.effective_mispredicts
        assert useless.cycles == plain.cycles


class TestFrontendDebt:
    def test_debt_slows_fetch(self):
        trace = trace_of(STRAIGHT_LINE)

        class Debtor:
            def __init__(self, amount):
                self.amount = amount

            def on_fetch(self, idx, rec, cycle, engine):
                engine.add_frontend_debt(self.amount)

        plain = OoOTimingModel().run(trace, BranchPredictorComplex())
        loaded = OoOTimingModel().run(trace, BranchPredictorComplex(),
                                      listener=Debtor(8))
        assert loaded.cycles > plain.cycles


class TestMachineConfig:
    def test_table3_values(self):
        cfg = TABLE3_BASELINE
        assert cfg.fetch_width == 16
        assert cfg.window_size == 512
        assert cfg.mispredict_penalty == 20
        assert cfg.fetch_taken_limit == 3

    def test_redirect_derivation(self):
        assert (TABLE3_BASELINE.redirect_after_resolve
                + TABLE3_BASELINE.frontend_depth) == 20

    def test_scaled_copy(self):
        narrow = TABLE3_BASELINE.scaled(fetch_width=4)
        assert narrow.fetch_width == 4
        assert TABLE3_BASELINE.fetch_width == 16
