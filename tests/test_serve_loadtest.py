"""Loadtest mix generation and the foreign-cache resume warning.

The replay harness itself runs end-to-end in CI (server + ``repro
loadtest``); what belongs in the unit suite is the deterministic part —
mix construction, the warm-pass ⊆ cold-pass task-key containment that
makes ``warm_hit_rate=1.0`` a legitimate assertion, the quantile helper
and the stable summary line — plus the CLI's one-line warning when
``--resume`` finds only foreign-version cache entries.
"""

import json

import pytest

from repro.cli import main
from repro.parallel.cache import POINT_SCHEMA
from repro.serve.gridspec import normalise_spec, spec_tasks
from repro.serve.loadtest import (
    SERVICE_BENCH_SCHEMA,
    _quantiles,
    build_mix,
    summary_line,
)
from repro.workloads import BENCHMARK_NAMES


# -- mix generation -------------------------------------------------------


def test_build_mix_is_deterministic():
    assert build_mix(12, 0.5, seed=7, instructions=3000) == \
        build_mix(12, 0.5, seed=7, instructions=3000)
    a, _ = build_mix(12, 0.5, seed=7, instructions=3000)
    b, _ = build_mix(12, 0.5, seed=8, instructions=3000)
    assert a != b                        # the seed matters


def test_build_mix_pool_size_and_overlap():
    cold, _ = build_mix(12, 0.5, seed=1, instructions=3000)
    assert len(cold) == 12
    unique = {json.dumps(s, sort_keys=True) for s in cold}
    assert len(unique) == 6              # round(12 * (1 - 0.5))
    cold, _ = build_mix(5, 0.0, seed=1, instructions=3000)
    assert len({json.dumps(s, sort_keys=True) for s in cold}) == 5
    # overlap ~1 still yields at least one distinct grid.
    cold, _ = build_mix(4, 0.99, seed=1, instructions=3000)
    assert len({json.dumps(s, sort_keys=True) for s in cold}) == 1
    with pytest.raises(ValueError):
        build_mix(4, 1.0, seed=1, instructions=3000)
    with pytest.raises(ValueError):
        build_mix(4, -0.1, seed=1, instructions=3000)


def test_cold_specs_are_valid_grids():
    cold, warm = build_mix(10, 0.4, seed=3, instructions=2000)
    for spec in cold + warm:
        normalised = normalise_spec(spec)
        assert set(normalised["benchmarks"]) <= set(BENCHMARK_NAMES)


def test_warm_tasks_are_a_subset_of_cold_tasks():
    """The property the warm pass leans on: after the cold pass every
    warm task key is already in the store, so warm hit rate is 1.0."""
    cold, warm = build_mix(10, 0.5, seed=2, instructions=2000)
    cold_keys = {t.key for spec in cold
                 for t in spec_tasks(normalise_spec(spec))}
    warm_keys = {t.key for spec in warm
                 for t in spec_tasks(normalise_spec(spec))}
    assert warm_keys and warm_keys <= cold_keys


# -- report helpers -------------------------------------------------------


def test_quantiles():
    assert _quantiles([]) == {"p50": 0.0, "p95": 0.0, "max": 0.0}
    q = _quantiles([0.4, 0.1, 0.2, 0.3])
    assert q["p50"] == 0.3 and q["max"] == 0.4


def test_summary_line_format():
    report = {
        "schema": SERVICE_BENCH_SCHEMA,
        "cold": {"requests": 12, "deduped_submits": 4, "hit_rate": 0.0,
                 "store_hits": 0, "failed_jobs": 0},
        "warm": {"requests": 3, "hit_rate": 1.0, "store_hits": 8,
                 "failed_jobs": 0},
        "identity": {"byte_identical": True},
    }
    line = summary_line(report)
    assert line == ("loadtest: requests=12+3 deduped=4 "
                    "cold_hit_rate=0.00 warm_hit_rate=1.00 warm_hits=8 "
                    "byte_identical=True failed=0")


# -- the foreign-version resume warning -----------------------------------


WARNING_MARKER = "no entry matched this grid"
SWEEP_ARGS = ["sweep", "--benchmarks", "comp", "--instructions", "1000",
              "--jobs", "1"]


def _plant_foreign_entry(cache_dir):
    """A structurally valid point whose key no current grid produces —
    exactly what a pre-CODE_SCHEMA_VERSION-bump cache looks like."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    key = "f" * 64
    entry = {"schema": POINT_SCHEMA, "task_key": key, "kind": "baseline",
             "label": "stale", "benchmark": "comp", "instructions": 1000}
    (cache_dir / f"{key}.json").write_text(
        json.dumps(entry, sort_keys=True))


def test_resume_warns_when_only_foreign_entries_match_nothing(
        tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    _plant_foreign_entry(cache_dir)
    assert main(SWEEP_ARGS + ["--cache-dir", str(cache_dir)]) == 0
    captured = capsys.readouterr()
    assert WARNING_MARKER in captured.err
    assert "CODE_SCHEMA_VERSION" in captured.err


def test_no_warning_on_empty_cache(tmp_path, capsys):
    assert main(SWEEP_ARGS + ["--cache-dir",
                              str(tmp_path / "cache")]) == 0
    assert WARNING_MARKER not in capsys.readouterr().err


def test_no_warning_when_cache_hits(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(SWEEP_ARGS + ["--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(SWEEP_ARGS + ["--cache-dir", cache_dir]) == 0
    captured = capsys.readouterr()
    assert "cache_hits=2" in captured.out
    assert WARNING_MARKER not in captured.err


def test_no_warning_without_resume(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    _plant_foreign_entry(cache_dir)
    assert main(SWEEP_ARGS + ["--cache-dir", str(cache_dir),
                              "--no-resume"]) == 0
    assert WARNING_MARKER not in capsys.readouterr().err