"""Tests for the two-pass text assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Opcode


class TestBasicAssembly:
    def test_alu_and_halt(self):
        program = assemble("""
            li   r1, 5
            li   r2, 7
            add  r3, r1, r2
            halt
        """)
        assert [i.opcode for i in program.instructions] == [
            Opcode.LI, Opcode.LI, Opcode.ADD, Opcode.HALT
        ]
        assert program[2].rd == 3

    def test_labels_and_branches(self):
        program = assemble("""
        main:
            li r1, 0
        loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            halt
        """)
        assert program.labels["loop"] == 1
        assert program[2].target == 1

    def test_memory_operands(self):
        program = assemble("""
            ld r1, 8(r2)
            st r1, 16(sp)
            halt
        """)
        assert program[0].imm == 8 and program[0].rs1 == 2
        assert program[1].imm == 16

    def test_comments_ignored(self):
        program = assemble("""
            ; full line comment
            li r1, 1   # trailing comment
            halt       ; another
        """)
        assert len(program) == 2

    def test_hex_immediates(self):
        program = assemble("li r1, 0x10\nhalt")
        assert program[0].imm == 16

    def test_negative_immediates(self):
        program = assemble("addi r1, r1, -3\nhalt")
        assert program[0].imm == -3


class TestDataDirectives:
    def test_data_symbol_reference(self):
        program = assemble("""
        .data table 4 10 20 30 40
            li r1, &table
            ld r2, 0(r1)
            halt
        """)
        base = program[0].imm
        assert program.data.load(base) == 10
        assert program.data.load(base + 3) == 40

    def test_two_data_symbols_distinct(self):
        program = assemble("""
        .data a 8
        .data b 8
            li r1, &a
            li r2, &b
            halt
        """)
        assert program[1].imm == program[0].imm + 8

    def test_unknown_symbol_raises(self):
        with pytest.raises(AssemblyError, match="unknown data symbol"):
            assemble("li r1, &missing\nhalt")

    def test_duplicate_symbol_raises(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble(".data x 1\n.data x 1\nhalt")


class TestAssemblyErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2\nhalt")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="memory operand"):
            assemble("ld r1, r2\nhalt")

    def test_micro_op_not_assemblable(self):
        with pytest.raises(AssemblyError):
            assemble("store_pcache r1\nhalt")

    def test_bad_immediate_in_alu_op(self):
        with pytest.raises(AssemblyError, match="bad immediate"):
            assemble("addi r1, r1, abc\nhalt")

    def test_li_unknown_label_immediate(self):
        """LI immediates may name code labels; unknown ones fail at link."""
        from repro.isa.program import ProgramError

        with pytest.raises(ProgramError, match="unresolved label immediate"):
            assemble("li r1, abc\nhalt")

    def test_li_code_label_immediate_resolves(self):
        program = assemble("li r1, target\nhalt\ntarget:\nnop")
        assert program[0].imm == 2


class TestControlFlow:
    def test_jump_register(self):
        program = assemble("jr r5\nhalt")
        assert program[0].opcode == Opcode.JR and program[0].rs1 == 5

    def test_call_ret(self):
        program = assemble("""
            call fn
            halt
        fn:
            ret
        """)
        assert program[0].target == 2
        assert program[2].opcode == Opcode.RET
