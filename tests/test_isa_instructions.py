"""Tests for opcode classification and Instruction dataflow queries."""

import pytest

from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_OPS,
    CONDITIONAL_BRANCHES,
    CONTROL_OPS,
    DIRECT_JUMPS,
    INDIRECT_JUMPS,
    MEMORY_OPS,
    MICRO_OPS,
    PATH_TERMINATING_OPS,
    TAKEN_CONTROL_OPS,
    Instruction,
    Opcode,
)
from repro.isa.registers import REG_RA, REG_ZERO


class TestOpcodeFamilies:
    def test_families_are_disjoint(self):
        assert not (ALU_OPS & ALU_IMM_OPS)
        assert not (ALU_OPS & CONTROL_OPS)
        assert not (MEMORY_OPS & CONTROL_OPS)
        assert not (MICRO_OPS & CONTROL_OPS)

    def test_control_partition(self):
        assert CONTROL_OPS == CONDITIONAL_BRANCHES | DIRECT_JUMPS | INDIRECT_JUMPS

    def test_taken_controls_always_redirect(self):
        assert Opcode.JMP in TAKEN_CONTROL_OPS
        assert Opcode.CALL in TAKEN_CONTROL_OPS
        assert Opcode.RET in TAKEN_CONTROL_OPS
        assert Opcode.JR in TAKEN_CONTROL_OPS
        assert Opcode.BEQ not in TAKEN_CONTROL_OPS

    def test_path_terminating_ops(self):
        """Paper §3: terminating branches are conditional or indirect."""
        assert PATH_TERMINATING_OPS == CONDITIONAL_BRANCHES | INDIRECT_JUMPS
        assert Opcode.JMP not in PATH_TERMINATING_OPS
        assert Opcode.CALL not in PATH_TERMINATING_OPS


class TestClassificationProperties:
    def test_conditional_branch(self):
        inst = Instruction(Opcode.BLT, rs1=1, rs2=2, target=10)
        assert inst.is_control
        assert inst.is_conditional_branch
        assert inst.is_path_terminating
        assert not inst.is_indirect

    def test_indirect_jump(self):
        inst = Instruction(Opcode.JR, rs1=5)
        assert inst.is_control
        assert inst.is_indirect
        assert inst.is_path_terminating
        assert not inst.is_conditional_branch

    def test_call_and_return(self):
        call = Instruction(Opcode.CALL, target=3)
        ret = Instruction(Opcode.RET)
        assert call.is_call and not call.is_return
        assert ret.is_return and ret.is_indirect

    def test_memory_ops(self):
        load = Instruction(Opcode.LD, rd=1, rs1=2, imm=4)
        store = Instruction(Opcode.ST, rs1=2, rs2=3, imm=4)
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory and not store.is_load

    def test_micro_ops(self):
        assert Instruction(Opcode.STORE_PCACHE, rs1=1).is_micro_op
        assert Instruction(Opcode.VP_INST, rd=1).is_micro_op
        assert not Instruction(Opcode.ADD).is_micro_op


class TestDestReg:
    def test_alu_writes_rd(self):
        assert Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2).dest_reg() == 3
        assert Instruction(Opcode.ADDI, rd=7, rs1=1, imm=5).dest_reg() == 7

    def test_write_to_r0_discarded(self):
        assert Instruction(Opcode.ADD, rd=REG_ZERO, rs1=1, rs2=2).dest_reg() is None

    def test_load_writes_rd(self):
        assert Instruction(Opcode.LD, rd=4, rs1=1).dest_reg() == 4

    def test_store_writes_nothing(self):
        assert Instruction(Opcode.ST, rs1=1, rs2=2).dest_reg() is None

    def test_call_writes_ra(self):
        assert Instruction(Opcode.CALL, target=0).dest_reg() == REG_RA

    def test_branches_write_nothing(self):
        assert Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0).dest_reg() is None
        assert Instruction(Opcode.JMP, target=0).dest_reg() is None


class TestSrcRegs:
    def test_alu_reads_both(self):
        assert Instruction(Opcode.SUB, rd=3, rs1=1, rs2=2).src_regs() == (1, 2)

    def test_imm_reads_one(self):
        assert Instruction(Opcode.ADDI, rd=3, rs1=1, imm=5).src_regs() == (1,)

    def test_li_reads_none(self):
        assert Instruction(Opcode.LI, rd=3, imm=5).src_regs() == ()

    def test_zero_sources_excluded(self):
        assert Instruction(Opcode.ADD, rd=3, rs1=REG_ZERO, rs2=2).src_regs() == (2,)

    def test_store_reads_base_and_value(self):
        assert Instruction(Opcode.ST, rs1=1, rs2=2).src_regs() == (1, 2)

    def test_return_reads_ra(self):
        assert Instruction(Opcode.RET).src_regs() == (REG_RA,)

    def test_jr_reads_target_register(self):
        assert Instruction(Opcode.JR, rs1=9).src_regs() == (9,)

    def test_conditional_reads_both(self):
        assert Instruction(Opcode.BNE, rs1=4, rs2=5, target=0).src_regs() == (4, 5)


class TestDisassembly:
    @pytest.mark.parametrize("inst,expected", [
        (Instruction(Opcode.ADD, rd=1, rs1=5, rs2=3), "add r1, r5, r3"),
        (Instruction(Opcode.LI, rd=4, imm=42), "li r4, 42"),
        (Instruction(Opcode.MOV, rd=4, rs1=5), "mov r4, r5"),
        (Instruction(Opcode.LD, rd=1, rs1=9, imm=8), "ld r1, 8(r9)"),
        (Instruction(Opcode.ST, rs1=9, rs2=1, imm=8), "st r1, 8(r9)"),
        (Instruction(Opcode.BEQ, rs1=1, rs2=9, target=7), "beq r1, r9, 7"),
        (Instruction(Opcode.RET), "ret"),
        (Instruction(Opcode.JR, rs1=6), "jr r6"),
    ])
    def test_disassemble(self, inst, expected):
        assert inst.disassemble() == expected

    def test_copy_is_independent(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3, pc=9)
        clone = inst.copy()
        clone.rd = 7
        assert inst.rd == 1
        assert clone.pc == 9
