"""Tests for microthread data-flow graphs and functional execution."""


from repro.core.microthread import Microthread, MicroOp, topological_order
from repro.core.path import PathKey
from repro.isa.instructions import Opcode


def make_thread(root, **overrides):
    defaults = dict(
        key=PathKey(100, (1, 2)),
        path_id=42,
        root=root,
        nodes=topological_order(root),
        live_in_regs=(),
        spawn_pc=0,
        separation=10,
        term_pc=100,
        term_taken_target=200,
        prefix=(),
        expected_suffix=(),
    )
    defaults.update(overrides)
    return Microthread(**defaults)


def execute(thread, live_ins=None, memory=None, vp=None, ap=None):
    return thread.execute(
        live_ins or {},
        (memory or {}).get if not callable(memory) else memory,
        vp or (lambda pc, ahead: None),
        ap or (lambda pc, ahead: None),
    )


class TestTopologicalOrder:
    def test_inputs_precede_users(self):
        a = MicroOp("const", imm=1, order=0)
        b = MicroOp("const", imm=2, order=1)
        c = MicroOp("op", op=Opcode.ADD, inputs=[a, b], order=2)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[c, a], order=3)
        order = topological_order(root)
        positions = {node.uid: i for i, node in enumerate(order)}
        assert positions[a.uid] < positions[c.uid]
        assert positions[b.uid] < positions[c.uid]
        assert positions[c.uid] < positions[root.uid]

    def test_shared_node_appears_once(self):
        shared = MicroOp("const", imm=5, order=0)
        left = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[shared], order=1)
        right = MicroOp("op", op=Opcode.ADDI, imm=2, inputs=[shared], order=2)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[left, right], order=3)
        order = topological_order(root)
        assert len(order) == 4

    def test_diamond_ordering(self):
        top = MicroOp("livein", reg=1, order=0)
        left = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[top], order=1)
        right = MicroOp("op", op=Opcode.ADDI, imm=2, inputs=[top], order=2)
        join = MicroOp("op", op=Opcode.ADD, inputs=[left, right], order=3)
        root = MicroOp("branch", op=Opcode.BNE, inputs=[join, top], order=4)
        order = topological_order(root)
        positions = {n.uid: i for i, n in enumerate(order)}
        assert positions[top.uid] < min(positions[left.uid],
                                        positions[right.uid])
        assert positions[join.uid] < positions[root.uid]

    def test_deep_chain_no_recursion_error(self):
        node = MicroOp("const", imm=0, order=0)
        for i in range(1, 3000):
            node = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[node], order=i)
        root = MicroOp("branch", op=Opcode.BEQ,
                       inputs=[node, MicroOp("const", imm=5, order=0)],
                       order=3000)
        assert len(topological_order(root)) == 3002


class TestRoutineMetrics:
    def test_routine_size_excludes_liveins(self):
        live = MicroOp("livein", reg=3, order=0)
        k = MicroOp("const", imm=7, order=1)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[live, k], order=2)
        thread = make_thread(root, live_in_regs=(3,))
        assert thread.routine_size == 2  # const + store_pcache

    def test_longest_chain(self):
        live = MicroOp("livein", reg=3, order=0)
        a = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[live], order=1)
        b = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[a], order=2)
        k = MicroOp("const", imm=0, order=3)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[b, k], order=4)
        thread = make_thread(root)
        # chain: addi -> addi -> branch = 3 instructions (livein free)
        assert thread.longest_chain == 3

    def test_listing_mentions_all_instructions(self):
        live = MicroOp("livein", reg=3, order=0)
        k = MicroOp("const", imm=7, order=1)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[live, k], order=2)
        listing = make_thread(root).listing()
        assert "store_pcache" in listing
        assert "livein r3" in listing


class TestExecution:
    def test_conditional_taken(self):
        live = MicroOp("livein", reg=3, order=0)
        k = MicroOp("const", imm=10, order=1)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[live, k], order=2)
        thread = make_thread(root, live_in_regs=(3,))
        pred = execute(thread, live_ins={3: 5})
        assert pred.taken and pred.target == 200

    def test_conditional_not_taken_falls_through(self):
        live = MicroOp("livein", reg=3, order=0)
        k = MicroOp("const", imm=10, order=1)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[live, k], order=2)
        thread = make_thread(root)
        pred = execute(thread, live_ins={3: 50})
        assert not pred.taken and pred.target == thread.term_pc + 1

    def test_alu_chain_evaluation(self):
        live = MicroOp("livein", reg=1, order=0)
        double = MicroOp("op", op=Opcode.SLLI, imm=1, inputs=[live], order=1)
        plus3 = MicroOp("op", op=Opcode.ADDI, imm=3, inputs=[double], order=2)
        k = MicroOp("const", imm=13, order=3)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[plus3, k], order=4)
        pred = execute(make_thread(root), live_ins={1: 5})
        assert pred.taken  # 5*2+3 == 13

    def test_load_reads_memory_and_records_address(self):
        base = MicroOp("const", imm=0x100, order=0)
        load = MicroOp("load", op=Opcode.LD, imm=4, inputs=[base], order=1)
        k = MicroOp("const", imm=9, order=2)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[load, k], order=3)
        pred = execute(make_thread(root), memory={0x104: 9})
        assert pred.taken
        assert pred.loads_read == (0x104,)

    def test_vp_node_queries_value_predictor(self):
        vp = MicroOp("vp", pc=77, ahead=1, order=0)
        k = MicroOp("const", imm=21, order=1)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[vp, k], order=2)
        pred = execute(make_thread(root),
                       vp=lambda pc, ahead: 21 if pc == 77 else 0)
        assert pred.taken

    def test_ap_node_supplies_base(self):
        ap = MicroOp("ap", pc=88, ahead=1, order=0)
        load = MicroOp("load", op=Opcode.LD, imm=0, inputs=[ap], order=1)
        k = MicroOp("const", imm=5, order=2)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[load, k], order=3)
        pred = execute(make_thread(root), memory={0x200: 3},
                       ap=lambda pc, ahead: 0x200)
        assert pred.taken

    def test_indirect_branch_produces_target(self):
        target = MicroOp("const", imm=555, order=0)
        root = MicroOp("branch", op=Opcode.JR, inputs=[target], order=1)
        pred = execute(make_thread(root))
        assert pred.taken and pred.target == 555

    def test_signed_comparison(self):
        neg = MicroOp("const", imm=-1 & ((1 << 64) - 1), order=0)
        zero = MicroOp("const", imm=0, order=1)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[neg, zero], order=2)
        assert execute(make_thread(root)).taken

    def test_missing_live_in_defaults_to_zero(self):
        live = MicroOp("livein", reg=9, order=0)
        zero = MicroOp("const", imm=0, order=1)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[live, zero], order=2)
        assert execute(make_thread(root), live_ins={}).taken
