"""Tests for paper-data constants and the markdown report generator."""


from repro.analysis import paper_data
from repro.analysis.summary import _md_table, generate_report
from repro.cli import main
from repro.workloads import BENCHMARK_NAMES


class TestPaperData:
    def test_table1_covers_all_benchmarks(self):
        assert set(paper_data.TABLE1_PATHS_SCOPE) == set(BENCHMARK_NAMES)

    def test_table1_paths_grow_with_n(self):
        for bench, per_n in paper_data.TABLE1_PATHS_SCOPE.items():
            assert per_n[4][0] <= per_n[10][0] <= per_n[16][0], bench

    def test_table1_scope_grows_with_n_mostly(self):
        # bzip2_2k is the paper's own exception at n=16 (551.77 -> 541.59)
        for bench, per_n in paper_data.TABLE1_PATHS_SCOPE.items():
            if bench == "bzip2_2k":
                continue
            assert per_n[4][1] < per_n[16][1], bench

    def test_table2_average_direction(self):
        branch = paper_data.TABLE2_AVERAGE_T10["branch"]
        path16 = paper_data.TABLE2_AVERAGE_T10["path(16)"]
        assert path16[0] > branch[0]  # higher misprediction coverage
        assert path16[1] < branch[1]  # lower execution coverage

    def test_headline_constants(self):
        assert paper_data.FIG7_MEAN_GAIN_PERCENT == 8.4
        assert paper_data.FIG7_MAX_GAIN_PERCENT == 42.0
        assert paper_data.PATH_CACHE_ENTRIES == 8192
        assert paper_data.PREDICTION_CACHE_ENTRIES == 128

    def test_lookup_helper(self):
        paths, scope = paper_data.paper_table1_row("gcc", 4)
        assert paths == 131967 and scope == 37.14

    def test_shape_checks_documented(self):
        assert len(paper_data.SHAPE_CHECKS) >= 8
        for check in paper_data.SHAPE_CHECKS:
            assert check.name and check.description


class TestMarkdownTable:
    def test_renders_pipes_and_floats(self):
        text = _md_table(["a", "b"], [["x", 1.5]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "1.500" in lines[2]


class TestGenerateReport:
    def test_report_contains_all_sections(self):
        report = generate_report(("comp",), trace_length=20_000)
        for heading in ("Table 1", "Table 2", "Figure 6", "Figure 7",
                        "Figure 8", "Figure 9", "Shape checks",
                        "perfect-prediction headroom"):
            assert heading in report

    def test_cli_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "--instructions", "20000",
                     "--benchmarks", "comp", "--output", str(output)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "Table 1" in output.read_text()
