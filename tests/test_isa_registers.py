"""Tests for register naming and parsing."""

import pytest

from repro.isa.registers import (
    NUM_REGS,
    REG_FP,
    REG_RA,
    REG_RV,
    REG_SP,
    REG_ZERO,
    parse_register,
    register_name,
)


class TestRegisterName:
    def test_plain_registers(self):
        assert register_name(5) == "r5"
        assert register_name(15) == "r15"

    def test_aliased_registers(self):
        assert register_name(REG_ZERO) == "zero"
        assert register_name(REG_SP) == "sp"
        assert register_name(REG_FP) == "fp"
        assert register_name(REG_RA) == "ra"
        assert register_name(REG_RV) == "rv"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            register_name(NUM_REGS)
        with pytest.raises(ValueError):
            register_name(-1)


class TestParseRegister:
    def test_parse_plain(self):
        assert parse_register("r0") == 0
        assert parse_register("r31") == 31

    def test_parse_alias(self):
        assert parse_register("sp") == REG_SP
        assert parse_register("ra") == REG_RA
        assert parse_register("zero") == REG_ZERO

    def test_parse_strips_comma_and_case(self):
        assert parse_register("R7,") == 7
        assert parse_register(" SP ") == REG_SP

    def test_bad_tokens_raise(self):
        for token in ("r32", "x5", "", "r-1", "rr3"):
            with pytest.raises(ValueError):
                parse_register(token)

    def test_roundtrip_all_registers(self):
        for index in range(NUM_REGS):
            assert parse_register(register_name(index)) == index
