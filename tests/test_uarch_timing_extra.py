"""Additional timing-model coverage: retire width, taken-fetch limit,
BTB bubbles, issue-slot contention."""


from repro.branch.unit import BranchPredictorComplex
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.config import TABLE3_BASELINE
from repro.uarch.timing import OoOTimingModel


def run_timing(source, config=TABLE3_BASELINE, n=20_000, listener=None):
    trace = run_program(assemble(source), max_instructions=n)
    return OoOTimingModel(config).run(trace, BranchPredictorComplex(),
                                      listener=listener)


INDEPENDENT = "\n".join(f"li r{1 + (i % 8)}, {i}" for i in range(256)) + "\nhalt"


class TestRetireWidth:
    def test_retire_width_bounds_ipc(self):
        narrow_retire = TABLE3_BASELINE.scaled(retire_width=2)
        wide = run_timing(INDEPENDENT)
        narrow = run_timing(INDEPENDENT, config=narrow_retire)
        # 2-wide retirement caps IPC at 2
        assert narrow.ipc <= 2.01
        assert wide.ipc > narrow.ipc


class TestTakenLimit:
    #: a chain of unconditional jumps: every instruction redirects fetch
    JUMP_CHAIN = "\n".join(
        [f"j{i}:\n    jmp j{i + 1}" for i in range(63)] + ["j63:\n    jmp j0"]
    )

    def test_taken_limit_caps_fetch(self):
        limited = run_timing(self.JUMP_CHAIN, n=6000)
        relaxed = run_timing(
            self.JUMP_CHAIN, n=6000,
            config=TABLE3_BASELINE.scaled(fetch_taken_limit=16))
        # with 3 taken redirects/cycle, IPC cannot exceed 3 on pure jumps
        assert limited.ipc <= 3.01
        assert relaxed.ipc > limited.ipc


class TestBTBBubbles:
    def test_btb_bubbles_counted(self):
        # many distinct taken branches conflict in a tiny BTB
        source = """
            li r1, 0
            li r2, 300
        loop:
            jmp a
        a:  jmp b
        b:  jmp c
        c:  addi r1, r1, 1
            blt r1, r2, loop
            halt
        """
        result = run_timing(source)
        assert result.btb_bubbles >= 1  # cold BTB on first encounters


class TestIssueContention:
    def test_external_slot_pressure_slows_primary(self):
        class SlotHog:
            def on_fetch(self, idx, rec, cycle, engine):
                # steal most issue slots around the current cycle
                for _ in range(12):
                    engine.alloc_issue_slot(cycle)

        plain = run_timing(INDEPENDENT)
        hogged = run_timing(INDEPENDENT, listener=SlotHog())
        assert hogged.cycles > plain.cycles

    def test_alloc_issue_slot_fills_cycle(self):
        model = OoOTimingModel()
        granted = [model.alloc_issue_slot(5) for _ in range(20)]
        # 16 fit in cycle 5, the rest spill to cycle 6
        assert granted.count(5) == 16
        assert granted.count(6) == 4

    def test_op_latency(self):
        from repro.isa.instructions import Opcode

        model = OoOTimingModel()
        assert model.op_latency(Opcode.MUL) == TABLE3_BASELINE.mul_latency
        assert model.op_latency(Opcode.ADD) == TABLE3_BASELINE.int_latency


class TestResultAccessors:
    def test_mispredict_rate_zero_without_branches(self):
        result = run_timing("li r1, 1\nhalt")
        assert result.mispredict_rate() == 0.0

    def test_ipc_zero_guard(self):
        from repro.uarch.timing import TimingResult

        empty = TimingResult(name="x")
        assert empty.ipc == 0.0
