"""Tests for pipeline timing capture and rendering."""


from repro.branch.unit import BranchPredictorComplex
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.pipeline_view import (
    InstructionTiming,
    PipelineRecorder,
    render_pipeline,
    summarize_stalls,
)
from repro.uarch.timing import OoOTimingModel

SOURCE = """
    li r1, 0
    li r2, 50
loop:
    addi r3, r3, 1
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


def record(start=0, count=16, chain=None, source=SOURCE):
    trace = run_program(assemble(source), max_instructions=2_000)
    recorder = PipelineRecorder(start=start, count=count, chain=chain)
    OoOTimingModel().run(trace, BranchPredictorComplex(), listener=recorder)
    return recorder


class TestRecorder:
    def test_window_respected(self):
        recorder = record(start=10, count=5)
        assert [r.idx for r in recorder.records] == list(range(10, 15))

    def test_stage_monotonicity(self):
        recorder = record(count=40)
        for r in recorder.records:
            assert r.fetch <= r.dispatch <= r.issue <= r.complete <= r.retire

    def test_frontend_depth_respected(self):
        from repro.uarch.config import TABLE3_BASELINE

        recorder = record(count=40)
        for r in recorder.records:
            assert r.dispatch - r.fetch >= TABLE3_BASELINE.frontend_depth

    def test_chain_forwards_on_retire(self):
        class Sink:
            def __init__(self):
                self.retired = []

            def on_retire(self, idx, rec, cycle):
                self.retired.append(idx)

        sink = Sink()
        record(count=5, chain=sink)
        assert len(sink.retired) > 100  # every retired instruction

    def test_chain_forwards_ssmt_hooks(self):
        class Fancy:
            def __init__(self):
                self.fetches = 0

            def on_fetch(self, idx, rec, cycle, engine):
                self.fetches += 1

        fancy = Fancy()
        recorder = PipelineRecorder(chain=fancy)
        # bound-method equality (fresh bound objects are never identical)
        assert recorder.on_fetch == fancy.on_fetch
        recorder.on_fetch(0, None, 0, None)
        assert fancy.fetches == 1


class TestRendering:
    def test_diagram_contains_stage_letters(self):
        recorder = record(count=8)
        text = render_pipeline(recorder.records)
        for letter in "FDICR"[:3]:
            assert letter in text

    def test_rows_match_records(self):
        recorder = record(count=8)
        text = render_pipeline(recorder.records)
        assert len(text.splitlines()) == 9  # header + 8 rows

    def test_empty_records(self):
        assert "no instructions" in render_pipeline([])

    def test_clipping_notice(self):
        timings = [InstructionTiming(0, "nop", 0, 8, 9, 10, 500)]
        assert "clipped" in render_pipeline(timings, max_width=20)


class TestStallSummary:
    def test_gaps_nonnegative(self):
        recorder = record(count=30)
        summary = summarize_stalls(recorder.records)
        assert all(v >= 0 for v in summary.values())
        assert summary["fetch_to_dispatch"] >= 8  # frontend depth

    def test_empty_summary(self):
        summary = summarize_stalls([])
        assert set(summary) == {"fetch_to_dispatch", "dispatch_to_issue",
                                "issue_to_complete", "complete_to_retire"}
