"""The zoo must be zero-cost when unused (the hot-path guard).

The default simulation path — ``SweepTask.predictor is None``, i.e. the
paper's hybrid — must not import :mod:`repro.branch.zoo` at all: the
worker defers the import to the non-default branch, ``taskkey`` only
imports the config under ``TYPE_CHECKING``, and the CLI resolves
``--predictor`` lazily.  This keeps the telemetry-overhead and
throughput gates (``benchmarks/test_simulator_throughput.py``)
measuring exactly the code they measured before the zoo existed.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.branch.hybrid import HybridPredictor
from repro.branch.unit import BranchPredictorComplex
from repro.parallel.taskkey import SweepTask
from repro.parallel.worker import _direction_complex, run_task

SRC = str(Path(__file__).resolve().parent.parent / "src")


def test_default_run_task_never_imports_zoo():
    """A fresh interpreter running a default task keeps the zoo (and its
    predictors) out of sys.modules entirely."""
    program = (
        "import sys\n"
        "from repro.parallel.taskkey import SweepTask\n"
        "from repro.parallel.worker import run_task\n"
        "payload = run_task(SweepTask(kind='baseline', benchmark='gcc',\n"
        "                             instructions=2000))\n"
        "zoo = [m for m in sys.modules if m.startswith('repro.branch.zoo')]\n"
        "print(__import__('json').dumps(\n"
        "    {'zoo_modules': zoo, 'predictor': payload['predictor']}))\n"
    )
    proc = subprocess.run([sys.executable, "-c", program],
                          capture_output=True, text=True,
                          env={"PYTHONPATH": SRC, "PATH": ""},
                          check=True)
    outcome = json.loads(proc.stdout.strip().splitlines()[-1])
    assert outcome["zoo_modules"] == []
    assert outcome["predictor"] is None


def test_default_task_uses_paper_hybrid():
    task = SweepTask(kind="baseline", benchmark="gcc", instructions=1000)
    unit = _direction_complex(task)
    assert isinstance(unit, BranchPredictorComplex)
    assert isinstance(unit.direction, HybridPredictor)


def test_default_payload_marks_no_predictor():
    payload = run_task(SweepTask(kind="baseline", benchmark="gcc",
                                 instructions=1000))
    assert payload["predictor"] is None


def test_zoo_task_payload_carries_config():
    from repro.branch.zoo import small_config

    payload = run_task(SweepTask(kind="baseline", benchmark="gcc",
                                 instructions=1000,
                                 predictor=small_config("tage")))
    assert payload["predictor"]["scheme"] == "tage"
    assert payload["predictor"]["config_version"] == 1
