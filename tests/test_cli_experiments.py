"""CLI coverage for every experiment subcommand and the chart flag."""

import pytest

from repro.cli import main

FAST = ["--instructions", "20000", "--benchmarks", "comp"]


class TestExperimentCommands:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Table 1: comp" in out and "difficult@.10" in out

    def test_table2(self, capsys):
        assert main(["experiment", "table2"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Table 2: comp" in out and "path(16)" in out

    def test_fig6(self, capsys):
        assert main(["experiment", "fig6"] + FAST) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["experiment", "fig8"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "chain" in out

    def test_fig9(self, capsys):
        assert main(["experiment", "fig9"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "early%" in out

    def test_fig7_chart_flag(self, capsys):
        assert main(["experiment", "fig7", "--chart"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Figure 7 (bars)" in out
        assert "█" in out

    def test_report_to_stdout(self, capsys):
        assert main(["report"] + FAST) == 0
        out = capsys.readouterr().out
        assert "# Experiment report" in out

    def test_unknown_benchmark_in_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig6", "--benchmarks", "bogus"])

    def test_profile_multiple_ns(self, capsys):
        assert main(["profile", "comp", "--instructions", "20000",
                     "--n", "2", "6"]) == 0
        out = capsys.readouterr().out
        assert "path(2)" in out and "path(6)" in out
