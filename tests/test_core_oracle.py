"""Tests for the Figure 6 potential engine (oracle difficult paths)."""

import pytest

from repro.branch.unit import BranchPredictorComplex
from repro.core.oracle import PotentialConfig, run_potential
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.uarch.timing import OoOTimingModel

HARD_LOOP = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 3000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


@pytest.fixture(scope="module")
def hard_trace():
    return run_program(assemble(HARD_LOOP), max_instructions=40_000)


def fast_potential(**overrides):
    defaults = dict(n=4, training_interval=8)
    defaults.update(overrides)
    return PotentialConfig(**defaults)


class TestPotentialEngine:
    def test_promotes_difficult_paths(self, hard_trace):
        _, engine = run_potential(hard_trace, fast_potential())
        assert engine.promoted_count > 0
        assert engine.oracle_predictions > 0

    def test_faster_than_baseline(self, hard_trace):
        base = OoOTimingModel().run(hard_trace, BranchPredictorComplex())
        result, _ = run_potential(hard_trace, fast_potential())
        assert result.ipc > base.ipc

    def test_oracle_predictions_always_early_and_correct(self, hard_trace):
        result, _ = run_potential(hard_trace, fast_potential())
        kinds = set(result.prediction_kinds)
        assert kinds <= {"early"}

    def test_mispredicts_reduced(self, hard_trace):
        base = OoOTimingModel().run(hard_trace, BranchPredictorComplex())
        result, _ = run_potential(hard_trace, fast_potential())
        assert result.effective_mispredicts < base.effective_mispredicts

    def test_promoted_capacity_respected(self, hard_trace):
        _, engine = run_potential(hard_trace,
                                  fast_potential(promoted_capacity=2))
        assert engine.promoted_count <= 2

    def test_high_threshold_promotes_nothing_easy(self):
        """With T=0.99 no path qualifies, so no oracle predictions."""
        trace = run_program(assemble("""
            li r1, 0
            li r2, 2000
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """), max_instructions=10_000)
        _, engine = run_potential(
            trace, fast_potential(difficulty_threshold=0.99))
        assert engine.oracle_predictions == 0
