"""Per-rule positive/negative fixtures for the repro.lint analyzers."""

import json

import pytest

from repro.lint import analyze_source
from repro.lint.baseline import (
    BASELINE_SCHEMA,
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.lint.rules import LINT_RULES, Finding, in_scope, severity_of
from repro.verify.diagnostics import RULE_NAMESPACES, Severity, all_rules

DET_MOD = "repro.parallel.fake"      # in determinism scope
HOT_MOD = "repro.core.prb"           # a designated hot module
FUSED_MOD = "repro.branch.fake"      # in fused-predictor scope
NEUTRAL_MOD = "repro.analysis.fake"  # in no scope


def rules_of(source, module):
    return sorted({f.rule for f in analyze_source(source, module)})


# -- LINT001: unseeded RNG -------------------------------------------------

def test_unseeded_random_constructor_flagged():
    src = "import random\nrng = random.Random()\n"
    assert rules_of(src, DET_MOD) == ["LINT001"]


def test_seeded_random_constructor_ok():
    src = "import random\nrng = random.Random(1234)\n"
    assert rules_of(src, DET_MOD) == []


def test_module_level_rng_call_flagged():
    src = "import random\nx = random.randint(0, 7)\n"
    assert rules_of(src, DET_MOD) == ["LINT001"]


def test_from_import_alias_resolved():
    src = "from random import Random as R\nrng = R()\n"
    assert rules_of(src, DET_MOD) == ["LINT001"]


def test_instance_rng_method_ok():
    src = ("import random\n"
           "class W:\n"
           "    def __init__(self, seed):\n"
           "        self.rng = random.Random(seed)\n"
           "    def draw(self):\n"
           "        return self.rng.random()\n")
    assert rules_of(src, DET_MOD) == []


def test_out_of_scope_module_not_checked():
    src = "import random\nx = random.random()\n"
    assert rules_of(src, NEUTRAL_MOD) == []


# -- LINT002: clock reads --------------------------------------------------

def test_clock_read_flagged():
    src = "import time\nstart = time.monotonic()\n"
    assert rules_of(src, DET_MOD) == ["LINT002"]


def test_datetime_now_flagged():
    src = "import datetime\nstamp = datetime.datetime.now()\n"
    assert rules_of(src, DET_MOD) == ["LINT002"]


def test_time_in_annotation_only_ok():
    src = "import time\n\ndef wait(deadline: float) -> None:\n    pass\n"
    assert rules_of(src, DET_MOD) == []


# -- LINT003: ambient input ------------------------------------------------

def test_environ_get_flagged_once():
    src = "import os\njobs = os.environ.get('JOBS', '')\n"
    findings = analyze_source(src, DET_MOD)
    assert [f.rule for f in findings] == ["LINT003"]


def test_bare_environ_read_flagged():
    src = "import os\nenv = dict(os.environ)\n"
    assert rules_of(src, DET_MOD) == ["LINT003"]


def test_os_getenv_flagged():
    src = "import os\nx = os.getenv('HOME')\n"
    assert rules_of(src, DET_MOD) == ["LINT003"]


def test_os_path_ok():
    src = "import os\np = os.path.join('a', 'b')\n"
    assert rules_of(src, DET_MOD) == []


# -- LINT004: set iteration order ------------------------------------------

def test_for_over_set_literal_flagged():
    src = "for x in {1, 2, 3}:\n    pass\n"
    assert rules_of(src, DET_MOD) == ["LINT004"]


def test_comprehension_over_set_call_flagged():
    src = "items = [x for x in set([3, 1, 2])]\n"
    assert rules_of(src, DET_MOD) == ["LINT004"]


def test_list_of_set_flagged():
    src = "items = list({1, 2})\n"
    assert rules_of(src, DET_MOD) == ["LINT004"]


def test_sorted_set_ok():
    src = "for x in sorted({1, 2, 3}):\n    pass\n"
    assert rules_of(src, DET_MOD) == []


def test_for_over_list_ok():
    src = "for x in [1, 2, 3]:\n    pass\n"
    assert rules_of(src, DET_MOD) == []


# -- LINT005: canonical JSON -----------------------------------------------

def test_dumps_without_sort_keys_flagged():
    src = "import json\nblob = json.dumps({'a': 1})\n"
    assert rules_of(src, DET_MOD) == ["LINT005"]


def test_dumps_with_sort_keys_ok():
    src = "import json\nblob = json.dumps({'a': 1}, sort_keys=True)\n"
    assert rules_of(src, DET_MOD) == []


def test_dumps_sort_keys_false_flagged():
    src = "import json\nblob = json.dumps({'a': 1}, sort_keys=False)\n"
    assert rules_of(src, DET_MOD) == ["LINT005"]


def test_json_loads_ok():
    src = "import json\nobj = json.loads('{}')\n"
    assert rules_of(src, DET_MOD) == []


# -- LINT010: __slots__ in hot modules -------------------------------------

def test_hot_class_without_slots_flagged():
    src = "class Entry:\n    def __init__(self):\n        self.x = 1\n"
    assert rules_of(src, HOT_MOD) == ["LINT010"]


def test_hot_class_with_slots_ok():
    src = ("class Entry:\n"
           "    __slots__ = ('x',)\n"
           "    def __init__(self):\n"
           "        self.x = 1\n")
    assert rules_of(src, HOT_MOD) == []


def test_dataclass_exempt_from_slots():
    src = ("from dataclasses import dataclass\n"
           "@dataclass\n"
           "class Cfg:\n"
           "    x: int = 1\n")
    assert rules_of(src, HOT_MOD) == []


def test_enum_and_exception_exempt_from_slots():
    src = ("from enum import Enum\n"
           "class Kind(Enum):\n"
           "    A = 1\n"
           "class BufferError2(Exception):\n"
           "    pass\n")
    assert rules_of(src, HOT_MOD) == []


def test_cold_module_class_without_slots_ok():
    src = "class Anything:\n    pass\n"
    assert rules_of(src, NEUTRAL_MOD) == []


# -- LINT011: fused predict_and_update -------------------------------------

def test_split_predict_update_same_receiver_flagged():
    src = ("def retire(self, pc, taken):\n"
           "    guess = self.pred.predict(pc)\n"
           "    self.pred.update(pc, taken)\n"
           "    return guess\n")
    assert rules_of(src, FUSED_MOD) == ["LINT011"]


def test_fused_call_ok():
    src = ("def retire(self, pc, taken):\n"
           "    return self.pred.predict_and_update(pc, taken)\n")
    assert rules_of(src, FUSED_MOD) == []


def test_different_receivers_ok():
    src = ("def retire(self, pc, taken):\n"
           "    guess = self.dirpred.predict(pc)\n"
           "    self.btb.update(pc, taken)\n"
           "    return guess\n")
    assert rules_of(src, FUSED_MOD) == []


def test_interface_methods_exempt_from_fusion():
    src = ("class Hybrid:\n"
           "    def predict_and_update(self, pc, taken):\n"
           "        p = self.meta.predict(pc)\n"
           "        self.meta.update(pc, taken)\n"
           "        return p\n")
    assert rules_of(src, FUSED_MOD) == []


def test_nested_function_receivers_not_conflated():
    src = ("def outer(self, pc):\n"
           "    self.pred.predict(pc)\n"
           "    def inner(taken):\n"
           "        self.pred.update(pc, taken)\n"
           "    return inner\n")
    # predict in outer, update only in the nested scope: each scope on
    # its own has no fused pair.
    assert rules_of(src, FUSED_MOD) == []


# -- LINT012: hook guards --------------------------------------------------

def test_unguarded_hook_call_flagged():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def retire(self, rec):\n"
           "        self.telemetry.observe(rec)\n")
    assert rules_of(src, HOT_MOD) == ["LINT012"]


def test_is_not_none_guard_ok():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def retire(self, rec):\n"
           "        if self.telemetry is not None:\n"
           "            self.telemetry.observe(rec)\n")
    assert rules_of(src, HOT_MOD) == []


def test_early_exit_guard_ok():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def retire(self, rec):\n"
           "        if self.telemetry is None:\n"
           "            return\n"
           "        self.telemetry.observe(rec)\n")
    assert rules_of(src, HOT_MOD) == []


def test_alias_guard_ok():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def retire(self, rec):\n"
           "        log = self.event_log\n"
           "        if log is not None:\n"
           "            log.append(rec)\n")
    assert rules_of(src, HOT_MOD) == []


def test_alias_unguarded_flagged():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def retire(self, rec):\n"
           "        log = self.event_log\n"
           "        log.append(rec)\n")
    assert rules_of(src, HOT_MOD) == ["LINT012"]


def test_guard_in_else_branch_flagged():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def retire(self, rec):\n"
           "        if self.telemetry is not None:\n"
           "            pass\n"
           "        else:\n"
           "            self.telemetry.observe(rec)\n")
    assert rules_of(src, HOT_MOD) == ["LINT012"]


def test_init_wiring_exempt():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def __init__(self, telemetry):\n"
           "        self.telemetry = telemetry\n"
           "        self.telemetry.attach(self)\n")
    assert rules_of(src, HOT_MOD) == []


def test_non_hook_attr_ok():
    src = ("class Engine:\n"
           "    __slots__ = ('telemetry', 'event_log', 'prb')\n"
           "    def retire(self, rec):\n"
           "        self.prb.insert(rec)\n")
    assert rules_of(src, HOT_MOD) == []


# -- LINT013: *Stats derive StatsBase --------------------------------------

def test_stats_class_without_base_flagged():
    src = "class SpawnStats:\n    pass\n"
    assert rules_of(src, NEUTRAL_MOD) == ["LINT013"]


def test_stats_class_with_base_ok():
    src = ("from repro.telemetry.registry import StatsBase\n"
           "class SpawnStats(StatsBase):\n"
           "    pass\n")
    assert rules_of(src, NEUTRAL_MOD) == []


# -- LINT020: schema markers -----------------------------------------------

def test_unregistered_marker_flagged():
    src = "SCHEMA = 'repro.mystery/7'\n"
    assert rules_of(src, NEUTRAL_MOD) == ["LINT020"]


def test_registered_marker_ok():
    src = "SCHEMA = 'repro.telemetry/1'\n"
    assert rules_of(src, NEUTRAL_MOD) == []


def test_non_marker_string_ok():
    src = "DOC = 'see repro.telemetry for details'\n"
    assert rules_of(src, NEUTRAL_MOD) == []


# -- catalog & shared namespace --------------------------------------------

def test_every_rule_has_catalog_entry_and_severity():
    for rule in LINT_RULES:
        assert rule.startswith("LINT")
        assert severity_of(rule) in (Severity.WARNING, Severity.ERROR)


def test_lint_family_registered_in_shared_namespace():
    assert "LINT" in RULE_NAMESPACES
    assert RULE_NAMESPACES["LINT"] == LINT_RULES
    merged = all_rules()
    assert set(LINT_RULES) <= set(merged)
    # MT/SAN families still present alongside
    assert any(r.startswith("MT") for r in merged)


def test_in_scope_is_prefix_not_substring():
    assert in_scope("repro.core.path", ("repro.core.path",))
    assert in_scope("repro.core.path.sub", ("repro.core.path",))
    assert not in_scope("repro.core.path_cache", ("repro.core.path",))


# -- baseline (LINT030/031) ------------------------------------------------

def _finding(rule="LINT010", path="src/x.py", symbol="C"):
    return Finding(rule=rule, severity=severity_of(rule), path=path,
                   line=3, symbol=symbol, message="m")


def test_baseline_suppresses_matching_finding():
    entry = BaselineEntry("LINT010", "src/x.py", "C", "intentional")
    kept, suppressed = apply_baseline([_finding()], [entry], "b.json")
    assert kept == [] and len(suppressed) == 1


def test_stale_baseline_entry_reported():
    entry = BaselineEntry("LINT010", "src/gone.py", "C", "old reason")
    kept, suppressed = apply_baseline([_finding()], [entry], "b.json")
    assert suppressed == []
    rules = sorted(f.rule for f in kept)
    assert rules == ["LINT010", "LINT030"]
    assert severity_of("LINT030") == Severity.WARNING


def test_baseline_entry_without_justification_rejected(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({
        "schema": BASELINE_SCHEMA,
        "entries": [{"rule": "LINT010", "path": "src/x.py", "symbol": "C"}],
    }))
    entries, findings = load_baseline(str(path))
    assert entries == []
    assert [f.rule for f in findings] == ["LINT031"]


def test_baseline_wrong_schema_rejected(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"schema": "repro.other/1", "entries": []}))
    entries, findings = load_baseline(str(path))
    assert entries == []
    assert [f.rule for f in findings] == ["LINT031"]


def test_missing_baseline_is_fine(tmp_path):
    entries, findings = load_baseline(str(tmp_path / "absent.json"))
    assert entries == [] and findings == []


# -- finding formatting ----------------------------------------------------

def test_finding_format_is_anchored():
    f = Finding(rule="LINT001", severity=Severity.ERROR, path="src/a.py",
                line=12, symbol="W.draw", message="boom", hint="seed it")
    text = f.format()
    assert text.startswith("src/a.py:12: LINT001 ERROR [W.draw] boom")
    assert "seed it" in text


def test_repo_level_finding_has_no_line():
    f = Finding(rule="LINT022", severity=Severity.ERROR,
                path="lint-fingerprints.json", line=0,
                symbol="<manifest>", message="drift")
    assert f.format().startswith("lint-fingerprints.json: LINT022")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
