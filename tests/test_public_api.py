"""Public API integrity: every ``__all__`` export resolves and is
documented.  This guards the documentation deliverable mechanically."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.isa",
    "repro.sim",
    "repro.workloads",
    "repro.branch",
    "repro.valuepred",
    "repro.uarch",
    "repro.core",
    "repro.analysis",
    "repro.telemetry",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} missing __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_exported_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"undocumented exports: {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


INTERNAL_MODULES = [
    "repro.isa.instructions", "repro.isa.program", "repro.isa.builder",
    "repro.isa.assembler", "repro.isa.registers",
    "repro.sim.functional", "repro.sim.trace",
    "repro.workloads.spec", "repro.workloads.generator",
    "repro.workloads.behaviors", "repro.workloads.suite",
    "repro.branch.base", "repro.branch.gshare", "repro.branch.pas",
    "repro.branch.hybrid", "repro.branch.btb", "repro.branch.ras",
    "repro.branch.target_cache", "repro.branch.unit",
    "repro.branch.confidence",
    "repro.branch.zoo", "repro.branch.zoo.config",
    "repro.branch.zoo.registry", "repro.branch.zoo.tage",
    "repro.branch.zoo.perceptron", "repro.branch.zoo.h2p",
    "repro.valuepred.stride", "repro.valuepred.address",
    "repro.valuepred.trainer",
    "repro.uarch.config", "repro.uarch.caches", "repro.uarch.timing",
    "repro.core.path", "repro.core.path_cache", "repro.core.prb",
    "repro.core.microthread", "repro.core.mcb", "repro.core.builder",
    "repro.core.microram", "repro.core.prediction_cache",
    "repro.core.spawn", "repro.core.ssmt", "repro.core.oracle",
    "repro.core.static",
    "repro.analysis.events", "repro.analysis.characterize",
    "repro.analysis.coverage", "repro.analysis.experiments",
    "repro.analysis.report", "repro.analysis.confidence",
    "repro.analysis.sweeps", "repro.analysis.summary",
    "repro.analysis.paper_data", "repro.analysis.arena",
    "repro.analysis.h2p",
    "repro.telemetry.registry", "repro.telemetry.sampler",
    "repro.telemetry.tracer", "repro.telemetry.report",
    "repro.telemetry.session",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", INTERNAL_MODULES)
def test_every_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20
