"""Tests for Program linking and validation, and ProgramBuilder."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import DataSegment, Program, ProgramError


def _nop():
    return Instruction(Opcode.NOP)


class TestProgramLinking:
    def test_pcs_assigned_sequentially(self):
        program = Program([_nop(), _nop(), _nop()])
        assert [inst.pc for inst in program.instructions] == [0, 1, 2]

    def test_label_targets_resolved(self):
        insts = [Instruction(Opcode.JMP, target="end"), _nop(), _nop()]
        program = Program(insts, labels={"end": 2})
        assert program[0].target == 2

    def test_unresolved_label_raises(self):
        with pytest.raises(ProgramError, match="unresolved"):
            Program([Instruction(Opcode.JMP, target="nowhere")])

    def test_label_immediate_for_li(self):
        insts = [Instruction(Opcode.LI, rd=1, imm="table"), _nop(), _nop()]
        program = Program(insts, labels={"table": 2})
        assert program[0].imm == 2

    def test_out_of_range_target_raises(self):
        with pytest.raises(ProgramError, match="out of range"):
            Program([Instruction(Opcode.JMP, target=5), _nop()])

    def test_empty_program_raises(self):
        with pytest.raises(ProgramError, match="empty"):
            Program([])

    def test_bad_entry_raises(self):
        with pytest.raises(ProgramError, match="entry"):
            Program([_nop()], entry=3)

    def test_micro_op_rejected(self):
        with pytest.raises(ProgramError, match="micro-op"):
            Program([Instruction(Opcode.STORE_PCACHE, rs1=1)])

    def test_static_branch_count(self):
        insts = [
            Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0),
            _nop(),
            Instruction(Opcode.JMP, target=0),
        ]
        assert Program(insts).static_branch_count() == 2

    def test_disassemble_includes_labels(self):
        insts = [_nop(), Instruction(Opcode.JMP, target="loop")]
        listing = Program(insts, labels={"loop": 0}).disassemble()
        assert "loop:" in listing
        assert "jmp" in listing


class TestDataSegment:
    def test_store_load_roundtrip(self):
        seg = DataSegment()
        seg.store(100, 42)
        assert seg.load(100) == 42

    def test_default_zero(self):
        assert DataSegment().load(999) == 0


class TestProgramBuilder:
    def test_emit_and_build(self):
        b = ProgramBuilder()
        b.li(1, 5)
        b.emit(Opcode.ADD, rd=2, rs1=1, rs2=1)
        b.emit(Opcode.HALT)
        program = b.build()
        assert len(program) == 3
        assert program[1].opcode == Opcode.ADD

    def test_forward_label_fixup(self):
        b = ProgramBuilder()
        b.jmp("skip")
        b.emit(Opcode.NOP)
        b.label("skip")
        b.emit(Opcode.HALT)
        program = b.build()
        assert program[0].target == 2

    def test_fresh_labels_are_unique(self):
        b = ProgramBuilder()
        assert b.fresh_label() != b.fresh_label()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.emit(Opcode.NOP)
        b.label("x")
        with pytest.raises(ProgramError, match="duplicate"):
            b.label("x")

    def test_bind_reserved_label(self):
        b = ProgramBuilder()
        name = b.fresh_label()
        b.jmp(name)
        b.bind(name)
        b.emit(Opcode.HALT)
        assert b.build()[0].target == 1

    def test_alloc_returns_distinct_bases(self):
        b = ProgramBuilder()
        first = b.alloc(16)
        second = b.alloc(16)
        assert second == first + 16

    def test_alloc_initialises_data(self):
        b = ProgramBuilder()
        base = b.alloc(4, [9, 8, 7])
        b.emit(Opcode.HALT)
        program = b.build()
        assert program.data.load(base) == 9
        assert program.data.load(base + 2) == 7
        assert program.data.load(base + 3) == 0

    def test_alloc_initializer_too_long_raises(self):
        b = ProgramBuilder()
        with pytest.raises(ProgramError):
            b.alloc(2, [1, 2, 3])

    def test_here_tracks_position(self):
        b = ProgramBuilder()
        assert b.here == 0
        b.emit(Opcode.NOP)
        assert b.here == 1
