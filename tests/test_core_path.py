"""Tests for Path_Id hashing and the path tracker (paper §3)."""

import pytest

from repro.core.path import PathKey, PathTracker, path_id_hash
from repro.isa.assembler import assemble
from repro.sim.functional import run_program


class TestPathIdHash:
    def test_deterministic(self):
        pcs = (10, 20, 30)
        assert path_id_hash(pcs) == path_id_hash(pcs)

    def test_order_sensitive(self):
        assert path_id_hash((10, 20)) != path_id_hash((20, 10))

    def test_empty_path_hashes_to_zero(self):
        assert path_id_hash(()) == 0

    def test_fits_in_bits(self):
        value = path_id_hash(tuple(range(100)), bits=16)
        assert 0 <= value < (1 << 16)

    def test_different_paths_usually_differ(self):
        seen = {path_id_hash((a, b, c))
                for a in range(8) for b in range(8) for c in range(8)}
        assert len(seen) > 400  # 512 paths, near-unique hashes

    def test_single_branch(self):
        assert path_id_hash((0x1234,), bits=24) == 0x1234


class TestPathKey:
    def test_hashable_and_equatable(self):
        a = PathKey(5, (1, 2, 3))
        b = PathKey(5, (1, 2, 3))
        assert a == b and hash(a) == hash(b)
        assert a != PathKey(6, (1, 2, 3))

    def test_path_id_matches_free_function(self):
        key = PathKey(5, (1, 2, 3))
        assert key.path_id() == path_id_hash((1, 2, 3))


def _trace(source, n=2000):
    return run_program(assemble(source), max_instructions=n)


LOOP_WITH_BRANCHES = """
    li r1, 0
    li r2, 20
loop:
    andi r3, r1, 1
    li r4, 0
    beq r3, r4, even
    addi r5, r5, 1
even:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


class TestPathTracker:
    def test_events_only_for_terminating_branches(self):
        trace = _trace(LOOP_WITH_BRANCHES)
        tracker = PathTracker(n=2)
        events = [tracker.observe(rec, i) for i, rec in enumerate(trace)]
        emitted = [e for e in events if e is not None]
        terminating = [r for r in trace if r.is_path_terminating]
        assert len(emitted) == len(terminating)

    def test_path_excludes_terminating_branch_itself(self):
        trace = _trace(LOOP_WITH_BRANCHES)
        tracker = PathTracker(n=4)
        for i, rec in enumerate(trace):
            event = tracker.observe(rec, i)
            if event is not None:
                assert rec.pc not in (()
                                      if not event.key.branches
                                      else (event.key.branches[-1],)) \
                    or trace[event.branch_idxs[-1]].seq != rec.seq

    def test_history_holds_only_taken_controls(self):
        trace = _trace(LOOP_WITH_BRANCHES)
        tracker = PathTracker(n=16)
        taken_pcs = []
        for i, rec in enumerate(trace[:200]):
            tracker.observe(rec, i)
            if rec.is_taken_control:
                taken_pcs.append(rec.pc)
        assert tracker.current_branches() == tuple(taken_pcs[-16:])

    def test_partial_until_n_taken_seen(self):
        trace = _trace(LOOP_WITH_BRANCHES)
        tracker = PathTracker(n=8)
        partial_flags = []
        for i, rec in enumerate(trace):
            event = tracker.observe(rec, i)
            if event is not None:
                partial_flags.append(event.partial)
        assert partial_flags[0]          # early events are partial
        assert not partial_flags[-1]     # steady state is full

    def test_scope_size_positive_and_consistent(self):
        trace = _trace(LOOP_WITH_BRANCHES)
        tracker = PathTracker(n=3)
        for i, rec in enumerate(trace):
            event = tracker.observe(rec, i)
            if event is not None and not event.partial:
                assert event.scope_size == event.branch_idx - event.scope_start_idx
                assert event.scope_size > 0

    def test_same_static_path_same_key(self):
        """A steady loop produces one repeating path per branch."""
        trace = _trace(LOOP_WITH_BRANCHES)
        tracker = PathTracker(n=2)
        keys_by_pc = {}
        for i, rec in enumerate(trace):
            event = tracker.observe(rec, i)
            if event is not None and not event.partial and i > 100:
                keys_by_pc.setdefault(rec.pc, set()).add(event.key)
        # The backedge alternates between even/odd iterations -> <= 2 paths.
        for keys in keys_by_pc.values():
            assert 1 <= len(keys) <= 2

    def test_branch_idxs_parallel_branches(self):
        trace = _trace(LOOP_WITH_BRANCHES)
        tracker = PathTracker(n=4)
        for i, rec in enumerate(trace):
            event = tracker.observe(rec, i)
            if event is not None and not event.partial:
                assert len(event.branch_idxs) == len(event.key.branches)
                assert list(event.branch_idxs) == sorted(event.branch_idxs)

    def test_reset(self):
        tracker = PathTracker(n=4)
        trace = _trace(LOOP_WITH_BRANCHES)
        for i, rec in enumerate(trace[:100]):
            tracker.observe(rec, i)
        tracker.reset()
        assert tracker.current_branches() == ()

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            PathTracker(n=0)
