"""Tests for the cache hierarchy and MSHR-style in-flight fills."""

import pytest

from repro.uarch.caches import CacheHierarchy, _SetAssocCache
from repro.uarch.config import MachineConfig


def small_config(**overrides):
    defaults = dict(l1_words=64, l1_assoc=2, l2_words=256, l2_assoc=4,
                    line_words=8)
    defaults.update(overrides)
    return MachineConfig().scaled(**defaults)


class TestSetAssocCache:
    def test_miss_then_hit(self):
        cache = _SetAssocCache(64, 2, 8)
        assert not cache.lookup(5)
        assert cache.lookup(5)

    def test_lru_eviction(self):
        cache = _SetAssocCache(64, 2, 8)  # 4 sets
        a, b, c = 0, 4, 8  # all map to set 0
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(c)  # evicts a (LRU)
        assert cache.lookup(b)
        assert not cache.lookup(a)

    def test_lookup_refreshes_lru(self):
        cache = _SetAssocCache(64, 2, 8)
        a, b, c = 0, 4, 8
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(a)  # a becomes MRU
        cache.lookup(c)  # evicts b
        assert cache.lookup(a)
        assert not cache.lookup(b)

    def test_invalidate(self):
        cache = _SetAssocCache(64, 2, 8)
        cache.lookup(3)
        cache.invalidate(3)
        assert not cache.lookup(3)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            _SetAssocCache(60, 2, 8)


class TestHierarchyLatencies:
    def test_cold_miss_pays_full_latency(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        latency = h.load_latency(0x1000, when=0)
        assert latency == cfg.l1_latency + cfg.l2_latency + cfg.memory_latency

    def test_warm_hit_is_l1(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        h.load_latency(0x1000, when=0)
        assert h.load_latency(0x1000, when=1000) == cfg.l1_latency

    def test_l2_hit_after_l1_eviction(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        h.load_latency(0x1000, when=0)
        # Touch 3 more lines mapping to the same set: the 2-way L1 evicts
        # the original line but the 4-way L2 still holds all four.
        for i in range(1, 4):
            h.load_latency(0x1000 + i * 64 * 8, when=0)
        latency = h.load_latency(0x1000, when=10_000)
        assert latency == cfg.l1_latency + cfg.l2_latency

    def test_same_line_hits(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        h.load_latency(0x1000, when=0)
        assert h.load_latency(0x1007, when=1000) == cfg.l1_latency

    def test_stats_counted(self):
        h = CacheHierarchy(small_config())
        h.load_latency(0x1000, when=0)
        h.load_latency(0x1000, when=1000)
        assert h.stats.l1_misses == 1
        assert h.stats.l1_hits == 1
        assert 0.0 <= h.stats.l1_hit_rate <= 1.0


class TestInFlightFills:
    """A prefetch only helps accesses issued after its fill completes."""

    def test_access_during_fill_waits(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        miss_latency = h.load_latency(0x1000, when=100)  # fill completes at 100+L
        fill_done = 100 + miss_latency
        # Second access halfway through the fill waits the remainder.
        halfway = 100 + miss_latency // 2
        latency = h.load_latency(0x1000, when=halfway)
        assert latency == fill_done - halfway

    def test_access_after_fill_is_fast(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        miss_latency = h.load_latency(0x1000, when=0)
        assert h.load_latency(0x1000, when=miss_latency + 1) == cfg.l1_latency

    def test_acausal_benefit_denied(self):
        """An access issued *before* the prefetch even started still pays."""
        cfg = small_config()
        h = CacheHierarchy(cfg)
        h.load_latency(0x1000, when=500)  # "prefetch" at cycle 500
        latency = h.load_latency(0x1000, when=0)  # earlier access
        assert latency >= cfg.memory_latency  # waits for the fill


class TestStores:
    def test_store_invalidates_l1_keeps_l2(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        h.load_latency(0x1000, when=0)
        h.store(0x1000)
        latency = h.load_latency(0x1000, when=10_000)
        assert latency == cfg.l1_latency + cfg.l2_latency

    def test_store_latency_constant(self):
        cfg = small_config()
        h = CacheHierarchy(cfg)
        assert h.store(0x2000) == cfg.store_latency
        assert h.stats.stores == 1
