"""Tests for the MicroRAM routine store."""

import pytest

from repro.core.microram import MicroRAM
from repro.core.microthread import Microthread, MicroOp, topological_order
from repro.core.path import PathKey
from repro.isa.instructions import Opcode


def make_thread(term_pc, spawn_pc, branches=(1, 2)):
    root = MicroOp("branch", op=Opcode.BEQ,
                   inputs=[MicroOp("const", imm=0), MicroOp("const", imm=0)])
    return Microthread(
        key=PathKey(term_pc, branches),
        path_id=term_pc,
        root=root,
        nodes=topological_order(root),
        live_in_regs=(),
        spawn_pc=spawn_pc,
        separation=5,
        term_pc=term_pc,
        term_taken_target=0,
        prefix=(),
        expected_suffix=(),
    )


class TestInsertLookup:
    def test_insert_and_get(self):
        ram = MicroRAM(capacity=4)
        thread = make_thread(10, 5)
        assert ram.insert(thread) is None
        assert ram.get(thread.key) is thread
        assert thread.key in ram

    def test_routines_at_spawn_pc(self):
        ram = MicroRAM(capacity=4)
        a = make_thread(10, 5)
        b = make_thread(11, 5, branches=(3, 4))
        ram.insert(a)
        ram.insert(b)
        assert set(t.term_pc for t in ram.routines_at(5)) == {10, 11}
        assert ram.routines_at(99) == []

    def test_reinsert_same_key_replaces(self):
        ram = MicroRAM(capacity=4)
        a = make_thread(10, 5)
        ram.insert(a)
        b = make_thread(10, 6)  # same key fields
        ram.insert(b)
        assert len(ram) == 1
        assert ram.routines_at(5) == []
        assert ram.routines_at(6)[0] is b


class TestEviction:
    def test_lru_eviction_on_capacity(self):
        ram = MicroRAM(capacity=2)
        a = make_thread(1, 5)
        b = make_thread(2, 6)
        c = make_thread(3, 7)
        ram.insert(a)
        ram.insert(b)
        evicted = ram.insert(c)
        assert evicted == a.key
        assert ram.get(a.key) is None
        assert ram.evictions == 1

    def test_touch_refreshes_lru(self):
        ram = MicroRAM(capacity=2)
        a = make_thread(1, 5)
        b = make_thread(2, 6)
        ram.insert(a)
        ram.insert(b)
        ram.touch(a.key)  # a used by a spawn
        evicted = ram.insert(make_thread(3, 7))
        assert evicted == b.key

    def test_remove_on_demotion(self):
        ram = MicroRAM(capacity=4)
        a = make_thread(1, 5)
        ram.insert(a)
        assert ram.remove(a.key)
        assert not ram.remove(a.key)
        assert ram.routines_at(5) == []

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MicroRAM(capacity=0)
