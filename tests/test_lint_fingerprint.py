"""Fingerprint stability properties and the schema-drift gate."""

import json
import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint.fingerprint import (
    FINGERPRINT_SCHEMA,
    compute_fingerprints,
    drift_findings,
    fingerprint_source,
    normalize_source,
    payload_module_files,
    write_manifest,
)

BASE_SOURCE = '''\
"""Module docstring."""
import math


class Counter:
    """Class docstring."""

    def __init__(self, start=0):
        self.value = start

    def bump(self, by=1):
        """Method docstring."""
        self.value = self.value + by
        return self.value


def scale(x, factor=2.0):
    return math.floor(x * factor)
'''


# -- formatting-invariance properties --------------------------------------

names = st.sampled_from(["alpha", "beta", "gamma_2", "x9"])


@given(st.text(alphabet=" \t", max_size=6), names)
def test_fingerprint_ignores_comments_and_blank_lines(pad, word):
    edited = BASE_SOURCE.replace(
        "import math",
        f"import math\n{pad.rstrip()}\n# note about {word}\n")
    assert fingerprint_source(edited) == fingerprint_source(BASE_SOURCE)


@given(names)
def test_fingerprint_ignores_docstring_edits(word):
    edited = BASE_SOURCE.replace("Module docstring.", f"About {word}.")
    edited = edited.replace("Class docstring.", f"A {word} counter.")
    edited = edited.replace("Method docstring.", f"Bump by {word}.")
    assert fingerprint_source(edited) == fingerprint_source(BASE_SOURCE)


def test_fingerprint_ignores_quote_style_and_line_breaks():
    reflowed = BASE_SOURCE.replace(
        "def scale(x, factor=2.0):",
        "def scale(\n        x,\n        factor=2.0,\n):")
    assert fingerprint_source(reflowed) == fingerprint_source(BASE_SOURCE)


@given(st.integers(min_value=2, max_value=50))
def test_fingerprint_changes_under_constant_edit(value):
    edited = BASE_SOURCE.replace("by=1", f"by={value}")
    same = value == 1
    assert (fingerprint_source(edited)
            == fingerprint_source(BASE_SOURCE)) is same


@given(names)
def test_fingerprint_changes_under_rename(word):
    edited = BASE_SOURCE.replace("def bump", f"def bump_{word}")
    assert fingerprint_source(edited) != fingerprint_source(BASE_SOURCE)


def test_fingerprint_changes_under_statement_insertion():
    edited = BASE_SOURCE.replace("        return self.value",
                                 "        self.value += 0\n"
                                 "        return self.value")
    assert fingerprint_source(edited) != fingerprint_source(BASE_SOURCE)


def test_fingerprint_changes_under_operator_swap():
    edited = BASE_SOURCE.replace("self.value + by", "self.value - by")
    assert fingerprint_source(edited) != fingerprint_source(BASE_SOURCE)


def test_normalize_strips_every_docstring():
    dump = normalize_source(BASE_SOURCE)
    for text in ("Module docstring", "Class docstring", "Method docstring"):
        assert text not in dump


# -- manifest over a synthetic src tree ------------------------------------

@pytest.fixture()
def src_tree(tmp_path, monkeypatch):
    """A minimal src/ tree matching one directory and one file prefix."""
    monkeypatch.setattr(
        "repro.lint.fingerprint.PAYLOAD_PREFIXES",
        ("repro/core/", "repro/schemas.py"))
    src = tmp_path / "src"
    (src / "repro" / "core").mkdir(parents=True)
    (src / "repro" / "core" / "a.py").write_text("X = 1\n")
    (src / "repro" / "core" / "b.py").write_text("def f():\n    return 2\n")
    (src / "repro" / "schemas.py").write_text("CODE_SCHEMA_VERSION = 1\n")
    return src


def test_payload_module_enumeration(src_tree):
    assert payload_module_files(str(src_tree)) == [
        "repro/core/a.py", "repro/core/b.py", "repro/schemas.py"]


def test_manifest_roundtrip_clean(src_tree, tmp_path):
    manifest = tmp_path / "m.json"
    payload = write_manifest(str(manifest), str(src_tree), 1)
    assert payload["schema"] == FINGERPRINT_SCHEMA
    assert drift_findings(str(src_tree), str(manifest), 1) == []


def test_missing_manifest_is_an_error(src_tree, tmp_path):
    findings = drift_findings(str(src_tree), str(tmp_path / "no.json"), 1)
    assert [f.rule for f in findings] == ["LINT022"]


def test_semantic_edit_without_bump_fails_gate(src_tree, tmp_path):
    manifest = tmp_path / "m.json"
    write_manifest(str(manifest), str(src_tree), 1)
    (src_tree / "repro" / "core" / "b.py").write_text(
        "def f():\n    return 3\n")
    findings = drift_findings(str(src_tree), str(manifest), 1)
    assert [f.rule for f in findings] == ["LINT022"]
    assert findings[0].path == "repro/core/b.py"
    assert "CODE_SCHEMA_VERSION" in findings[0].message


def test_formatting_edit_passes_gate(src_tree, tmp_path):
    manifest = tmp_path / "m.json"
    write_manifest(str(manifest), str(src_tree), 1)
    (src_tree / "repro" / "core" / "b.py").write_text(
        '"""Now documented."""\n\n\ndef f():  # comment\n    return 2\n')
    assert drift_findings(str(src_tree), str(manifest), 1) == []


def test_version_bump_without_refresh_fails_gate(src_tree, tmp_path):
    manifest = tmp_path / "m.json"
    write_manifest(str(manifest), str(src_tree), 1)
    findings = drift_findings(str(src_tree), str(manifest), 2)
    assert [f.rule for f in findings] == ["LINT022"]
    assert "refreshed manifest" in findings[0].hint


def test_new_module_fails_gate_until_refresh(src_tree, tmp_path):
    manifest = tmp_path / "m.json"
    write_manifest(str(manifest), str(src_tree), 1)
    (src_tree / "repro" / "core" / "c.py").write_text("Y = 3\n")
    findings = drift_findings(str(src_tree), str(manifest), 1)
    assert [f.rule for f in findings] == ["LINT022"]
    assert findings[0].path == "repro/core/c.py"
    write_manifest(str(manifest), str(src_tree), 1)
    assert drift_findings(str(src_tree), str(manifest), 1) == []


def test_removed_module_fails_gate(src_tree, tmp_path):
    manifest = tmp_path / "m.json"
    write_manifest(str(manifest), str(src_tree), 1)
    os.remove(src_tree / "repro" / "core" / "a.py")
    findings = drift_findings(str(src_tree), str(manifest), 1)
    assert [f.rule for f in findings] == ["LINT022"]
    assert "repro/core/a.py" in findings[0].message


def test_corrupt_manifest_is_an_error(src_tree, tmp_path):
    manifest = tmp_path / "m.json"
    manifest.write_text("{not json")
    findings = drift_findings(str(src_tree), str(manifest), 1)
    assert [f.rule for f in findings] == ["LINT022"]


def test_manifest_is_deterministic_json(src_tree, tmp_path):
    m1, m2 = tmp_path / "m1.json", tmp_path / "m2.json"
    write_manifest(str(m1), str(src_tree), 1)
    write_manifest(str(m2), str(src_tree), 1)
    assert m1.read_text() == m2.read_text()
    parsed = json.loads(m1.read_text())
    assert parsed["fingerprints"] == compute_fingerprints(str(src_tree))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
