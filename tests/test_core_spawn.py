"""Tests for spawning, microcontexts and the abort mechanism (§4.3)."""

import pytest

from repro.core.microthread import Microthread, MicroOp, topological_order
from repro.core.path import PathKey
from repro.core.spawn import SpawnManager
from repro.isa.instructions import Opcode


def make_thread(prefix=(), suffix=(), separation=20, term_pc=99):
    root = MicroOp("branch", op=Opcode.BEQ,
                   inputs=[MicroOp("const", imm=0), MicroOp("const", imm=0)])
    return Microthread(
        key=PathKey(term_pc, tuple(prefix) + tuple(suffix)),
        path_id=term_pc,
        root=root,
        nodes=topological_order(root),
        live_in_regs=(),
        spawn_pc=5,
        separation=separation,
        term_pc=term_pc,
        term_taken_target=0,
        prefix=tuple(prefix),
        expected_suffix=tuple(suffix),
    )


class TestPreAllocationFilter:
    def test_matching_prefix_spawns(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(prefix=(10, 20))
        instance = manager.attempt_spawn(thread, 100, 0,
                                         recent_taken=(5, 10, 20))
        assert instance is not None
        assert manager.stats.spawned == 1

    def test_mismatched_prefix_aborts_pre_allocation(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(prefix=(10, 20))
        instance = manager.attempt_spawn(thread, 100, 0,
                                         recent_taken=(5, 10, 21))
        assert instance is None
        assert manager.stats.pre_allocation_aborts == 1
        assert manager.stats.spawned == 0

    def test_empty_prefix_always_passes(self):
        manager = SpawnManager(n_contexts=4)
        assert manager.attempt_spawn(make_thread(), 100, 0, ()) is not None

    def test_filter_disabled_without_abort(self):
        manager = SpawnManager(n_contexts=4, abort_enabled=False)
        thread = make_thread(prefix=(10, 20))
        assert manager.attempt_spawn(thread, 100, 0, (1, 2, 3)) is not None


class TestMicrocontexts:
    def test_contexts_exhaust(self):
        manager = SpawnManager(n_contexts=2)
        for i in range(2):
            instance = manager.attempt_spawn(make_thread(), 100 + i, 0, ())
            manager.commit_timing(instance, completion_cycle=1000,
                                  arrival_cycle=900)
        assert manager.attempt_spawn(make_thread(), 110, 5, ()) is None
        assert manager.stats.no_free_context == 1

    def test_context_frees_at_completion(self):
        manager = SpawnManager(n_contexts=1)
        instance = manager.attempt_spawn(make_thread(), 100, 0, ())
        manager.commit_timing(instance, completion_cycle=50, arrival_cycle=40)
        assert manager.attempt_spawn(make_thread(), 200, 49, ()) is None
        assert manager.attempt_spawn(make_thread(), 200, 50, ()) is not None

    def test_abort_frees_context_early(self):
        manager = SpawnManager(n_contexts=1)
        thread = make_thread(suffix=(7,), separation=50)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        manager.commit_timing(instance, completion_cycle=500, arrival_cycle=400)
        # deviation at cycle 10 aborts and frees the context
        manager.on_taken_control(pc=8, idx=110, cycle=10)
        assert instance.aborted
        assert manager.attempt_spawn(make_thread(), 200, 10, ()) is not None

    def test_rejects_zero_contexts(self):
        with pytest.raises(ValueError):
            SpawnManager(n_contexts=0)


class TestSuffixAbort:
    def test_matching_suffix_survives(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(suffix=(7, 9), separation=50)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        manager.on_taken_control(7, 110, 5)
        manager.on_taken_control(9, 120, 6)
        assert not instance.aborted
        assert instance.suffix_progress == 2

    def test_deviation_aborts(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(suffix=(7, 9), separation=50)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        aborted = manager.on_taken_control(8, 110, 5)  # expected 7
        assert instance in aborted
        assert manager.stats.aborted_active == 1

    def test_extra_taken_branch_aborts(self):
        """More taken branches than expected before the target = deviation."""
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(suffix=(7,), separation=50)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        manager.on_taken_control(7, 110, 5)
        aborted = manager.on_taken_control(7, 120, 6)
        assert instance in aborted

    def test_taken_controls_outside_window_ignored(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(suffix=(7,), separation=10)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        manager.on_taken_control(99, 100, 1)   # at spawn idx: ignored
        manager.on_taken_control(99, 111, 2)   # past target_seq: ignored
        assert not instance.aborted

    def test_abort_disabled(self):
        manager = SpawnManager(n_contexts=4, abort_enabled=False)
        thread = make_thread(suffix=(7,), separation=50)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        assert manager.on_taken_control(8, 110, 5) == []
        assert not instance.aborted


class TestMemoryViolations:
    def test_store_to_loaded_address_violates(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(separation=50)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        instance.load_set = frozenset({0x200})
        violated = manager.on_store_retired(0x200, 120, 10)
        assert instance in violated
        assert manager.stats.memdep_violations == 1
        assert instance.aborted

    def test_unrelated_store_ignored(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(separation=50)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        instance.load_set = frozenset({0x200})
        assert manager.on_store_retired(0x300, 120, 10) == []

    def test_store_outside_window_ignored(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(separation=10)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        instance.load_set = frozenset({0x200})
        assert manager.on_store_retired(0x200, 95, 10) == []   # before spawn
        assert manager.on_store_retired(0x200, 115, 10) == []  # past target


class TestRetirePast:
    def test_completed_instances_counted(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(separation=10)
        manager.attempt_spawn(thread, 100, 0, ())
        manager.retire_past(109)
        assert manager.stats.completed == 0
        manager.retire_past(110)
        assert manager.stats.completed == 1
        assert manager.active == []

    def test_aborted_not_counted_completed(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(suffix=(7,), separation=10)
        instance = manager.attempt_spawn(thread, 100, 0, ())
        manager.on_taken_control(8, 105, 3)
        manager.retire_past(110)
        assert manager.stats.completed == 0

    def test_abort_rates(self):
        manager = SpawnManager(n_contexts=4)
        thread = make_thread(prefix=(1,), suffix=(7,), separation=10)
        manager.attempt_spawn(thread, 100, 0, (2,))     # pre-alloc abort
        inst = manager.attempt_spawn(thread, 100, 0, (1,))
        manager.on_taken_control(8, 105, 3)              # active abort
        assert manager.stats.pre_allocation_abort_rate == 0.5
        assert manager.stats.active_abort_rate == 1.0
