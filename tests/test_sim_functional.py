"""Tests for the architectural simulator: per-opcode semantics."""


from repro.isa.assembler import assemble
from repro.sim.functional import (
    DEFAULT_SP,
    FunctionalSimulator,
    run_program,
    to_signed,
    to_unsigned,
)


def run(source, max_instructions=10_000):
    return run_program(assemble(source), max_instructions=max_instructions)


def final_reg(source, reg):
    sim = FunctionalSimulator(assemble(source))
    sim.run()
    return sim.regs[reg]


class TestArithmetic:
    def test_add(self):
        assert final_reg("li r1, 5\nli r2, 7\nadd r3, r1, r2\nhalt", 3) == 12

    def test_sub_wraps_to_64_bits(self):
        assert final_reg("li r1, 0\nli r2, 1\nsub r3, r1, r2\nhalt", 3) == (1 << 64) - 1

    def test_mul(self):
        assert final_reg("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt", 3) == 42

    def test_logic_ops(self):
        src = "li r1, 12\nli r2, 10\nand r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\nhalt"
        sim = FunctionalSimulator(assemble(src))
        sim.run()
        assert sim.regs[3] == 8 and sim.regs[4] == 14 and sim.regs[5] == 6

    def test_shifts(self):
        assert final_reg("li r1, 3\nslli r2, r1, 4\nhalt", 2) == 48
        assert final_reg("li r1, 48\nsrli r2, r1, 4\nhalt", 2) == 3

    def test_slt_signed(self):
        assert final_reg("li r1, -1\nli r2, 1\nslt r3, r1, r2\nhalt", 3) == 1
        assert final_reg("li r1, 1\nli r2, -1\nslt r3, r1, r2\nhalt", 3) == 0

    def test_sltu_unsigned(self):
        # -1 as unsigned is the max value, so it is not < 1.
        assert final_reg("li r1, -1\nli r2, 1\nsltu r3, r1, r2\nhalt", 3) == 0

    def test_writes_to_r0_discarded(self):
        assert final_reg("li r0, 99\nhalt", 0) == 0

    def test_mov(self):
        assert final_reg("li r1, 33\nmov r2, r1\nhalt", 2) == 33


class TestMemory:
    def test_store_load_roundtrip(self):
        src = """
            li r1, 0x100
            li r2, 77
            st r2, 4(r1)
            ld r3, 4(r1)
            halt
        """
        assert final_reg(src, 3) == 77

    def test_load_from_data_segment(self):
        src = """
        .data arr 4 5 6 7 8
            li r1, &arr
            ld r2, 2(r1)
            halt
        """
        assert final_reg(src, 2) == 7

    def test_uninitialised_memory_reads_zero(self):
        assert final_reg("li r1, 0x5000\nld r2, 0(r1)\nhalt", 2) == 0

    def test_effective_address_recorded(self):
        trace = run(".data arr 2 1 2\nli r1, &arr\nld r2, 1(r1)\nhalt")
        load = next(r for r in trace if r.is_load)
        assert load.ea == load.src1_val + 1
        assert load.result == 2


class TestControlFlow:
    def test_taken_branch(self):
        trace = run("li r1, 1\nli r2, 1\nbeq r1, r2, end\nli r3, 9\nend:\nhalt")
        branch = next(r for r in trace if r.is_conditional_branch)
        assert branch.taken and branch.next_pc == 4

    def test_not_taken_branch(self):
        trace = run("li r1, 1\nli r2, 2\nbeq r1, r2, end\nli r3, 9\nend:\nhalt")
        branch = next(r for r in trace if r.is_conditional_branch)
        assert not branch.taken and branch.next_pc == 3

    def test_blt_bge_pair(self):
        assert final_reg(
            "li r1, 2\nli r2, 5\nli r3, 0\nblt r1, r2, yes\njmp end\n"
            "yes:\nli r3, 1\nend:\nhalt", 3) == 1
        assert final_reg(
            "li r1, 5\nli r2, 2\nli r3, 0\nbge r1, r2, yes\njmp end\n"
            "yes:\nli r3, 1\nend:\nhalt", 3) == 1

    def test_loop_executes_n_times(self):
        src = """
            li r1, 0
            li r2, 10
            li r3, 0
        loop:
            addi r3, r3, 2
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """
        assert final_reg(src, 3) == 20

    def test_call_writes_return_address(self):
        trace = run("call fn\nhalt\nfn:\nret")
        call = trace[0]
        assert call.taken and call.result == 1 and call.next_pc == 2

    def test_call_ret_roundtrip(self):
        src = """
            li r1, 1
            call fn
            addi r1, r1, 10
            halt
        fn:
            addi r1, r1, 100
            ret
        """
        assert final_reg(src, 1) == 111

    def test_jr_dispatch(self):
        src = """
            li r1, 4
            jr r1
            halt
            halt
            li r2, 5
            halt
        """
        assert final_reg(src, 2) == 5

    def test_jmp_records_taken(self):
        trace = run("jmp end\nend:\nhalt")
        assert trace[0].taken and trace[0].is_taken_control


class TestSimulatorMechanics:
    def test_halt_stops_and_flags(self):
        trace = run("li r1, 1\nhalt\nli r1, 2\nhalt")
        assert trace.halted
        assert len(trace) == 2

    def test_budget_stops_without_halt(self):
        trace = run("loop:\njmp loop", max_instructions=50)
        assert len(trace) == 50
        assert not trace.halted

    def test_seq_numbers_are_sequential(self):
        trace = run("li r1, 1\nli r2, 2\nhalt")
        assert [r.seq for r in trace] == [0, 1, 2]

    def test_sp_initialised(self):
        sim = FunctionalSimulator(assemble("halt"))
        assert sim.regs[29] == DEFAULT_SP

    def test_initial_memory_attached_to_trace(self):
        trace = run(".data arr 2 3 4\nhalt")
        assert 3 in trace.initial_memory.values()

    def test_initial_memory_not_mutated_by_stores(self):
        src = ".data arr 1 5\nli r1, &arr\nli r2, 9\nst r2, 0(r1)\nhalt"
        program = assemble(src)
        trace = run_program(program)
        base = program[0].imm if hasattr(program[0], "imm") else None
        assert 5 in trace.initial_memory.values()
        assert 9 not in trace.initial_memory.values()


class TestHelpers:
    def test_to_signed(self):
        assert to_signed((1 << 64) - 1) == -1
        assert to_signed(5) == 5

    def test_to_unsigned(self):
        assert to_unsigned(-1) == (1 << 64) - 1
