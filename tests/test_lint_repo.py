"""The repo lints itself: end-to-end runs of the LintEngine and CLI.

These are the dogfood tests the CI ``lint-invariants`` job mirrors: the
checked-in tree must be clean (modulo the justified baseline), and the
drift gate must fire on a semantic edit to a payload-affecting module
while staying quiet on a formatting-only edit.
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.lint import LINT_RULES, LintEngine
from repro.lint.report import REPORT_SCHEMA
from repro.schemas import (
    CODE_SCHEMA_VERSION,
    SCHEMA_REGISTRY,
    is_registered,
    owning_module,
    parse_schema_string,
    registered_markers,
    schema_string,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_repo_lints_clean():
    report = LintEngine(REPO_ROOT).run()
    assert report.ok(), "\n" + report.to_text()


def test_baseline_entries_all_used_and_justified():
    report = LintEngine(REPO_ROOT).run()
    assert not any(f.rule in ("LINT030", "LINT031")
                   for f in report.findings), "\n" + report.to_text()
    assert report.suppressed, "expected justified baseline suppressions"


def test_every_lint_rule_documented():
    with open(os.path.join(REPO_ROOT, "docs", "lint.md")) as handle:
        doc = handle.read()
    missing = [rule for rule in LINT_RULES if rule not in doc]
    assert not missing, f"rules missing from docs/lint.md: {missing}"


def test_json_report_shape():
    report = LintEngine(REPO_ROOT).run().to_dict()
    assert report["schema"] == REPORT_SCHEMA
    assert report["code_schema_version"] == CODE_SCHEMA_VERSION
    assert report["counts"]["error"] == 0
    assert report["files_checked"] > 50


# -- schema registry (repro.schemas / taskkey re-export) -------------------

def test_registry_markers_roundtrip():
    for marker in registered_markers():
        name, version = parse_schema_string(marker)
        assert schema_string(name, version) == marker
        assert is_registered(marker)
        assert owning_module(marker).startswith("repro.")


def test_unregistered_schema_raises():
    with pytest.raises(KeyError):
        schema_string("repro.nonexistent", 1)
    assert not is_registered("repro.nonexistent/1")


def test_taskkey_reexports_registry():
    from repro.parallel import taskkey

    assert taskkey.SCHEMA_REGISTRY is SCHEMA_REGISTRY
    assert taskkey.CODE_SCHEMA_VERSION == CODE_SCHEMA_VERSION


def test_artifact_schemas_come_from_registry():
    from repro.parallel.cache import POINT_SCHEMA
    from repro.parallel.sweep import SWEEP_SCHEMA
    from repro.perf.harness import SCHEMA as PERF_SCHEMA
    from repro.telemetry.report import BENCH_SCHEMA, SCHEMA as REPORT

    assert REPORT == schema_string("repro.telemetry", 1)
    assert BENCH_SCHEMA == schema_string("repro.bench", 1)
    assert POINT_SCHEMA == schema_string("repro.sweep.point", 1)
    assert SWEEP_SCHEMA == schema_string("repro.sweep", 1)
    assert PERF_SCHEMA == schema_string("repro.perf", 1)


# -- drift-gate canary over a copied tree ----------------------------------

@pytest.fixture()
def repo_copy(tmp_path):
    """A minimal copy of the checkout the gate can be run against."""
    root = tmp_path / "repo"
    shutil.copytree(os.path.join(REPO_ROOT, "src"), root / "src")
    (root / "docs").mkdir()
    for name in os.listdir(os.path.join(REPO_ROOT, "docs")):
        if name.endswith(".md"):
            shutil.copy(os.path.join(REPO_ROOT, "docs", name),
                        root / "docs" / name)
    shutil.copy(os.path.join(REPO_ROOT, "README.md"), root / "README.md")
    shutil.copy(os.path.join(REPO_ROOT, "lint-baseline.json"),
                root / "lint-baseline.json")
    shutil.copy(os.path.join(REPO_ROOT, "lint-fingerprints.json"),
                root / "lint-fingerprints.json")
    return root


def test_canary_semantic_edit_trips_gate(repo_copy):
    assert LintEngine(str(repo_copy)).run().ok()
    worker = repo_copy / "src" / "repro" / "parallel" / "worker.py"
    worker.write_text(worker.read_text()
                      + "\n\nCANARY_SENTINEL = 0xDEAD\n")
    report = LintEngine(str(repo_copy)).run()
    assert not report.ok()
    drift = [f for f in report.findings if f.rule == "LINT022"]
    assert [f.path for f in drift] == ["repro/parallel/worker.py"]


def test_canary_comment_edit_passes_gate(repo_copy):
    worker = repo_copy / "src" / "repro" / "parallel" / "worker.py"
    worker.write_text(worker.read_text()
                      + "\n# canary: formatting-only edit\n")
    assert LintEngine(str(repo_copy)).run().ok()


def test_canary_version_bump_plus_refresh_passes(repo_copy):
    worker = repo_copy / "src" / "repro" / "parallel" / "worker.py"
    worker.write_text(worker.read_text() + "\n\nCANARY = 1\n")
    engine = LintEngine(str(repo_copy))
    assert not engine.run().ok()
    engine.update_manifest()
    assert engine.run().ok()


# -- CLI surface -----------------------------------------------------------

def _run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)


def test_cli_json_clean_run():
    proc = _run_cli("--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["schema"] == REPORT_SCHEMA
    assert payload["counts"]["error"] == 0


def test_cli_rules_listing():
    proc = _run_cli("--rules")
    assert proc.returncode == 0
    for rule in LINT_RULES:
        assert rule in proc.stdout


def test_cli_select_filters_rules():
    proc = _run_cli("--select", "LINT022", "--format", "json")
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["findings"] == []
    assert payload["suppressed"] == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
