"""The HTTP front end, exercised over real sockets.

A :class:`~repro.serve.http.ServeHTTP` instance runs on a
kernel-assigned port (``port=0``) inside a thread-hosted asyncio loop;
the tests speak plain ``http.client``.  What matters here is the
*wire* behaviour — status codes, error shapes, the NDJSON stream —
not the service semantics (those are pinned socket-free in
``test_serve.py``).
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.serve import MemoryResultStore, ServiceConfig, SweepService
from repro.serve.http import MAX_BODY, ServeHTTP

SMALL = {"benchmarks": ["comp"], "instructions": 2000}


class ServerFixture:
    """ServeHTTP on port 0 in a background asyncio loop."""

    def __init__(self, tmp_path):
        self.service = SweepService(
            str(tmp_path / "queue"), MemoryResultStore(),
            ServiceConfig(jobs=1, heartbeat=0.2))
        self.http = ServeHTTP(self.service, port=0)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self.loop.run_forever,
                                        daemon=True)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.http.start(), self.loop).result(timeout=10)

    @property
    def port(self):
        return self.http.port

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.http.stop(), self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()

    def request(self, method, path, body=None, headers=None, raw_body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=30)
        try:
            payload = raw_body if raw_body is not None else (
                json.dumps(body).encode() if body is not None else None)
            conn.request(method, path, body=payload,
                         headers=dict(headers or {}))
            response = conn.getresponse()
            data = response.read()
            return response.status, (json.loads(data) if data else None)
        finally:
            conn.close()

    def wait_settled(self, job_id, timeout=60.0):
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, payload = self.request("GET", f"/v1/sweeps/{job_id}")
            assert status == 200
            if payload["state"] != "running":
                return payload
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never settled")


@pytest.fixture()
def server(tmp_path):
    fixture = ServerFixture(tmp_path)
    yield fixture
    fixture.close()


def test_health_and_stats(server):
    assert server.request("GET", "/v1/healthz") == (200, {"ok": True})
    status, stats = server.request("GET", "/v1/stats")
    assert status == 200
    assert set(stats) >= {"store", "queue", "scheduled_jobs", "shards_run"}


def test_submit_poll_result_roundtrip(server):
    status, receipt = server.request("POST", "/v1/sweeps", body=SMALL,
                                     headers={"X-Tenant": "alice"})
    assert status == 202 and receipt["created"]
    job = receipt["job"]

    settled = server.wait_settled(job)
    assert settled["state"] == "done"
    assert settled["tenant"] == "alice"

    status, report = server.request("GET", f"/v1/sweeps/{job}/result")
    assert status == 200
    assert report["schema"] == "repro.sweep/1"
    assert len(report["points"]) == settled["total_tasks"]
    assert report["context"]["source"] == "repro.serve"

    # Content-addressed point lookup for every key the status lists.
    for key in settled["tasks"]:
        status, point = server.request("GET", f"/v1/tasks/{key}")
        assert status == 200 and point["task_key"] == key

    # Resubmission attaches (200, not 202) and reports the settled state.
    status, again = server.request("POST", "/v1/sweeps", body=dict(SMALL))
    assert status == 200 and not again["created"]
    assert again["job"] == job and again["state"] == "done"


def test_events_stream_ends_with_job_done(server):
    _, receipt = server.request("POST", "/v1/sweeps", body=SMALL)
    job = receipt["job"]
    conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                      timeout=60)
    try:
        conn.request("GET", f"/v1/sweeps/{job}/events")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        events = [json.loads(line) for line in response.read().splitlines()]
    finally:
        conn.close()
    names = [e["ev"] for e in events]
    assert names[-1] == "job_done"           # terminal event, then EOF
    real = [e for e in events if e["ev"] != "stream_heartbeat"]
    seqs = [e["seq"] for e in real]
    assert seqs == sorted(seqs)
    # A non-integer ?since= is a structured 400, not a broken stream.
    status, _ = server.request("GET", f"/v1/sweeps/{job}/events?since=abc")
    assert status == 400


def test_error_statuses(server):
    # Invalid JSON body.
    status, payload = server.request(
        "POST", "/v1/sweeps", raw_body=b"{not json",
        headers={"Content-Length": "9"})
    assert status == 400 and payload["error"]["code"] == "invalid_json"
    # Validation failure carries the offending field.
    status, payload = server.request("POST", "/v1/sweeps",
                                     body={"benchmarks": ["nope"]})
    assert status == 400
    assert payload["error"]["code"] == "invalid_request"
    assert payload["error"]["field"] == "benchmarks"
    # Unknown routes and ids.
    assert server.request("GET", "/v1/sweeps/nope")[0] == 404
    assert server.request("GET", "/v1/sweeps/nope/result")[0] == 404
    assert server.request("GET", "/v1/sweeps/nope/events")[0] == 404
    assert server.request("GET", "/v1/tasks/" + "0" * 64)[0] == 404
    assert server.request("GET", "/nope")[0] == 404
    assert server.request("DELETE", "/v1/sweeps")[0] == 404
    # Rejections left the queue untouched.
    _, stats = server.request("GET", "/v1/stats")
    assert stats["queue"]["jobs"] == 0


def test_oversized_body_is_413(server):
    status, payload = server.request(
        "POST", "/v1/sweeps", raw_body=b"x",
        headers={"Content-Length": str(MAX_BODY + 1)})
    assert status == 413
    assert payload["error"]["code"] == "body_too_large"


def test_result_while_running_is_409(tmp_path):
    """Submit against a server whose dispatcher thread is stopped, so the
    job genuinely stays running for the 409 check."""
    fixture = ServerFixture(tmp_path)
    try:
        fixture.service.stop()               # freeze the dispatcher
        _, receipt = fixture.request("POST", "/v1/sweeps", body=SMALL)
        job = receipt["job"]
        status, payload = fixture.request("GET", f"/v1/sweeps/{job}/result")
        assert status == 409
        assert payload["error"]["code"] == "not_settled"
    finally:
        fixture.close()
