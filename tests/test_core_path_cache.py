"""Tests for the Path Cache (paper §4.1, §4.2.1)."""

import pytest

from repro.core.path import PathKey
from repro.core.path_cache import PathCache, PathCacheConfig


def key(i):
    return PathKey(term_pc=i, branches=(i + 1, i + 2))


def small_cache(**overrides):
    defaults = dict(entries=16, assoc=4, training_interval=4,
                    difficulty_threshold=0.10)
    defaults.update(overrides)
    return PathCache(PathCacheConfig(**defaults))


def train(cache, k, path_id, outcomes):
    """Feed a sequence of (mispredicted) outcomes; return last event."""
    event = None
    for mispredicted in outcomes:
        event = cache.update(k, path_id, mispredicted)
    return event


class TestAllocationPolicy:
    def test_allocate_on_mispredict_only(self):
        cache = small_cache()
        assert cache.update(key(1), 1, mispredicted=False) is None
        assert len(cache) == 0
        assert cache.stats.allocations_avoided == 1
        cache.update(key(1), 1, mispredicted=True)
        assert len(cache) == 1

    def test_allocate_always_when_disabled(self):
        cache = small_cache(allocate_on_mispredict_only=False)
        cache.update(key(1), 1, mispredicted=False)
        assert len(cache) == 1

    def test_avoid_rate_tracks_paper_claim(self):
        """Correctly predicted paths dominate, so most allocations are
        avoided (the paper reports ~45% for an 8K-entry cache)."""
        cache = small_cache()
        for i in range(100):
            cache.update(key(i), i, mispredicted=(i % 4 == 0))
        assert cache.stats.allocation_avoid_rate > 0.5


class TestTrainingInterval:
    def test_difficult_bit_set_after_interval(self):
        cache = small_cache(training_interval=4)
        # 3 of 4 mispredicted: rate 0.75 > T
        train(cache, key(1), 1, [True, True, True, False])
        assert cache.is_difficult(key(1), 1)

    def test_easy_path_not_difficult(self):
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True, False, False, False])
        entry = cache.lookup(key(1), 1)
        # 1/4 = 0.25 > 0.10 -> still difficult at this threshold
        assert entry.difficult
        cache2 = small_cache(training_interval=4, difficulty_threshold=0.30)
        train(cache2, key(1), 1, [True, False, False, False])
        assert not cache2.is_difficult(key(1), 1)

    def test_counters_reset_after_interval(self):
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True, True, True, True])
        entry = cache.lookup(key(1), 1)
        assert entry.occurrences == 0 and entry.mispredicts == 0

    def test_difficult_bit_clears_on_easy_interval(self):
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        assert cache.is_difficult(key(1), 1)
        train(cache, key(1), 1, [False] * 4)
        assert not cache.is_difficult(key(1), 1)


class TestPromotionLogic:
    def test_promotion_event_on_difficult_transition(self):
        cache = small_cache(training_interval=4)
        event = train(cache, key(1), 1, [True] * 4)
        assert event is not None and event.promote

    def test_promotion_repeats_until_marked(self):
        """If the builder cannot satisfy the request, the Promoted bit
        stays clear and the next update re-requests (paper §4.2.1)."""
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        event = cache.update(key(1), 1, True)
        assert event is not None and event.promote

    def test_no_event_once_promoted(self):
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        cache.mark_promoted(key(1), 1, True)
        assert cache.update(key(1), 1, True) is None

    def test_demotion_event_when_difficult_falls(self):
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        cache.mark_promoted(key(1), 1, True)
        event = train(cache, key(1), 1, [False] * 4)
        assert event is not None and not event.promote

    def test_promotion_stats(self):
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        cache.mark_promoted(key(1), 1, True)
        cache.mark_promoted(key(1), 1, False)
        assert cache.stats.promotions == 1
        assert cache.stats.demotions == 1

    def test_remark_promoted_counts_once(self):
        """Re-marking an already-promoted entry is not a new promotion
        (regression: the counter used to increment on every call)."""
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        cache.mark_promoted(key(1), 1, True)
        cache.mark_promoted(key(1), 1, True)
        assert cache.stats.promotions == 1
        assert cache.stats.demotions == 0

    def test_clear_never_promoted_is_not_a_demotion(self):
        """Clearing an entry that was never promoted (the MicroRAM
        eviction path calls mark_promoted(False) unconditionally) must
        not count a spurious demotion."""
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        cache.mark_promoted(key(1), 1, False)
        assert cache.stats.promotions == 0
        assert cache.stats.demotions == 0

    def test_counters_track_transitions_over_sequence(self):
        cache = small_cache(training_interval=4)
        train(cache, key(1), 1, [True] * 4)
        for promoted in (True, True, False, False, True):
            cache.mark_promoted(key(1), 1, promoted)
        assert cache.stats.promotions == 2
        assert cache.stats.demotions == 1

    def test_mark_promoted_missing_entry_is_noop(self):
        cache = small_cache()
        cache.mark_promoted(key(9), 9, True)
        cache.mark_promoted(key(9), 9, False)
        assert cache.stats.promotions == 0
        assert cache.stats.demotions == 0


class TestReplacement:
    def test_difficulty_aware_lru_prefers_easy_victims(self):
        cache = small_cache(entries=8, assoc=2, training_interval=2)
        # Two keys in the same set (path_id selects the set).
        difficult = key(1)
        train(cache, difficult, 0, [True, True])   # difficult
        easy = key(2)
        # allocated via a mispredict, then two clean intervals clear it
        train(cache, easy, 0, [True, False, False, False])
        train(cache, easy, 0, [False])             # easy is now MRU
        # New allocation in the same set must evict 'easy' (not difficult),
        # even though 'difficult' is LRU.
        cache.update(key(3), 0, mispredicted=True)
        assert cache.lookup(difficult, 0) is not None
        assert cache.lookup(easy, 0) is None

    def test_plain_lru_when_disabled(self):
        cache = small_cache(entries=8, assoc=2, training_interval=2,
                            difficulty_aware_lru=False)
        difficult = key(1)
        train(cache, difficult, 0, [True, True])
        easy = key(2)
        train(cache, easy, 0, [True])
        cache.update(key(3), 0, mispredicted=True)
        # difficult was LRU -> evicted under plain LRU
        assert cache.lookup(difficult, 0) is None

    def test_eviction_stats(self):
        cache = small_cache(entries=8, assoc=2)
        for i in range(5):
            cache.update(key(i), 0, mispredicted=True)
        assert cache.stats.evictions == 3

    def test_allocated_and_hit_entries_share_stamp_sequence(self):
        """An allocation and a hit in the same update position receive
        the same stamp value: both take the per-update stamp from the
        single assignment in ``update`` (regression: ``_allocate`` used
        to stamp at construction and then be overwritten)."""
        cache = small_cache()
        cache.update(key(1), 0, mispredicted=True)    # update 1: allocate
        cache.update(key(2), 0, mispredicted=True)    # update 2: allocate
        cache.update(key(1), 0, mispredicted=False)   # update 3: hit
        assert cache.lookup(key(2), 0).lru_stamp == 2
        assert cache.lookup(key(1), 0).lru_stamp == 3
        # a fresh allocation continues the same sequence
        cache.update(key(3), 0, mispredicted=True)    # update 4: allocate
        assert cache.lookup(key(3), 0).lru_stamp == 4


class TestConfigValidation:
    def test_entries_divisible_by_assoc(self):
        with pytest.raises(ValueError):
            PathCacheConfig(entries=10, assoc=4)

    def test_sets_power_of_two(self):
        with pytest.raises(ValueError):
            PathCacheConfig(entries=24, assoc=4)

    def test_threshold_range(self):
        with pytest.raises(ValueError):
            PathCacheConfig(difficulty_threshold=1.5)

    def test_training_interval_positive(self):
        with pytest.raises(ValueError):
            PathCacheConfig(training_interval=0)


class TestQueries:
    def test_difficult_count(self):
        cache = small_cache(training_interval=2)
        train(cache, key(1), 1, [True, True])
        train(cache, key(2), 2, [True, False, False, False])
        assert cache.difficult_count() == 1

    def test_lookup_miss_returns_none(self):
        assert small_cache().lookup(key(9), 9) is None
