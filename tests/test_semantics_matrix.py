"""Cross-checks: functional-simulator semantics vs microthread node
evaluation must agree for every ALU form (the microthread pre-computes
exactly what the primary thread will compute)."""


import pytest

from repro.core.microthread import Microthread, MicroOp, topological_order
from repro.core.path import PathKey
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.sim.functional import FunctionalSimulator

REG_REG_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
               "slt", "sltu", "mul"]
REG_IMM_OPS = ["addi", "andi", "ori", "xori", "slli", "srli", "slti"]

CASES = [
    (3, 5), (0, 0), (-1, 1), (1 << 40, 3), (123456789, 987654321),
    (-7, -9), ((1 << 63) - 1, 1),
]


def simulate_reg_reg(op, a, b):
    source = f"li r1, {a}\nli r2, {b}\n{op} r3, r1, r2\nhalt"
    sim = FunctionalSimulator(assemble(source))
    sim.run()
    return sim.regs[3]


def simulate_reg_imm(op, a, imm):
    source = f"li r1, {a}\n{op} r3, r1, {imm}\nhalt"
    sim = FunctionalSimulator(assemble(source))
    sim.run()
    return sim.regs[3]


def microthread_eval(node):
    """Evaluate a single-op graph through Microthread.execute."""
    zero = MicroOp("const", imm=-1, order=98)
    root = MicroOp("branch", op=Opcode.BNE, inputs=[node, zero], order=99)
    thread = Microthread(
        key=PathKey(0, ()), path_id=0, root=root,
        nodes=topological_order(root), live_in_regs=(), spawn_pc=0,
        separation=1, term_pc=0, term_taken_target=0, prefix=(),
        expected_suffix=(),
    )
    values = {}
    # reuse the interpreter directly: execute and capture via closure
    computed = {}
    original = thread._eval_op

    def capture(n, vals):
        result = original(n, vals)
        computed[n.uid] = result
        return result

    thread._eval_op = capture
    thread.execute({}, lambda ea: 0, lambda p, a: None, lambda p, a: None)
    return computed[node.uid]


class TestRegRegAgreement:
    @pytest.mark.parametrize("op", REG_REG_OPS)
    @pytest.mark.parametrize("a,b", CASES)
    def test_simulator_matches_node_eval(self, op, a, b):
        if op in ("sll", "srl", "sra"):
            b = abs(b) % 64  # shift amounts
        expected = simulate_reg_reg(op, a, b)
        node = MicroOp("op", op=Opcode[op.upper()],
                       inputs=[MicroOp("const", imm=a, order=0),
                               MicroOp("const", imm=b, order=1)],
                       order=2)
        assert microthread_eval(node) == expected


class TestRegImmAgreement:
    @pytest.mark.parametrize("op", REG_IMM_OPS)
    @pytest.mark.parametrize("a,_b", CASES)
    def test_simulator_matches_node_eval(self, op, a, _b):
        imm = 13 if op not in ("slli", "srli") else 5
        expected = simulate_reg_imm(op, a, imm)
        node = MicroOp("op", op=Opcode[op.upper()], imm=imm,
                       inputs=[MicroOp("const", imm=a, order=0)],
                       order=1)
        assert microthread_eval(node) == expected


class TestConstantPropagationAgreement:
    @pytest.mark.parametrize("op", REG_REG_OPS)
    def test_folding_matches_simulator(self, op):
        """mcb constant propagation must fold to the simulator's value."""
        from repro.core import mcb

        a, b = 1234567, 89
        expected = simulate_reg_reg(op, a, b)
        node = MicroOp("op", op=Opcode[op.upper()],
                       inputs=[MicroOp("const", imm=a, order=0),
                               MicroOp("const", imm=b, order=1)],
                       order=2)
        guard = MicroOp("const", imm=-1, order=3)
        root = MicroOp("branch", op=Opcode.BNE, inputs=[node, guard],
                       order=4)
        root, folded = mcb.constant_propagation(root)
        assert folded == 1
        assert root.inputs[0].imm == expected
