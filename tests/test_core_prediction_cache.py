"""Tests for the Prediction Cache (paper §4.3.3)."""

import pytest

from repro.core.prediction_cache import PredictionCache, PredictionCacheEntry


def entry(taken=True, target=0, arrival=10, writer=None):
    return PredictionCacheEntry(taken, target, arrival, writer)


class TestBasicOperation:
    def test_write_then_lookup(self):
        cache = PredictionCache(capacity=8)
        cache.write(100, 50, entry(taken=True, arrival=7), current_seq=40)
        found = cache.lookup(100, 50)
        assert found is not None and found.taken and found.arrival_cycle == 7

    def test_lookup_requires_both_keys(self):
        """(Path_Id, Seq_Num) jointly identify the instance."""
        cache = PredictionCache(capacity=8)
        cache.write(100, 50, entry(), current_seq=40)
        assert cache.lookup(100, 51) is None
        assert cache.lookup(101, 50) is None

    def test_miss_stats(self):
        cache = PredictionCache(capacity=8)
        cache.lookup(1, 1)
        cache.write(1, 1, entry(), current_seq=0)
        cache.lookup(1, 1)
        assert cache.stats.misses == 1 and cache.stats.hits == 1


class TestStaleReclaim:
    def test_stale_entries_deallocated_first(self):
        cache = PredictionCache(capacity=2)
        cache.write(1, 10, entry(), current_seq=5)
        cache.write(2, 20, entry(), current_seq=15)
        # cache full; seq 10 < current front-end seq 30 -> stale
        cache.write(3, 40, entry(), current_seq=30)
        assert cache.stats.stale_deallocations >= 1
        assert cache.lookup(3, 40) is not None
        assert cache.lookup(2, 20) is None or cache.lookup(1, 10) is None

    def test_live_eviction_when_no_stale(self):
        cache = PredictionCache(capacity=2)
        cache.write(1, 100, entry(), current_seq=5)
        cache.write(2, 200, entry(), current_seq=5)
        cache.write(3, 150, entry(), current_seq=5)  # all live; evict farthest
        assert cache.stats.live_evictions == 1
        assert cache.lookup(2, 200) is None  # farthest target evicted
        assert cache.lookup(3, 150) is not None

    def test_overwrite_same_key_no_eviction(self):
        cache = PredictionCache(capacity=1)
        cache.write(1, 10, entry(taken=True), current_seq=0)
        cache.write(1, 10, entry(taken=False), current_seq=0)
        assert cache.stats.live_evictions == 0
        assert cache.lookup(1, 10).taken is False


class TestInvalidation:
    def test_invalidate_by_writer(self):
        cache = PredictionCache(capacity=8)
        writer = object()
        cache.write(1, 10, entry(writer=writer), current_seq=0)
        cache.write(2, 20, entry(writer=object()), current_seq=0)
        cache.invalidate_writer(writer)
        assert cache.lookup(1, 10) is None
        assert cache.lookup(2, 20) is not None
        assert cache.stats.invalidations == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PredictionCache(capacity=0)


class TestInvalidResidency:
    """Regression tests for the invalid-entry residency bug: invalidated
    entries used to stay resident until capacity-pressure reclaim
    happened to pick them, wasting slots and (on a lookup touch) not
    being cleaned up at all."""

    def test_lookup_deallocates_invalid_entry(self):
        cache = PredictionCache(capacity=8)
        writer = object()
        cache.write(1, 10, entry(writer=writer), current_seq=0)
        cache.invalidate_writer(writer)
        assert len(cache) == 1  # invalid but still resident
        assert cache.lookup(1, 10) is None
        assert len(cache) == 0  # freed on touch
        assert cache.stats.misses == 1
        assert cache.stats.invalid_deallocations == 1
        # A second lookup is a plain miss — no double-count.
        assert cache.lookup(1, 10) is None
        assert cache.stats.invalid_deallocations == 1
        assert cache.stats.misses == 2

    def test_reclaim_prefers_invalid_over_stale(self):
        cache = PredictionCache(capacity=2)
        writer = object()
        cache.write(1, 10, entry(writer=writer), current_seq=5)   # -> invalid
        cache.write(2, 20, entry(), current_seq=5)                # -> stale
        cache.invalidate_writer(writer)
        # Full; front-end at 30 makes (2, 20) stale, but the invalid
        # entry is the cheaper victim and must go alone.
        cache.write(3, 40, entry(), current_seq=30)
        assert cache.stats.invalid_deallocations == 1
        assert cache.stats.stale_deallocations == 0
        assert cache.lookup(2, 20) is not None  # the stale entry survived
        assert cache.lookup(3, 40) is not None

    def test_invalid_deallocations_never_exceed_invalidations(self):
        cache = PredictionCache(capacity=4)
        writers = [object() for _ in range(4)]
        for i, w in enumerate(writers):
            cache.write(i, 10 * (i + 1), entry(writer=w), current_seq=0)
        for w in writers[:3]:
            cache.invalidate_writer(w)
        cache.lookup(0, 10)            # touch-deallocates one
        cache.write(8, 80, entry(), current_seq=0)  # refill to capacity
        cache.write(9, 90, entry(), current_seq=0)  # reclaim frees the rest
        stats = cache.stats
        assert stats.invalidations == 3
        assert stats.invalid_deallocations == 3
        assert stats.invalid_deallocations <= stats.invalidations
        assert cache.lookup(3, 40) is not None  # valid entry untouched
