"""Tests for direction predictors: counters, gshare, PAs, hybrid."""

import pytest

from repro.branch.base import (
    AlwaysTakenPredictor,
    OraclePredictor,
    SaturatingCounterTable,
)
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.pas import PAsPredictor


def train(predictor, pc, outcomes):
    """Train on a sequence; return mispredict count."""
    mispredicts = 0
    for taken in outcomes:
        if predictor.predict(pc) != taken:
            mispredicts += 1
        predictor.update(pc, taken)
    return mispredicts


class TestSaturatingCounterTable:
    def test_starts_weakly_taken(self):
        table = SaturatingCounterTable(16)
        assert table.predict(0)
        assert table.counter(0) == 2

    def test_saturates_high(self):
        table = SaturatingCounterTable(16)
        for _ in range(10):
            table.update(3, True)
        assert table.counter(3) == 3

    def test_saturates_low(self):
        table = SaturatingCounterTable(16)
        for _ in range(10):
            table.update(3, False)
        assert table.counter(3) == 0

    def test_hysteresis(self):
        table = SaturatingCounterTable(16)
        for _ in range(4):
            table.update(0, True)
        table.update(0, False)  # one not-taken does not flip a strong counter
        assert table.predict(0)

    def test_index_wraps(self):
        table = SaturatingCounterTable(16)
        table.update(16, False)  # aliases slot 0
        assert table.counter(0) == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(10)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(16, bits=0)


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(entries=64)
        assert train(predictor, 5, [True] * 100) <= 2
        assert train(predictor, 9, [False] * 100) <= 3

    def test_alternating_is_hard(self):
        predictor = BimodalPredictor(entries=64)
        outcomes = [bool(i % 2) for i in range(200)]
        # Bimodal cannot learn alternation; it hovers near 50% wrong.
        assert train(predictor, 5, outcomes) > 50


class TestGshare:
    def test_learns_global_correlation(self):
        predictor = GsharePredictor(entries=1 << 14, history_bits=8)
        mispredicts = 0
        for i in range(2000):
            first = (i % 4) < 2
            predictor.update(100, first)
            second = first  # perfectly correlated with the previous branch
            if predictor.predict(200) != second:
                mispredicts += 1
            predictor.update(200, second)
        assert mispredicts < 100  # learned after warm-up

    def test_history_updates(self):
        predictor = GsharePredictor(entries=256, history_bits=4)
        predictor.update(0, True)
        assert predictor.history == 1
        predictor.update(0, False)
        assert predictor.history == 2

    def test_history_bounded(self):
        predictor = GsharePredictor(entries=256, history_bits=4)
        for _ in range(100):
            predictor.update(0, True)
        assert predictor.history == 0xF


class TestPAs:
    def test_learns_short_period(self):
        predictor = PAsPredictor()
        outcomes = [i % 4 < 2 for i in range(1000)]  # TTNN pattern
        assert train(predictor, 77, outcomes) < 60

    def test_learns_alternation(self):
        predictor = PAsPredictor()
        outcomes = [bool(i % 2) for i in range(500)]
        assert train(predictor, 42, outcomes) < 40

    def test_long_runs_have_transition_floor(self):
        """History shorter than the run length leaves ~2 misses/period."""
        predictor = PAsPredictor(history_bits=12)
        outcomes = [(i % 64) < 32 for i in range(6400)]
        mispredicts = train(predictor, 9, outcomes)
        floor = 2 * (6400 // 64)  # two transitions per period
        assert mispredicts <= floor + 120  # floor plus warm-up slack

    def test_separate_branches_do_not_share_history(self):
        predictor = PAsPredictor()
        train(predictor, 1, [True] * 200)
        train(predictor, 2, [False] * 200)
        assert predictor.predict(1) is True
        assert predictor.predict(2) is False


class TestHybrid:
    def test_beats_components_on_mixed_workload(self):
        """The selector should route each branch to its better component."""
        hybrid = HybridPredictor()
        mispredicts = 0
        for i in range(3000):
            local = (i % 4) < 2  # PAs-friendly pattern
            if hybrid.predict(10) != local:
                mispredicts += 1
            hybrid.update(10, local)
        assert mispredicts < 200

    def test_tracks_component_usage(self):
        hybrid = HybridPredictor()
        for i in range(100):
            hybrid.predict(5)
            hybrid.update(5, True)
        assert hybrid.used_gshare_count + hybrid.used_pas_count == 100


class TestDegeneratePredictors:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0)
        predictor.update(0, False)
        assert predictor.predict(0)

    def test_oracle_follows_priming(self):
        predictor = OraclePredictor()
        predictor.prime(True)
        assert predictor.predict(0)
        predictor.prime(False)
        assert not predictor.predict(0)
