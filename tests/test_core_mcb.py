"""Tests for MCB optimizations: move elimination, constant propagation,
pruning (paper §4.2.3, §4.2.5)."""

from repro.core import mcb
from repro.core.microthread import MicroOp, topological_order
from repro.isa.instructions import Opcode


def sizes(root):
    return sum(1 for n in topological_order(root) if n.is_instruction)


class TestMoveElimination:
    def test_mov_forwarded(self):
        live = MicroOp("livein", reg=1, order=0)
        mov = MicroOp("op", op=Opcode.MOV, inputs=[live], order=1)
        k = MicroOp("const", imm=5, order=2)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[mov, k], order=3)
        root, eliminated = mcb.move_elimination(root)
        assert eliminated == 1
        assert root.inputs[0] is live

    def test_mov_chain_fully_collapsed(self):
        live = MicroOp("livein", reg=1, order=0)
        m1 = MicroOp("op", op=Opcode.MOV, inputs=[live], order=1)
        m2 = MicroOp("op", op=Opcode.MOV, inputs=[m1], order=2)
        m3 = MicroOp("op", op=Opcode.MOV, inputs=[m2], order=3)
        k = MicroOp("const", imm=5, order=4)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[m3, k], order=5)
        root, eliminated = mcb.move_elimination(root)
        assert eliminated == 3
        assert root.inputs[0] is live

    def test_non_mov_untouched(self):
        live = MicroOp("livein", reg=1, order=0)
        addi = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[live], order=1)
        k = MicroOp("const", imm=5, order=2)
        root = MicroOp("branch", op=Opcode.BLT, inputs=[addi, k], order=3)
        root, eliminated = mcb.move_elimination(root)
        assert eliminated == 0
        assert root.inputs[0] is addi


class TestConstantPropagation:
    def test_addi_of_const_folds(self):
        c = MicroOp("const", imm=10, order=0)
        addi = MicroOp("op", op=Opcode.ADDI, imm=5, inputs=[c], order=1)
        k = MicroOp("const", imm=15, order=2)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[addi, k], order=3)
        root, folded = mcb.constant_propagation(root)
        assert folded == 1
        assert root.inputs[0].kind == "const"
        assert root.inputs[0].imm == 15

    def test_chain_folds_transitively(self):
        c = MicroOp("const", imm=1, order=0)
        a1 = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[c], order=1)
        a2 = MicroOp("op", op=Opcode.SLLI, imm=2, inputs=[a1], order=2)
        k = MicroOp("const", imm=8, order=3)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[a2, k], order=4)
        root, folded = mcb.constant_propagation(root)
        assert folded == 2
        assert root.inputs[0].imm == 8  # (1+1) << 2

    def test_two_const_alu_folds(self):
        a = MicroOp("const", imm=6, order=0)
        b = MicroOp("const", imm=7, order=1)
        mul = MicroOp("op", op=Opcode.MUL, inputs=[a, b], order=2)
        k = MicroOp("const", imm=42, order=3)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[mul, k], order=4)
        root, folded = mcb.constant_propagation(root)
        assert folded == 1
        assert root.inputs[0].imm == 42

    def test_live_in_blocks_folding(self):
        live = MicroOp("livein", reg=1, order=0)
        addi = MicroOp("op", op=Opcode.ADDI, imm=5, inputs=[live], order=1)
        k = MicroOp("const", imm=15, order=2)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[addi, k], order=3)
        root, folded = mcb.constant_propagation(root)
        assert folded == 0

    def test_folding_shrinks_routine(self):
        c = MicroOp("const", imm=1, order=0)
        a1 = MicroOp("op", op=Opcode.ADDI, imm=1, inputs=[c], order=1)
        k = MicroOp("const", imm=2, order=2)
        root = MicroOp("branch", op=Opcode.BEQ, inputs=[a1, k], order=3)
        before = sizes(root)
        root, _ = mcb.constant_propagation(root)
        assert sizes(root) < before


class TestPruning:
    def _chain(self):
        """livein -> mul -> andi -> load -> branch vs const."""
        live = MicroOp("livein", reg=1, order=10)
        mul = MicroOp("op", op=Opcode.MUL, pc=1, inputs=[live, MicroOp("const", imm=3, order=11)], order=12)
        andi = MicroOp("op", op=Opcode.ANDI, pc=2, imm=63, inputs=[mul], order=13)
        base = MicroOp("const", imm=0x100, pc=3, order=14)
        addr = MicroOp("op", op=Opcode.ADD, pc=4, inputs=[base, andi], order=15)
        load = MicroOp("load", op=Opcode.LD, pc=5, imm=0, inputs=[addr], order=16)
        k = MicroOp("const", imm=50, order=17)
        root = MicroOp("branch", op=Opcode.BLT, pc=6, inputs=[load, k], order=18)
        return root

    def test_value_pruning_replaces_subtree(self):
        root = self._chain()
        before = sizes(root)
        # The address computation (order 15) is value-confident.
        root, vp, ap = mcb.prune(
            root,
            value_confident=lambda n: n.order == 15,
            address_confident=lambda n: False,
        )
        assert vp == 1 and ap == 0
        assert sizes(root) < before
        kinds = {n.kind for n in topological_order(root)}
        assert "vp" in kinds
        # the mul/andi subtree is no longer reachable
        assert not any(n.op == Opcode.MUL for n in topological_order(root)
                       if n.kind == "op")

    def test_address_pruning_keeps_load(self):
        root = self._chain()
        root, vp, ap = mcb.prune(
            root,
            value_confident=lambda n: False,
            address_confident=lambda n: n.kind == "load",
        )
        assert ap == 1 and vp == 0
        nodes = topological_order(root)
        load = next(n for n in nodes if n.kind == "load")
        assert load.inputs[0].kind == "ap"

    def test_no_confidence_no_pruning(self):
        root = self._chain()
        before = sizes(root)
        root, vp, ap = mcb.prune(root, lambda n: False, lambda n: False)
        assert vp == ap == 0
        assert sizes(root) == before

    def test_pruning_reduces_live_ins(self):
        root = self._chain()
        root, _, _ = mcb.prune(
            root,
            value_confident=lambda n: n.order == 15,
            address_confident=lambda n: False,
        )
        liveins = [n for n in topological_order(root) if n.kind == "livein"]
        assert not liveins  # the loop-counter live-in disappeared

    def test_branch_never_pruned(self):
        root = self._chain()
        root, vp, ap = mcb.prune(root, lambda n: True, lambda n: True)
        assert root.kind == "branch"
