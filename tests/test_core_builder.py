"""Tests for the Microthread Builder: extraction, termination conditions,
spawn selection, memory-dependence handling (paper §4.2)."""

import pytest

from repro.core.builder import BuilderConfig, MicrothreadBuilder
from repro.core.path import PathTracker
from repro.core.prb import PostRetirementBuffer
from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.valuepred import PredictorTrainer

DATA_LOOP = """
.data arr 16 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50
    li r1, 0
    li r2, 60
loop:
    andi r3, r1, 15
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    jmp h1
h1:
    addi r9, r9, 1
    jmp h2
h2:
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


class Harness:
    """Replays a trace through tracker/PRB/trainer and builds on demand."""

    def __init__(self, source, n=4, config=None, max_instructions=3000):
        self.trace = run_program(assemble(source),
                                 max_instructions=max_instructions)
        self.tracker = PathTracker(n)
        self.prb = PostRetirementBuffer(512)
        self.trainer = PredictorTrainer()
        self.builder = MicrothreadBuilder(config or BuilderConfig())
        self.reg_values_at = {}

    def build_at_instance(self, branch_pc, instance, now_cycle=0):
        """Replay and build at the given dynamic instance of branch_pc."""
        count = 0
        regs = [0] * 32
        regs[29] = 0xF000
        for idx, rec in enumerate(self.trace):
            flags = self.trainer.observe(rec)
            self.prb.insert(rec, idx, *flags)
            event = self.tracker.observe(rec, idx)
            dest = rec.inst.dest_reg()
            if dest is not None:
                regs[dest] = rec.result
            if rec.pc == branch_pc and rec.is_path_terminating:
                count += 1
                if count == instance:
                    thread = self.builder.request(event, self.prb, now_cycle)
                    return thread, event, idx, list(regs)
        raise AssertionError("instance not reached")

    def branch_pc(self, tag_opcode="BLT", nth=0):
        seen = []
        for inst_pc, inst in enumerate(
                assemble(DATA_LOOP).instructions):
            pass
        raise NotImplementedError


def next_same_path_instance(trace, thread, after_idx, n=4):
    """Trace index of the next dynamic instance of the thread's branch
    that occurs on the thread's own path (separation is only constant
    per-path; at runtime the (Path_Id, Seq_Num) match and the abort
    mechanism provide this filtering)."""
    tracker = PathTracker(n)
    candidate = None
    for i, rec in enumerate(trace):
        event = tracker.observe(rec, i)
        if (event is not None and i > after_idx and candidate is None
                and event.key == thread.key):
            candidate = i
    if candidate is None:
        raise AssertionError("no later same-path instance")
    return candidate


def data_branch_pc():
    """PC of the 'blt r6, r7' branch in DATA_LOOP."""
    program = assemble(DATA_LOOP)
    for inst in program.instructions:
        if inst.opcode.name == "BLT" and inst.rs1 == 6:
            return inst.pc
    raise AssertionError("branch not found")


class TestExtraction:
    def test_build_succeeds_on_data_branch(self):
        harness = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=False))
        thread, event, idx, _ = harness.build_at_instance(data_branch_pc(), 20)
        assert thread is not None
        assert thread.term_pc == data_branch_pc()
        assert thread.routine_size >= 4  # li, add, ld, li, store_pcache...

    def test_extracted_graph_contains_load(self):
        harness = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=False))
        thread, _, _, _ = harness.build_at_instance(data_branch_pc(), 20)
        kinds = [n.kind for n in thread.nodes]
        assert "load" in kinds and "branch" in kinds

    def test_separation_positive_and_spawn_in_scope(self):
        harness = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=False))
        thread, event, idx, _ = harness.build_at_instance(data_branch_pc(), 20)
        assert 0 < thread.separation <= event.scope_size
        spawn_idx = idx - thread.separation
        assert harness.trace[spawn_idx].pc == thread.spawn_pc

    def test_expected_suffix_matches_trace(self):
        harness = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=False))
        thread, _, idx, _ = harness.build_at_instance(data_branch_pc(), 20)
        spawn_idx = idx - thread.separation
        actual = tuple(
            rec.pc for rec in harness.trace[spawn_idx:idx]
            if rec.is_taken_control
        )
        assert thread.expected_suffix == actual

    def test_prediction_matches_actual_outcome(self):
        """Execute the built microthread with live-ins as of its spawn
        point in a later dynamic instance; prediction must match."""
        harness = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=False))
        thread, _, built_idx, _ = harness.build_at_instance(data_branch_pc(), 20)

        # find the next same-path instance of the branch
        trace = harness.trace
        next_idx = next_same_path_instance(trace, thread, built_idx)
        spawn_idx = next_idx - thread.separation
        assert trace[spawn_idx].pc == thread.spawn_pc

        # architectural registers just before the spawn instruction
        regs = [0] * 32
        memory = dict(trace.initial_memory)
        for rec in trace[:spawn_idx]:
            dest = rec.inst.dest_reg()
            if dest is not None:
                regs[dest] = rec.result
            if rec.inst.is_store:
                memory[rec.ea] = rec.result

        prediction = thread.execute(
            {r: regs[r] for r in thread.live_in_regs},
            memory.get,
            lambda pc, ahead: None,
            lambda pc, ahead: None,
        )
        assert prediction.taken == trace[next_idx].taken

    def test_busy_builder_refuses(self):
        config = BuilderConfig(build_latency=1000)
        harness = Harness(DATA_LOOP, n=4, config=config)
        thread, event, _, _ = harness.build_at_instance(data_branch_pc(), 20)
        assert thread is not None
        # immediate second request while busy
        second = harness.builder.request(event, harness.prb, now_cycle=5)
        assert second is None
        assert harness.builder.stats.refused_busy == 1

    def test_available_after_build_latency(self):
        config = BuilderConfig(build_latency=100)
        harness = Harness(DATA_LOOP, n=4, config=config)
        thread, _, _, _ = harness.build_at_instance(data_branch_pc(), 20,
                                                    now_cycle=500)
        assert thread.available_cycle == 600


class TestMCBCapacity:
    def test_tiny_capacity_creates_live_ins(self):
        config = BuilderConfig(mcb_capacity=3, pruning=False,
                               constant_propagation=False,
                               move_elimination=False)
        harness = Harness(DATA_LOOP, n=4, config=config)
        thread, _, _, _ = harness.build_at_instance(data_branch_pc(), 20)
        assert thread is not None
        assert thread.routine_size <= 3
        assert len(thread.live_in_regs) >= 1


MEMDEP_LOOP = """
.data arr 16 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50
    li r1, 0
    li r2, 60
loop:
    andi r3, r1, 15
    li r4, &arr
    add r5, r4, r3
    andi r9, r1, 63
    st r9, 0(r5)
    ld r6, 0(r5)
    jmp h1
h1:
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


class TestMemoryDependence:
    def test_spawn_constrained_after_store(self):
        """The store feeding the load is in scope: the data-flow tree
        stops at it and the spawn point falls after it (paper §4.2.4)."""
        harness = Harness(MEMDEP_LOOP, n=4, config=BuilderConfig(pruning=False))
        pc = next(i.pc for i in assemble(MEMDEP_LOOP).instructions
                  if i.opcode.name == "BLT" and i.rs1 == 6)
        thread, _, idx, _ = harness.build_at_instance(pc, 20)
        assert thread is not None
        spawn_idx = idx - thread.separation
        # the store must be before the spawn point
        store_idx = max(i for i in range(spawn_idx - 10, idx)
                        if harness.trace[i].inst.is_store and i < idx)
        assert store_idx < spawn_idx
        # no store node extracted
        assert all(n.kind != "op" or n.op.name != "ST" for n in thread.nodes)

    def test_speculative_flag_without_store(self):
        harness = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=False))
        thread, _, _, _ = harness.build_at_instance(data_branch_pc(), 20)
        assert thread.memdep_speculative  # load with no in-scope store


class TestPruningIntegration:
    def test_pruning_shrinks_or_equals_routine(self):
        no_prune = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=False))
        t1, _, _, _ = no_prune.build_at_instance(data_branch_pc(), 30)
        pruned = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=True))
        t2, _, _, _ = pruned.build_at_instance(data_branch_pc(), 30)
        assert t2.longest_chain <= t1.longest_chain

    def test_pruned_thread_predicts_correctly_with_predictors(self):
        harness = Harness(DATA_LOOP, n=4, config=BuilderConfig(pruning=True))
        thread, _, built_idx, _ = harness.build_at_instance(data_branch_pc(), 30)
        trace = harness.trace
        next_idx = next_same_path_instance(trace, thread, built_idx)
        spawn_idx = next_idx - thread.separation

        regs = [0] * 32
        memory = dict(trace.initial_memory)
        for rec in trace[:spawn_idx]:
            dest = rec.inst.dest_reg()
            if dest is not None:
                regs[dest] = rec.result
            if rec.inst.is_store:
                memory[rec.ea] = rec.result
        # retrain predictors up to the spawn point, as the engine would
        trainer = PredictorTrainer()
        for rec in trace[:spawn_idx]:
            trainer.observe(rec)

        prediction = thread.execute(
            {r: regs[r] for r in thread.live_in_regs},
            memory.get,
            trainer.value_predictor.predict,
            trainer.address_predictor.predict,
        )
        assert prediction.taken == trace[next_idx].taken


class TestBuilderStats:
    def test_stats_accumulate(self):
        harness = Harness(DATA_LOOP, n=4)
        harness.build_at_instance(data_branch_pc(), 20)
        stats = harness.builder.stats
        assert stats.requests == 1
        assert stats.built == 1
        assert stats.mean_routine_size > 0
        assert stats.mean_chain_length > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BuilderConfig(mcb_capacity=0)
        with pytest.raises(ValueError):
            BuilderConfig(build_latency=-1)
