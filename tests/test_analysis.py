"""Tests for the analysis package: events, Table 1, Table 2, report."""

import pytest

from repro.analysis.characterize import characterize_paths
from repro.analysis.coverage import coverage_analysis
from repro.analysis.events import ControlEvent, collect_control_events
from repro.analysis.report import format_table
from repro.isa.assembler import assemble
from repro.sim.functional import run_program

PATHDEP_PROGRAM = """
.data sel 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 3000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &sel
    add r5, r4, r3
    ld r6, 0(r5)
    li r7, 75
    blt r6, r7, easy_side
    ; hard side: value is another pseudo-random load
    mul r9, r6, r14
    srli r9, r9, 3
    andi r9, r9, 63
    add r10, r4, r9
    ld r20, 0(r10)
    jmp join
easy_side:
    li r20, 10
join:
    li r11, 50
    blt r20, r11, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


@pytest.fixture(scope="module")
def events():
    trace = run_program(assemble(PATHDEP_PROGRAM), max_instructions=60_000)
    return collect_control_events(trace)


class TestControlEvents:
    def test_only_controls_collected(self, events):
        assert all(isinstance(e, ControlEvent) for e in events)
        assert len(events) > 0

    def test_warmup_flagging(self, events):
        assert not events[0].measured
        assert events[-1].measured

    def test_terminating_subset(self, events):
        terminating = [e for e in events if e.terminating]
        assert 0 < len(terminating) < len(events)

    def test_mispredictions_exist(self, events):
        assert any(e.mispredicted for e in events if e.measured)


class TestCharacterize:
    def test_paths_grow_with_n(self, events):
        counts = [characterize_paths(events, n).unique_paths
                  for n in (2, 4, 8)]
        assert counts[0] <= counts[1] <= counts[2]

    def test_scope_grows_with_n(self, events):
        scopes = [characterize_paths(events, n).mean_scope for n in (2, 4, 8)]
        assert scopes[0] < scopes[2]

    def test_difficult_counts_decrease_with_threshold(self, events):
        c = characterize_paths(events, 4, thresholds=(0.05, 0.10, 0.15))
        assert (c.difficult_paths[0.05] >= c.difficult_paths[0.10]
                >= c.difficult_paths[0.15])

    def test_difficult_fraction_bounded(self, events):
        c = characterize_paths(events, 4)
        for t in (0.05, 0.10, 0.15):
            assert 0.0 <= c.difficult_fraction(t) <= 1.0

    def test_occurrences_counted(self, events):
        c = characterize_paths(events, 4)
        assert c.total_occurrences > 0


class TestCoverage:
    def test_schemes_present(self, events):
        results = coverage_analysis(events, ns=(4,), thresholds=(0.10,))
        schemes = {r.scheme for r in results}
        assert schemes == {"branch", "path(4)"}

    def test_coverages_bounded(self, events):
        for r in coverage_analysis(events, ns=(2, 4), thresholds=(0.05, 0.15)):
            assert 0.0 <= r.mispredict_coverage <= 1.0
            assert 0.0 <= r.execution_coverage <= 1.0

    def test_paths_cut_execution_coverage(self, events):
        """The paper's key Table 2 claim: path classification lowers
        execution coverage versus branch classification.  The PATHDEP
        program makes the terminating branch easy on one path and hard
        on the other, so the branch-level set must include executions
        the path-level set excludes."""
        results = coverage_analysis(events, ns=(8,), thresholds=(0.10,))
        branch = next(r for r in results if r.scheme == "branch")
        path = next(r for r in results if r.scheme == "path(8)")
        assert path.execution_coverage <= branch.execution_coverage

    def test_higher_threshold_smaller_difficult_set(self, events):
        results = coverage_analysis(events, ns=(4,),
                                    thresholds=(0.05, 0.15))
        branch_low = next(r for r in results
                          if r.scheme == "branch" and r.threshold == 0.05)
        branch_high = next(r for r in results
                           if r.scheme == "branch" and r.threshold == 0.15)
        assert branch_high.difficult_count <= branch_low.difficult_count


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["long-name", 22.25]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[3:])

    def test_format_table_floats(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text
