"""Unit tests for GenContext code-generation helpers."""

import random

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.sim.functional import run_program
from repro.workloads.generator import (
    GenContext,
    PERSISTENT_REGS,
    R_ITER,
    SCRATCH_FIRST,
    SCRATCH_LAST,
)
from repro.workloads.spec import SiteKind, SiteSpec, WorkloadSpec


def make_context():
    builder = ProgramBuilder(name="ctx-test")
    spec = WorkloadSpec(name="ctx-test")
    return GenContext(builder, random.Random(1), spec), builder


class TestScratchAllocation:
    def test_sequential_allocation(self):
        ctx, _ = make_context()
        assert ctx.scratch() == SCRATCH_FIRST
        assert ctx.scratch() == SCRATCH_FIRST + 1

    def test_reset(self):
        ctx, _ = make_context()
        ctx.scratch()
        ctx.reset_scratch()
        assert ctx.scratch() == SCRATCH_FIRST

    def test_exhaustion_raises(self):
        ctx, _ = make_context()
        for _ in range(SCRATCH_LAST - SCRATCH_FIRST + 1):
            ctx.scratch()
        with pytest.raises(RuntimeError, match="scratch"):
            ctx.scratch()


class TestPersistentValues:
    def test_publish_rotates_registers(self):
        ctx, _ = make_context()
        source = ctx.scratch()
        destinations = []
        for _ in range(len(PERSISTENT_REGS) + 1):
            ctx.publish_value(source, 50)
            destinations.append(ctx.persistent[-1][0])
        assert destinations[0] == destinations[len(PERSISTENT_REGS)]
        assert len(set(destinations[:len(PERSISTENT_REGS)])) \
            == len(PERSISTENT_REGS)

    def test_pick_published_returns_latest(self):
        ctx, _ = make_context()
        source = ctx.scratch()
        ctx.publish_value(source, 10)
        ctx.publish_value(source, 20)
        _, threshold = ctx.pick_published()
        assert threshold == 20

    def test_pick_published_empty(self):
        ctx, _ = make_context()
        assert ctx.pick_published() is None


class TestEmittedFragments:
    def _run(self, builder, iterations=40):
        builder.emit(Opcode.HALT)
        program = builder.build()
        return run_program(program, max_instructions=5_000)

    def test_emit_index_computes_masked_affine(self):
        ctx, builder = make_context()
        builder.li(R_ITER, 21)
        ctx.begin_site()
        site = SiteSpec(kind=SiteKind.DATA, index=0, stride=3, phase=5,
                        array_size=64)
        idx_reg = ctx.emit_index(site)
        builder.emit(Opcode.HALT)
        program = builder.build()
        from repro.sim.functional import FunctionalSimulator

        sim = FunctionalSimulator(program)
        sim.run()
        assert sim.regs[idx_reg] == (21 * 3 + 5) & 63

    def test_emit_load_reads_allocated_array(self):
        ctx, builder = make_context()
        builder.li(R_ITER, 0)
        ctx.begin_site()
        base = ctx.alloc_value_array(16)
        idx = ctx.scratch()
        builder.li(idx, 3)
        value_reg = ctx.emit_load(base, idx)
        builder.emit(Opcode.HALT)
        program = builder.build()
        from repro.sim.functional import FunctionalSimulator

        sim = FunctionalSimulator(program)
        sim.run()
        assert sim.regs[value_reg] == program.data.load(base + 3)

    def test_alloc_value_array_respects_entropy(self):
        ctx, _ = make_context()
        ctx.spec.data_entropy = 0.2  # heavy skew toward small values
        base = ctx.alloc_value_array(256)
        values = [ctx.builder._data.load(base + i) for i in range(256)]
        assert sum(1 for v in values if v < 20) > 180

    def test_emit_hops_produces_taken_jumps(self):
        ctx, builder = make_context()
        builder.li(R_ITER, 0)
        ctx.begin_site()
        site = SiteSpec(kind=SiteKind.DATA, index=0, hops=3, filler=2,
                        noise_prob=0.0)
        ctx.emit_hops(site)
        trace = self._run(builder)
        jumps = [r for r in trace if r.opcode == Opcode.JMP]
        assert len(jumps) == 3
        assert all(r.taken for r in jumps)

    def test_emit_consumer_branches_on_threshold(self):
        ctx, builder = make_context()
        builder.li(R_ITER, 0)
        ctx.begin_site()
        value = ctx.scratch()
        builder.li(value, 10)
        ctx.emit_consumer(value, 50, tag="test0")
        trace = self._run(builder)
        branch = next(r for r in trace if r.is_conditional_branch)
        assert branch.taken  # 10 < 50
        assert branch.inst.tag == "test0"

    def test_filler_balances_load_fraction(self):
        ctx, builder = make_context()
        builder.li(R_ITER, 0)
        ctx.begin_site()
        ctx.emit_filler(64)
        trace = self._run(builder)
        loads = sum(1 for r in trace if r.is_load)
        assert 8 <= loads <= 24  # ~25% of 64
