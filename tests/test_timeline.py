"""Tests for windowed time-series measurement."""

import pytest

from repro.analysis.timeline import ipc_timeline, sparkline, speedup_timeline
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.isa.assembler import assemble
from repro.sim.functional import run_program

SOURCE = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 100000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    li r7, 50
    blt r6, r7, t
    addi r8, r8, 1
t:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""


@pytest.fixture(scope="module")
def trace():
    return run_program(assemble(SOURCE), max_instructions=60_000)


class TestIPCTimeline:
    def test_window_partitioning(self, trace):
        points = ipc_timeline(trace, window=10_000)
        assert len(points) == 6
        assert points[0].start_idx == 0
        assert points[0].end_idx == 9_999
        assert all(p.instructions == 10_000 for p in points)

    def test_windows_contiguous(self, trace):
        points = ipc_timeline(trace, window=10_000)
        for a, b in zip(points, points[1:]):
            assert b.start_idx == a.end_idx + 1

    def test_total_cycles_consistent(self, trace):
        from repro.analysis.experiments import baseline_run

        points = ipc_timeline(trace, window=10_000)
        full = baseline_run(trace)
        assert abs(sum(p.cycles for p in points) - full.cycles) < 50

    def test_ipc_positive(self, trace):
        for p in ipc_timeline(trace, window=20_000):
            assert 0.1 < p.ipc < 16.0


class TestSpeedupTimeline:
    def test_series_shape_and_benefit(self, trace):
        config = SSMTConfig(n=4, training_interval=8, build_latency=20)
        series = speedup_timeline(
            trace, lambda: SSMTEngine(config, trace.initial_memory),
            window=10_000)
        assert len(series) == 6
        assert [idx for idx, _ in series] == [9_999 + 10_000 * i
                                              for i in range(6)]
        # the mechanism helps overall and no window degenerates
        assert max(s for _, s in series) > 1.05
        assert all(s > 0.8 for _, s in series)

    def test_overhead_only_never_gains_beyond_prefetch(self, trace):
        """With predictions unused, a tight per-iteration-spawning loop
        pays heavy fetch/issue contention: every window is a slowdown
        (bounded below — the machine still makes forward progress)."""
        config = SSMTConfig(n=4, training_interval=8, build_latency=20,
                            use_predictions=False, pruning=False)
        series = speedup_timeline(
            trace, lambda: SSMTEngine(config, trace.initial_memory),
            window=20_000)
        assert all(0.4 < s <= 1.1 for _, s in series)

    def test_listener_factory_called_fresh(self, trace):
        created = []

        def factory():
            engine = SSMTEngine(SSMTConfig(n=4, training_interval=8),
                                trace.initial_memory)
            created.append(engine)
            return engine

        speedup_timeline(trace, factory, window=30_000)
        assert len(created) == 1


class TestSparkline:
    def test_length_matches_values(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_extremes_map_to_extreme_glyphs(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds_clamp(self):
        line = sparkline([0.0, 10.0], lo=2.0, hi=4.0)
        assert line[0] == "▁" and line[1] == "█"
