"""Tests for the Trace container and DynamicInstruction record."""


from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.sim.functional import run_program
from repro.sim.trace import DynamicInstruction, Trace


def sample_trace():
    return run_program(assemble("""
        li r1, 0
        li r2, 5
    loop:
        addi r1, r1, 1
        blt r1, r2, loop
        call fn
        halt
    fn:
        ret
    """), max_instructions=100)


class TestDynamicInstruction:
    def test_properties_delegate_to_static(self):
        inst = Instruction(Opcode.BLT, rs1=1, rs2=2, target=0, pc=7)
        rec = DynamicInstruction(3, inst, taken=True, next_pc=0)
        assert rec.pc == 7
        assert rec.opcode == Opcode.BLT
        assert rec.is_conditional_branch
        assert rec.is_path_terminating
        assert rec.is_taken_control

    def test_not_taken_control_flag(self):
        inst = Instruction(Opcode.BEQ, rs1=1, rs2=2, target=0, pc=7)
        rec = DynamicInstruction(3, inst, taken=False, next_pc=8)
        assert rec.is_control and not rec.is_taken_control

    def test_memory_flags(self):
        load = DynamicInstruction(0, Instruction(Opcode.LD, rd=1, rs1=2))
        store = DynamicInstruction(0, Instruction(Opcode.ST, rs1=2, rs2=1))
        assert load.is_load and not load.is_store
        assert store.is_store and not store.is_load


class TestTraceContainer:
    def test_len_and_indexing(self):
        trace = sample_trace()
        assert len(trace) > 0
        assert trace[0].seq == 0
        assert trace[len(trace) - 1].seq == len(trace) - 1

    def test_iteration_order(self):
        trace = sample_trace()
        seqs = [r.seq for r in trace]
        assert seqs == list(range(len(trace)))

    def test_conditional_branches_generator(self):
        trace = sample_trace()
        conds = list(trace.conditional_branches())
        assert all(r.is_conditional_branch for r in conds)
        assert len(conds) == 5  # the loop backedge executes 5 times? 4+...
        # exact count: blt taken 4 times, final not taken -> 5 instances

    def test_branch_count_counts_terminating(self):
        trace = sample_trace()
        # conditional blt instances + ret (indirect) instances
        conds = sum(1 for r in trace if r.is_conditional_branch)
        rets = sum(1 for r in trace if r.inst.is_return)
        assert trace.branch_count() == conds + rets

    def test_control_count_superset(self):
        trace = sample_trace()
        assert trace.control_count() >= trace.branch_count()

    def test_halted_flag(self):
        trace = sample_trace()
        assert trace.halted

    def test_initial_memory_default_empty(self):
        trace = Trace([], name="empty")
        assert trace.initial_memory == {}
        assert len(trace) == 0
