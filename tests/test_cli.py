"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "comp"])
        assert args.benchmark == "comp"
        assert args.n == 10
        assert args.threshold == 0.10
        assert not args.profile_guided

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig7"])
        assert args.which == "fig7"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_suite_lists_benchmarks(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "mcf_2k" in out

    def test_run_prints_comparison(self, capsys):
        assert main(["run", "comp", "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "dynamic SSMT" in out
        assert "speed-up" in out

    def test_run_profile_guided(self, capsys):
        assert main(["run", "comp", "--instructions", "20000",
                     "--profile-guided"]) == 0
        assert "profile-guided SSMT" in capsys.readouterr().out

    def test_profile_outputs_tables(self, capsys):
        assert main(["profile", "comp", "--instructions", "20000",
                     "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_experiment_intro_subset(self, capsys):
        assert main(["experiment", "intro", "--instructions", "20000",
                     "--benchmarks", "comp"]) == 0
        assert "headroom" in capsys.readouterr().out

    def test_experiment_fig7_subset(self, capsys):
        assert main(["experiment", "fig7", "--instructions", "20000",
                     "--benchmarks", "comp"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "mean gain" in out

    def test_disasm_head(self, capsys):
        assert main(["disasm", "comp", "--head", "5"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "more lines" in out

    def test_unknown_benchmark_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])


class TestVerifyCommand:
    def test_verify_defaults(self):
        from repro.verify.runner import DEFAULT_VERIFY_LENGTH

        args = build_parser().parse_args(["verify"])
        assert args.instructions == DEFAULT_VERIFY_LENGTH
        assert args.benchmarks == []
        assert not args.sanitize

    def test_rules_listing(self, capsys):
        assert main(["verify", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "MT001" in out and "SAN001" in out
        assert "use-before-def" in out

    def test_verify_clean_benchmark_exits_zero(self, capsys):
        assert main(["verify", "comp", "--instructions", "20000",
                     "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "routines verified, 0 errors" in out
        assert "ok" in out and "FAIL" not in out

    def test_verify_unknown_benchmark_exits(self):
        with pytest.raises(SystemExit):
            main(["verify", "nonsense"])

    def test_verify_failure_exits_nonzero(self, capsys, monkeypatch):
        from repro.verify.diagnostics import Severity, VerifyReport
        from repro.verify.runner import WorkloadVerifyResult

        report = VerifyReport(subject="path_id=0xbad term_pc=7")
        report.emit("MT002", Severity.ERROR, "dead micro-op seeded")

        def fake_suite(benchmarks, **kwargs):
            return (WorkloadVerifyResult(
                benchmark="comp", routines_built=3,
                error_reports=[report], error_count=1, warning_count=0),)

        monkeypatch.setattr("repro.cli.verify_suite", fake_suite)
        assert main(["verify", "comp"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "MT002" in out and "dead micro-op seeded" in out

    def test_run_sanitize_clean(self, capsys):
        assert main(["run", "comp", "--instructions", "20000",
                     "--sanitize"]) == 0
        assert "invariants held" in capsys.readouterr().out

    def test_run_sanitize_rejects_profile_guided(self):
        with pytest.raises(SystemExit):
            main(["run", "comp", "--instructions", "20000",
                  "--sanitize", "--profile-guided"])
