"""Tests for the profile-guided (compile-time) variant and the dynamic
engine's extension knobs (throttling, repeated-violation rebuilds)."""

import pytest

from repro.analysis.experiments import baseline_run
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.core.static import (
    prebuild_microthreads,
    profile_difficult_paths,
    run_profile_guided,
)
from repro.isa.assembler import assemble
from repro.sim.functional import run_program

DATA_LOOP = """
.data arr 64 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50 73 8 66 95 17 38 55 81 26 62 44 70 11 88 35 58 2 92 20 65 16 79 40 6 97 31 59 13 86 28 52 74 9 67 94 18 39 56 80 27 63 45 71 10 89 36 53 24
    li r1, 0
    li r2, 4000
loop:
    li r14, 2654435761
    mul r3, r1, r14
    srli r3, r3, 5
    andi r3, r3, 63
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    jmp h1
h1:
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""

STORE_INTERFERENCE = DATA_LOOP.replace(
    "    ld r6, 0(r5)\n",
    """    andi r10, r1, 7
    li r11, 3
    bne r10, r11, nostore
    andi r12, r1, 63
    st r12, 0(r5)
nostore:
    ld r6, 0(r5)
""")


@pytest.fixture(scope="module")
def data_trace():
    return run_program(assemble(DATA_LOOP), max_instructions=40_000)


def small_config(**overrides):
    defaults = dict(n=4, training_interval=8, build_latency=20)
    defaults.update(overrides)
    return SSMTConfig(**defaults)


class TestProfiling:
    def test_difficult_paths_found(self, data_trace):
        paths = profile_difficult_paths(data_trace, n=4, threshold=0.10)
        assert paths
        assert all(p.mispredict_rate > 0.10 for p in paths)

    def test_sorted_by_damage(self, data_trace):
        paths = profile_difficult_paths(data_trace, n=4)
        damages = [p.mispredicts for p in paths]
        assert damages == sorted(damages, reverse=True)

    def test_min_occurrences_filter(self, data_trace):
        paths = profile_difficult_paths(data_trace, n=4, min_occurrences=50)
        assert all(p.occurrences >= 50 for p in paths)

    def test_easy_program_yields_nothing(self):
        trace = run_program(assemble("""
            li r1, 0
            li r2, 3000
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """), max_instructions=12_000)
        assert profile_difficult_paths(trace, n=4) == []


class TestPrebuild:
    def test_routines_built_for_profiled_paths(self, data_trace):
        paths = profile_difficult_paths(data_trace, n=4)
        threads = prebuild_microthreads(data_trace, paths, small_config())
        assert threads
        built_keys = {t.key for t in threads}
        assert built_keys <= {p.key for p in paths}

    def test_static_image_available_immediately(self, data_trace):
        paths = profile_difficult_paths(data_trace, n=4)
        threads = prebuild_microthreads(data_trace, paths, small_config())
        assert all(t.available_cycle == 0 for t in threads)


class TestStaticEngine:
    def test_profile_guided_beats_baseline(self, data_trace):
        base = baseline_run(data_trace)
        result, engine = run_profile_guided(data_trace, small_config())
        assert engine.spawner.stats.spawned > 0
        assert result.ipc > base.ipc

    def test_no_ramp_beats_dynamic_on_short_traces(self, data_trace):
        """With no Path Cache warm-up or build latency, the static image
        covers the whole run — the compile-time advantage."""
        dynamic, _ = run_ssmt(data_trace, small_config())
        static, _ = run_profile_guided(data_trace, small_config())
        assert static.ipc >= dynamic.ipc * 0.98

    def test_max_routines_cap(self, data_trace):
        _, engine = run_profile_guided(data_trace, small_config(),
                                       max_routines=1)
        assert len(engine.microram) <= 1

    def test_violation_drops_routine(self):
        trace = run_program(assemble(STORE_INTERFERENCE),
                            max_instructions=40_000)
        result, engine = run_profile_guided(trace, small_config())
        # stores interfere -> some routine was dropped at least once, or
        # the profile avoided those paths entirely; either way it runs.
        assert result.instructions == len(trace)

    def test_outcome_stash_stays_bounded(self, data_trace):
        """The static engine consumes on_control stashes even though it
        never trains a Path Cache (regression for a leak)."""
        _, engine = run_profile_guided(data_trace, small_config())
        assert len(engine._pending_mispredict) == 0

    def test_cross_input_profiling(self, data_trace):
        """Profile on one trace, run on another (same program)."""
        other = run_program(assemble(DATA_LOOP), max_instructions=20_000)
        result, engine = run_profile_guided(other, small_config(),
                                            profile_trace=data_trace)
        assert result.instructions == len(other)
        assert len(engine.microram) > 0


class TestThrottling:
    def test_throttle_disabled_by_default(self, data_trace):
        _, engine = run_ssmt(data_trace, small_config())
        assert engine.throttled_paths == 0

    def test_throttle_fires_on_unhelpful_paths(self, data_trace):
        """With an aggressive window, paths whose predictions merely agree
        with correct hardware predictions get demoted."""
        config = small_config(throttle_enabled=True, throttle_window=4,
                              throttle_useless_fraction=0.5)
        result, engine = run_ssmt(data_trace, config)
        assert result.instructions == len(data_trace)
        # DATA_LOOP's microthreads are genuinely useful, so with a sane
        # fraction nothing should be throttled...
        lenient = small_config(throttle_enabled=True, throttle_window=16,
                               throttle_useless_fraction=0.99)
        _, engine2 = run_ssmt(data_trace, lenient)
        assert engine2.throttled_paths <= engine.throttled_paths + 5

    def test_throttled_path_not_repromoted(self, data_trace):
        config = small_config(throttle_enabled=True, throttle_window=2,
                              throttle_useless_fraction=0.01)
        _, engine = run_ssmt(data_trace, config)
        # hair-trigger throttle: every consuming path is eventually barred
        if engine.throttled_paths:
            for key in engine._throttled:
                assert engine.microram.get(key) is None


class TestRebuildThreshold:
    def test_threshold_one_rebuilds_immediately(self):
        trace = run_program(assemble(STORE_INTERFERENCE),
                            max_instructions=40_000)
        _, engine = run_ssmt(trace, small_config(
            rebuild_violation_threshold=1))
        if engine.spawner.stats.memdep_violations:
            assert engine.builder.stats.rebuilds > 0

    def test_higher_threshold_rebuilds_less(self):
        trace = run_program(assemble(STORE_INTERFERENCE),
                            max_instructions=40_000)
        eager_result, eager = run_ssmt(trace, small_config(
            rebuild_violation_threshold=1))
        patient_result, patient = run_ssmt(trace, small_config(
            rebuild_violation_threshold=4))
        assert patient_result.ipc > 0
        if eager.builder.stats.rebuilds:
            assert (patient.builder.stats.rebuilds
                    <= eager.builder.stats.rebuilds)
