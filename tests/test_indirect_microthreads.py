"""Microthreads for indirect terminating branches (jump tables).

The paper's mechanism covers indirect branches: ``Store_PCache`` carries
a pre-computed *target* instead of a direction, and the Prediction Cache
match works identically.  These tests build microthreads for the
interpreter kernel's dispatch ``jr`` and check target pre-computation
end to end.
"""

import pytest

from repro.analysis.experiments import baseline_run
from repro.core.builder import BuilderConfig, MicrothreadBuilder
from repro.core.path import PathTracker
from repro.core.prb import PostRetirementBuffer
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.sim.functional import run_program
from repro.valuepred import PredictorTrainer
from repro.workloads.kernels import build_kernel


@pytest.fixture(scope="module")
def interp_trace():
    return run_program(build_kernel("interpreter"), max_instructions=30_000)


def build_for_indirect(trace, instance=40, n=4,
                       config=None):
    """Replay; build at the given dynamic instance of the dispatch jr."""
    tracker = PathTracker(n)
    prb = PostRetirementBuffer(512)
    trainer = PredictorTrainer()
    builder = MicrothreadBuilder(config or BuilderConfig())
    count = 0
    for idx, rec in enumerate(trace):
        flags = trainer.observe(rec)
        prb.insert(rec, idx, *flags)
        event = tracker.observe(rec, idx)
        if rec.inst.is_indirect and not rec.inst.is_return:
            count += 1
            if count == instance:
                return builder.request(event, prb, 0), event, idx, trainer
    raise AssertionError("instance not reached")


class TestIndirectExtraction:
    def test_builds_for_jump_register(self, interp_trace):
        thread, event, idx, _ = build_for_indirect(interp_trace)
        assert thread is not None
        assert thread.root.kind == "branch"
        assert thread.root.op.name == "JR"

    def test_routine_contains_dispatch_dataflow(self, interp_trace):
        thread, _, _, _ = build_for_indirect(
            interp_trace, config=BuilderConfig(pruning=False))
        kinds = [n.kind for n in thread.nodes]
        assert "load" in kinds   # the bytecode load
        assert "branch" in kinds

    def test_predicted_target_matches_actual(self, interp_trace):
        """Execute the routine at a later same-path instance and compare
        the pre-computed target with the trace's actual next_pc."""
        thread, event, built_idx, _ = build_for_indirect(
            interp_trace, config=BuilderConfig(pruning=False))
        trace = interp_trace
        tracker = PathTracker(4)
        target_idx = None
        for i, rec in enumerate(trace):
            ev = tracker.observe(rec, i)
            if (ev is not None and i > built_idx and target_idx is None
                    and ev.key == thread.key):
                target_idx = i
        if target_idx is None:
            pytest.skip("no later same-path instance in this window")
        spawn_idx = target_idx - thread.separation

        regs = [0] * 32
        memory = dict(trace.initial_memory)
        for rec in trace[:spawn_idx]:
            dest = rec.inst.dest_reg()
            if dest is not None:
                regs[dest] = rec.result
            if rec.inst.is_store:
                memory[rec.ea] = rec.result
        prediction = thread.execute(
            {r: regs[r] for r in thread.live_in_regs}, memory.get,
            lambda pc, ahead: None, lambda pc, ahead: None)
        assert prediction.taken
        assert prediction.target == trace[target_idx].next_pc


class TestIndirectUnderSSMT:
    def test_indirect_mispredicts_reduced(self, interp_trace):
        base = baseline_run(interp_trace)
        result, engine = run_ssmt(
            interp_trace, SSMTConfig(n=4, training_interval=8,
                                     build_latency=20))
        assert base.indirect_branches > 500
        # microthreads convert a meaningful share of target mispredicts
        assert result.effective_mispredicts < base.effective_mispredicts

    def test_microthread_targets_accurate(self, interp_trace):
        _, engine = run_ssmt(
            interp_trace, SSMTConfig(n=4, training_interval=8,
                                     build_latency=20))
        ok = engine.correct_microthread_predictions
        bad = engine.incorrect_microthread_predictions
        assert ok > 50
        assert ok / (ok + bad) > 0.9
