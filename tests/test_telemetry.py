"""Tests for the unified telemetry layer.

Covers the metrics registry (instruments, collectors, snapshot
round-trip), log2 histogram bucket boundaries, interval sampling
alignment with trace end, microthread lifecycle span completeness
(including abort and violation paths), and the machine-readable report
plumbing up through the CLI.
"""

import json
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.core.spawn import SpawnManager, SpawnStats
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.telemetry import (
    CAUSE_MEMDEP_VIOLATION,
    CAUSE_PATH_DEVIATION,
    SPAN_STATUSES,
    Histogram,
    IntervalSampler,
    MetricsRegistry,
    RunReport,
    StatsBase,
    TelemetrySession,
    ThreadTracer,
    load_report,
)
from repro.telemetry.sampler import IntervalSample
from repro.workloads import benchmark_trace

#: a benchmark/length pair known to promote paths and spawn microthreads
SPAN_BENCH = "li"
SPAN_LENGTH = 50_000


@pytest.fixture(scope="module")
def span_run():
    """One instrumented run shared by the integration tests."""
    trace = benchmark_trace(SPAN_BENCH, SPAN_LENGTH)
    session = TelemetrySession(sample_every=2000)
    result, engine = run_ssmt(trace, SSMTConfig(), telemetry=session)
    return session, result, engine


# -- registry -----------------------------------------------------------------


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x.count", "help text")
        c.inc()
        c.inc(4)
        assert c.get() == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_direct_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("x.level")
        g.set(3.5)
        assert g.get() == 3.5
        backed = reg.gauge("x.depth", fn=lambda: 7)
        assert backed.get() == 7
        with pytest.raises(ValueError):
            backed.set(1.0)

    def test_factories_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")

    def test_cross_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("metric")
        with pytest.raises(ValueError):
            reg.gauge("metric")
        with pytest.raises(ValueError):
            reg.histogram("metric")

    def test_describe(self):
        reg = MetricsRegistry()
        reg.counter("a", "alpha")
        reg.histogram("b", "beta")
        assert reg.describe() == {"a": "alpha", "b": "beta"}


class TestHistogramBuckets:
    """Log2 bucketing by bit_length: [0], [1], [2-3], [4-7], ..."""

    @pytest.mark.parametrize("value,label", [
        (0, "0"),
        (1, "1"),
        (2, "2-3"),
        (3, "2-3"),
        (4, "4-7"),
        (7, "4-7"),
        (8, "8-15"),
        (1024, "1024-2047"),
    ])
    def test_boundary_lands_in_expected_bucket(self, value, label):
        h = Histogram("h")
        h.observe(value)
        assert h.bucket_counts() == {label: 1}

    def test_power_of_two_opens_new_bucket(self):
        h = Histogram("h")
        for k in range(1, 8):
            h.observe(2 ** k - 1)   # top of bucket k
            h.observe(2 ** k)       # bottom of bucket k+1
        counts = h.bucket_counts()
        for k in range(1, 8):
            hi = (1 << (k + 1)) - 1
            assert counts[f"{1 << k}-{hi}"] >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").observe(-1)

    def test_summary_stats(self):
        h = Histogram("h")
        for v in (0, 1, 2, 5):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 4
        assert d["sum"] == 8
        assert d["mean"] == 2.0
        assert d["max"] == 5


class TestStatsBaseAndSnapshot:
    def test_stats_base_exports_fields_and_properties(self):
        stats = SpawnStats(attempts=10, pre_allocation_aborts=4, spawned=5,
                           aborted_active=1)
        d = stats.as_dict()
        assert d["attempts"] == 10
        assert d["pre_allocation_abort_rate"] == 0.4
        assert d["active_abort_rate"] == 0.2
        assert stats.snapshot() == d

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.register("spawn", SpawnStats(attempts=3, spawned=2))
        reg.counter("c").inc(7)
        reg.gauge("g", fn=lambda: 1.5)
        h = reg.histogram("h")
        h.observe(4)
        snap = reg.snapshot()
        restored = json.loads(json.dumps(snap))
        assert restored == snap
        assert restored["spawn.attempts"] == 3
        assert restored["c"] == 7
        assert restored["g"] == 1.5
        assert restored["h"]["buckets"] == {"4-7": 1}

    def test_collector_without_as_dict_rejected(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("x", object())


# -- tracer -------------------------------------------------------------------


def _fake_instance(term_pc=99, spawn_idx=100, target_seq=110,
                   spawn_cycle=50):
    thread = SimpleNamespace(term_pc=term_pc, path_id=7)
    return SimpleNamespace(thread=thread, spawn_idx=spawn_idx,
                           target_seq=target_seq, spawn_cycle=spawn_cycle,
                           completion_cycle=80, arrival_cycle=75,
                           suffix_progress=2)


class TestThreadTracerUnit:
    def test_completed_span_lifecycle(self):
        tracer = ThreadTracer()
        inst = _fake_instance()
        tracer.on_spawn(inst)
        tracer.on_execute(inst, dispatch_cycle=53)
        tracer.on_outcome(inst, "early", True, target_fetch_cycle=90)
        tracer.on_complete(inst, idx=110, cycle=95)
        (span,) = tracer.spans
        assert span.complete
        assert span.status == "completed"
        assert span.queue_cycles == 3
        assert span.execute_cycles == 75 - 53
        assert span.slack_cycles == 90 - 75
        assert span.outcome == "early" and span.outcome_correct
        assert "completed" in span.format()

    def test_abort_closes_span_with_cause(self):
        tracer = ThreadTracer()
        inst = _fake_instance()
        tracer.on_spawn(inst)
        tracer.on_execute(inst, dispatch_cycle=53)
        tracer.on_abort(inst, CAUSE_PATH_DEVIATION, idx=105, cycle=60)
        (span,) = tracer.spans
        assert span.status == "aborted"
        assert span.abort_cause == CAUSE_PATH_DEVIATION
        assert span.end_idx == 105 and span.end_cycle == 60
        assert not span.complete
        assert tracer.tallies.statuses["aborted"] == 1

    def test_violation_closes_span_as_violated(self):
        tracer = ThreadTracer()
        inst = _fake_instance()
        tracer.on_spawn(inst)
        tracer.on_abort(inst, CAUSE_MEMDEP_VIOLATION, idx=104, cycle=58)
        (span,) = tracer.spans
        assert span.status == "violated"
        assert span.abort_cause == CAUSE_MEMDEP_VIOLATION
        assert tracer.tallies.abort_causes[CAUSE_MEMDEP_VIOLATION] == 1

    def test_finish_marks_live_spans_in_flight(self):
        tracer = ThreadTracer()
        inst = _fake_instance()
        tracer.on_spawn(inst)
        tracer.finish()
        (span,) = tracer.spans
        assert span.status == "in_flight"
        tracer.on_outcome(inst, "early", True, 1)  # no live span: no crash

    def test_term_pc_filter(self):
        tracer = ThreadTracer(term_pc=42)
        tracer.on_spawn(_fake_instance(term_pc=99))
        tracer.on_spawn(_fake_instance(term_pc=42))
        assert len(tracer.spans) == 1
        assert tracer.tallies.spawns == 2  # tallies see everything

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ThreadTracer(max_spans=0)


class TestSpawnManagerTracerWiring:
    def test_manager_drives_tracer_spans(self):
        tracer = ThreadTracer()
        manager = SpawnManager(n_contexts=2, tracer=tracer)
        thread = SimpleNamespace(term_pc=9, path_id=1, prefix=(),
                                 separation=10, expected_suffix=(5,),
                                 available_cycle=0)
        inst = manager.attempt_spawn(thread, 100, 0, ())
        assert inst is not None
        assert tracer.tallies.spawns == 1
        # deviation at a non-matching taken branch aborts the span
        manager.on_taken_control(pc=999, idx=105, cycle=4)
        (span,) = tracer.spans
        assert span.status == "aborted"
        assert span.abort_cause == CAUSE_PATH_DEVIATION

    def test_retire_past_completes_span(self):
        tracer = ThreadTracer()
        manager = SpawnManager(n_contexts=2, abort_enabled=False,
                               tracer=tracer)
        thread = SimpleNamespace(term_pc=9, path_id=1, prefix=(),
                                 separation=10, expected_suffix=(),
                                 available_cycle=0)
        manager.attempt_spawn(thread, 100, 0, ())
        manager.retire_past(110, cycle=40)
        (span,) = tracer.spans
        assert span.status == "completed"
        assert span.end_idx == 110 and span.end_cycle == 40


# -- interval sampler ---------------------------------------------------------


class _Empty:
    """A sized stub: len() == 0, with the attributes the sampler reads."""

    capacity = 8

    def __init__(self, **attrs):
        self.__dict__.update(attrs)

    def __len__(self):
        return 0

    def difficult_count(self):
        return 0


class _StubEngine:
    """Just enough engine surface for the sampler's row read."""

    def __init__(self):
        self.prediction_cache = _Empty(
            stats=SimpleNamespace(hits=0, misses=0))
        self.path_cache = _Empty()
        self.spawner = SimpleNamespace(active=[])
        self.microram = _Empty()

    def live_timing_result(self):
        return None


class TestIntervalSamplerUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalSampler(every=0)
        with pytest.raises(ValueError):
            IntervalSampler(max_samples=0)

    def test_alignment_and_flush(self):
        sampler = IntervalSampler(every=10)
        engine = _StubEngine()
        for i in range(25):
            sampler.on_retire(engine, i, retire_cycle=i * 2)
        assert len(sampler) == 2                  # at 10 and 20
        sampler.flush(engine)                     # trailing 5 instructions
        assert len(sampler) == 3
        last = sampler.samples[-1]
        assert last.final
        assert last.instructions == 25
        assert last.window_instructions == 5

    def test_no_flush_when_aligned(self):
        sampler = IntervalSampler(every=10)
        engine = _StubEngine()
        for i in range(20):
            sampler.on_retire(engine, i, retire_cycle=i)
        sampler.flush(engine)
        assert len(sampler) == 2
        assert not sampler.samples[-1].final

    def test_windows_are_deltas(self):
        sampler = IntervalSampler(every=10)
        engine = _StubEngine()
        for i in range(20):
            sampler.on_retire(engine, i, retire_cycle=(i + 1) * 3)
        first, second = sampler.samples
        assert first.window_instructions == second.window_instructions == 10
        assert first.cycles == 30 and second.cycles == 60
        assert second.window_cycles == 30

    def test_max_samples_drops_and_counts(self):
        sampler = IntervalSampler(every=1, max_samples=3)
        engine = _StubEngine()
        for i in range(10):
            sampler.on_retire(engine, i, retire_cycle=i)
        assert len(sampler) == 3
        assert sampler.dropped == 7

    def test_flush_with_timing_result_uses_its_cycles(self):
        sampler = IntervalSampler(every=10)
        engine = _StubEngine()
        for i in range(15):
            sampler.on_retire(engine, i, retire_cycle=(i + 1) * 2)
        sampler.flush(engine, result=SimpleNamespace(cycles=40))
        last = sampler.samples[-1]
        assert last.final
        assert last.cycles == 40
        assert last.window_cycles == 20       # boundary was at cycle 20
        assert last.ipc == pytest.approx(5 / 20)

    def test_flush_without_timing_marks_cycles_unknown(self):
        """Regression: with no TimingResult the final row used to reuse
        the previous boundary's cycle count, producing window_cycles=0
        and ipc=0.0 — a phantom stall.  Unknown must be None."""
        sampler = IntervalSampler(every=10)
        engine = _StubEngine()                # live_timing_result() -> None
        for i in range(15):
            sampler.on_retire(engine, i, retire_cycle=i + 1)
        sampler.flush(engine)
        last = sampler.samples[-1]
        assert last.final
        assert last.window_instructions == 5
        assert last.cycles is None
        assert last.window_cycles is None
        assert last.ipc is None

    def test_flush_falls_back_to_live_timing_result(self):
        sampler = IntervalSampler(every=10)
        engine = _StubEngine()
        engine.live_timing_result = lambda: SimpleNamespace(
            cycles=33, conditional_branches=0, indirect_branches=0,
            effective_mispredicts=0, hw_mispredicts=0)
        for i in range(12):
            sampler.on_retire(engine, i, retire_cycle=i + 1)
        sampler.flush(engine)
        last = sampler.samples[-1]
        assert last.final
        assert last.cycles == 33
        assert last.window_cycles == 33 - 10

    def test_flush_with_stale_cycles_is_unknown(self):
        """A live result whose cycle count has not advanced past the
        previous boundary cannot describe the final window."""
        sampler = IntervalSampler(every=10)
        engine = _StubEngine()
        for i in range(12):
            sampler.on_retire(engine, i, retire_cycle=i + 1)
        sampler.flush(engine, result=SimpleNamespace(cycles=10))
        last = sampler.samples[-1]
        assert last.final
        assert last.cycles is None and last.ipc is None


# -- integration: session, report, CLI ----------------------------------------


class TestSessionIntegration:
    def test_sampler_covers_whole_trace(self, span_run):
        session, result, engine = span_run
        samples = session.sampler.samples
        assert len(samples) == SPAN_LENGTH // 2000
        assert samples[-1].instructions == SPAN_LENGTH
        assert all(s.window_instructions == 2000 for s in samples)

    def test_spans_recorded_and_accounted(self, span_run):
        session, _, engine = span_run
        tracer = session.tracer
        assert tracer.tallies.spawns == engine.spawner.stats.spawned > 0
        assert len(tracer.complete_spans()) > 0
        terminal = sum(tracer.tallies.statuses[s] for s in SPAN_STATUSES)
        assert terminal == tracer.tallies.spawns
        for span in tracer.spans:
            assert span.status in SPAN_STATUSES

    def test_registry_mirrors_engine_stats(self, span_run):
        session, result, engine = span_run
        snap = session.snapshot()
        assert snap["spawn.spawned"] == engine.spawner.stats.spawned
        assert snap["path_cache.occupancy"] == len(engine.path_cache)
        assert snap["timing.instructions"] == result.instructions
        assert snap["tracer.spans_recorded"] == len(session.tracer.spans)

    def test_session_rejects_second_engine(self, span_run):
        session, _, engine = span_run
        with pytest.raises(ValueError):
            session.attach(object())

    def test_report_schema_and_json_round_trip(self, span_run, tmp_path):
        session, result, engine = span_run
        report = session.build_report(SPAN_BENCH, result, engine)
        path = tmp_path / "report.json"
        report.write(str(path))
        data = load_report(str(path))
        for key in ("schema", "benchmark", "instructions", "config",
                    "timing", "metrics", "samples", "spans", "routines",
                    "span_summary"):
            assert key in data
        assert data["benchmark"] == SPAN_BENCH
        assert data["config"]["n"] == 10
        assert len(data["samples"]) >= 5
        assert any(s["status"] == "completed" for s in data["spans"])

    def test_samples_csv_export(self, span_run, tmp_path):
        session, result, engine = span_run
        report = session.build_report(SPAN_BENCH, result, engine)
        path = tmp_path / "samples.csv"
        report.write(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",") == IntervalSample.csv_fields()
        assert len(lines) == 1 + len(report.samples)

    def test_load_report_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError):
            load_report(str(path))


class TestCLI:
    def test_run_metrics_out_writes_valid_report(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        rc = main(["run", SPAN_BENCH, "--instructions", "30000",
                   "--metrics-out", str(out)])
        assert rc == 0
        assert f"wrote {out}" in capsys.readouterr().out
        data = load_report(str(out))
        assert data["instructions"] == 30000
        assert len(data["samples"]) >= 5

    def test_metrics_out_incompatible_with_profile_guided(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", SPAN_BENCH, "--profile-guided",
                  "--metrics-out", str(tmp_path / "x.json")])

    def test_trace_prints_completed_spans(self, capsys):
        rc = main(["trace", SPAN_BENCH, "--instructions",
                   str(SPAN_LENGTH), "--limit", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== routines" in out and "== summary ==" in out
        assert "completed" in out

    def test_experiment_json_out(self, tmp_path, capsys):
        rc = main(["experiment", "table2", "--benchmarks", SPAN_BENCH,
                   "--instructions", "10000",
                   "--json-out", str(tmp_path)])
        assert rc == 0
        data = json.loads((tmp_path / "BENCH_table2.json").read_text())
        assert data["schema"] == "repro.bench/1"
        assert SPAN_BENCH in data["results"]


class TestDetachedMode:
    def test_run_without_session_records_nothing(self):
        trace = benchmark_trace(SPAN_BENCH, 5000)
        result, engine = run_ssmt(trace, SSMTConfig())
        assert engine.telemetry is None
        # a fresh report can still be built from a standalone registry
        report = RunReport(benchmark=SPAN_BENCH,
                           instructions=result.instructions)
        assert report.to_dict()["samples"] == []
