"""Tests for BTB, return address stack and indirect target cache."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.target_cache import TargetCache


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=16)
        assert btb.lookup(5) is None
        btb.update(5, 99)
        assert btb.lookup(5) == 99
        assert btb.misses == 1 and btb.hits == 1

    def test_conflicting_pcs_evict(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(3, 10)
        btb.update(3 + 16, 20)  # same slot, different tag
        assert btb.lookup(3) is None
        assert btb.lookup(3 + 16) == 20

    def test_update_overwrites_target(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(3, 10)
        btb.update(3, 11)
        assert btb.lookup(3) == 11

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=100)


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(entries=8)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(entries=8)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(entries=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was dropped

    def test_matched_call_return_nesting(self):
        ras = ReturnAddressStack(entries=32)
        for depth in range(10):
            ras.push(depth * 100)
        for depth in reversed(range(10)):
            assert ras.pop() == depth * 100

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(entries=0)


class TestTargetCache:
    def test_learns_stable_target(self):
        """The 16-bit folded history depends on the last 8 targets, so a
        branch repeatedly jumping to one target stabilises after 8
        updates and predicts correctly thereafter."""
        cache = TargetCache(entries=256)
        for _ in range(9):
            cache.update(7, 123)
        assert cache.predict(7) == 123

    def test_history_disambiguates_contexts(self):
        """Different preceding-target histories map to different slots."""
        cache = TargetCache(entries=1 << 12)
        # context A: after target 500, branch 7 goes to 100
        # context B: after target 600, branch 7 goes to 200
        for _ in range(50):
            cache.update(3, 500)
            if cache.predict(7) != 100:
                pass
            cache.update(7, 100)
            cache.update(3, 600)
            cache.update(7, 200)
        cache.update(3, 500)
        assert cache.predict(7) == 100
        cache.update(7, 100)
        cache.update(3, 600)
        assert cache.predict(7) == 200

    def test_default_prediction_is_zero(self):
        assert TargetCache(entries=16).predict(5) == 0
