"""The generated schema reference and its freshness gate.

``tools/gen_schema_docs.py`` renders ``docs/schemas.md`` straight from
``repro.schemas``; these tests pin the invariants the docs layer leans
on: the registry and the prose metadata cover each other exactly, the
renderer mentions every schema, and the committed page is current (the
same check CI runs through ``tools/check_docs.py``).
"""

import sys
from pathlib import Path

from repro.schemas import SCHEMA_INFO, SCHEMA_REGISTRY, schema_string

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import gen_schema_docs  # noqa: E402


def test_schema_info_covers_the_registry():
    assert set(SCHEMA_INFO) == set(SCHEMA_REGISTRY)


def test_schema_info_entries_are_complete():
    for name, info in SCHEMA_INFO.items():
        assert isinstance(info.get("description"), str) and \
            info["description"], name
        fields = info.get("fields")
        assert isinstance(fields, dict) and fields, name
        for field, doc in fields.items():
            assert isinstance(doc, str) and doc, f"{name}.{field}"


def test_render_mentions_every_schema():
    page = gen_schema_docs.render()
    assert page.startswith(gen_schema_docs.HEADER.splitlines()[0])
    for name, versions in SCHEMA_REGISTRY.items():
        assert f"`{name}`" in page, name
        assert f"`{schema_string(name, max(versions))}`" in page, name


def test_committed_page_is_fresh():
    on_disk = gen_schema_docs.OUTPUT.read_text()
    assert on_disk == gen_schema_docs.render(), (
        "docs/schemas.md is stale; regenerate with "
        "'PYTHONPATH=src python tools/gen_schema_docs.py'")


def test_check_mode_exit_codes(tmp_path, monkeypatch, capsys):
    assert gen_schema_docs.main(["--check"]) == 0
    stale = tmp_path / "schemas.md"
    stale.write_text("out of date\n")
    monkeypatch.setattr(gen_schema_docs, "OUTPUT", stale)
    assert gen_schema_docs.main(["--check"]) == 1
    capsys.readouterr()


def test_service_bench_schema_is_registered():
    # The loadtest artifact's marker resolves through the registry
    # (a stray literal would trip lint rule LINT020).
    assert schema_string("repro.service.bench", 1) == \
        "repro.service.bench/1"
    assert schema_string("repro.serve.job", 1) == "repro.serve.job/1"
