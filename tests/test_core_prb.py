"""Tests for the Post-Retirement Buffer dependence tracking."""

import pytest

from repro.core.prb import PostRetirementBuffer
from repro.isa.assembler import assemble
from repro.sim.functional import run_program


def retire_all(source, capacity=512, n=5000):
    trace = run_program(assemble(source), max_instructions=n)
    prb = PostRetirementBuffer(capacity)
    entries = [prb.insert(rec, i) for i, rec in enumerate(trace)]
    return trace, prb, entries


class TestDependenceLinks:
    def test_register_producer_linked(self):
        _, _, entries = retire_all("li r1, 5\naddi r2, r1, 1\nhalt")
        addi = entries[1]
        assert addi.src_producers == (0,)  # the LI at position 0

    def test_two_source_links(self):
        _, _, entries = retire_all("li r1, 5\nli r2, 6\nadd r3, r1, r2\nhalt")
        add = entries[2]
        assert add.src_producers == (0, 1)

    def test_unwritten_register_is_none(self):
        _, _, entries = retire_all("addi r2, r7, 1\nhalt")
        assert entries[0].src_producers == (None,)

    def test_latest_writer_wins(self):
        _, _, entries = retire_all(
            "li r1, 1\nli r1, 2\naddi r2, r1, 0\nhalt")
        assert entries[2].src_producers == (1,)

    def test_store_to_load_link(self):
        source = """
            li r1, 0x100
            li r2, 9
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
        """
        _, _, entries = retire_all(source)
        load = entries[3]
        assert load.mem_producer == 2

    def test_load_without_store_has_no_mem_producer(self):
        _, _, entries = retire_all("li r1, 0x100\nld r2, 0(r1)\nhalt")
        assert entries[1].mem_producer is None

    def test_different_address_store_not_linked(self):
        source = """
            li r1, 0x100
            li r2, 9
            st r2, 8(r1)
            ld r3, 0(r1)
            halt
        """
        _, _, entries = retire_all(source)
        assert entries[3].mem_producer is None


class TestRingBehaviour:
    def test_capacity_bound(self):
        _, prb, _ = retire_all("loop:\naddi r1, r1, 1\njmp loop",
                               capacity=64, n=1000)
        assert len(prb) == 64

    def test_old_entries_fall_out(self):
        _, prb, _ = retire_all("loop:\naddi r1, r1, 1\njmp loop",
                               capacity=64, n=1000)
        assert prb.get(0) is None
        assert prb.get(999) is not None

    def test_youngest_is_last_inserted(self):
        _, prb, _ = retire_all("li r1, 1\nli r2, 2\nhalt")
        assert prb.youngest_pos == 2
        assert prb.youngest().rec.inst.opcode.name == "HALT"

    def test_producer_beyond_capacity_reported_none(self):
        # Producer written once at the start, consumed much later.
        source = "li r9, 7\n" + "loop:\naddi r1, r1, 1\njmp loop"
        trace = run_program(assemble(source), max_instructions=200)
        prb = PostRetirementBuffer(32)
        last = None
        for i, rec in enumerate(trace):
            last = prb.insert(rec, i)
        # addi r1 depends on r1 whose producer is 2 positions back: linked.
        # But a consumer of r9 would see None once 'li r9' left the buffer.
        assert prb._live_pos(0) is None

    def test_get_validates_range(self):
        prb = PostRetirementBuffer(8)
        assert prb.get(-1) is None
        assert prb.get(0) is None  # nothing inserted yet

    def test_confidence_flags_stored(self):
        trace = run_program(assemble("li r1, 1\nhalt"), max_instructions=10)
        prb = PostRetirementBuffer(8)
        entry = prb.insert(trace[0], 0, value_confident=True,
                           address_confident=False)
        assert entry.value_confident and not entry.address_confident

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PostRetirementBuffer(0)


class TestPositionIdentity:
    def test_positions_equal_trace_indices(self):
        """The SSMT engine inserts every retired instruction in order, so
        PRB positions coincide with trace indices — the builder relies on
        this to map spawn constraints back to PCs."""
        _, prb, entries = retire_all("li r1, 1\nli r2, 2\nli r3, 3\nhalt")
        for i, entry in enumerate(entries):
            assert entry.pos == i == entry.idx
            assert prb.get(i) is entry
