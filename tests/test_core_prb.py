"""Tests for the Post-Retirement Buffer dependence tracking."""

import pytest

from repro.core.prb import PostRetirementBuffer
from repro.isa.assembler import assemble
from repro.sim.functional import run_program


def retire_all(source, capacity=512, n=5000):
    trace = run_program(assemble(source), max_instructions=n)
    prb = PostRetirementBuffer(capacity)
    entries = [prb.insert(rec, i) for i, rec in enumerate(trace)]
    return trace, prb, entries


class TestDependenceLinks:
    def test_register_producer_linked(self):
        _, _, entries = retire_all("li r1, 5\naddi r2, r1, 1\nhalt")
        addi = entries[1]
        assert addi.src_producers == (0,)  # the LI at position 0

    def test_two_source_links(self):
        _, _, entries = retire_all("li r1, 5\nli r2, 6\nadd r3, r1, r2\nhalt")
        add = entries[2]
        assert add.src_producers == (0, 1)

    def test_unwritten_register_is_none(self):
        _, _, entries = retire_all("addi r2, r7, 1\nhalt")
        assert entries[0].src_producers == (None,)

    def test_latest_writer_wins(self):
        _, _, entries = retire_all(
            "li r1, 1\nli r1, 2\naddi r2, r1, 0\nhalt")
        assert entries[2].src_producers == (1,)

    def test_store_to_load_link(self):
        source = """
            li r1, 0x100
            li r2, 9
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
        """
        _, _, entries = retire_all(source)
        load = entries[3]
        assert load.mem_producer == 2

    def test_load_without_store_has_no_mem_producer(self):
        _, _, entries = retire_all("li r1, 0x100\nld r2, 0(r1)\nhalt")
        assert entries[1].mem_producer is None

    def test_different_address_store_not_linked(self):
        source = """
            li r1, 0x100
            li r2, 9
            st r2, 8(r1)
            ld r3, 0(r1)
            halt
        """
        _, _, entries = retire_all(source)
        assert entries[3].mem_producer is None


class TestRingBehaviour:
    def test_capacity_bound(self):
        _, prb, _ = retire_all("loop:\naddi r1, r1, 1\njmp loop",
                               capacity=64, n=1000)
        assert len(prb) == 64

    def test_old_entries_fall_out(self):
        _, prb, _ = retire_all("loop:\naddi r1, r1, 1\njmp loop",
                               capacity=64, n=1000)
        assert prb.get(0) is None
        assert prb.get(999) is not None

    def test_youngest_is_last_inserted(self):
        _, prb, _ = retire_all("li r1, 1\nli r2, 2\nhalt")
        assert prb.youngest_pos == 2
        assert prb.youngest().rec.inst.opcode.name == "HALT"

    def test_producer_beyond_capacity_reported_none(self):
        # Producer written once at the start, consumed much later.
        source = "li r9, 7\n" + "loop:\naddi r1, r1, 1\njmp loop"
        trace = run_program(assemble(source), max_instructions=200)
        prb = PostRetirementBuffer(32)
        last = None
        for i, rec in enumerate(trace):
            last = prb.insert(rec, i)
        # addi r1 depends on r1 whose producer is 2 positions back: linked.
        # But a consumer of r9 would see None once 'li r9' left the buffer.
        assert prb._live_pos(0) is None

    def test_get_validates_range(self):
        prb = PostRetirementBuffer(8)
        assert prb.get(-1) is None
        assert prb.get(0) is None  # nothing inserted yet

    def test_confidence_flags_stored(self):
        trace = run_program(assemble("li r1, 1\nhalt"), max_instructions=10)
        prb = PostRetirementBuffer(8)
        entry = prb.insert(trace[0], 0, value_confident=True,
                           address_confident=False)
        assert entry.value_confident and not entry.address_confident

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PostRetirementBuffer(0)


class TestPositionIdentity:
    def test_positions_equal_trace_indices(self):
        """The SSMT engine inserts every retired instruction in order, so
        PRB positions coincide with trace indices — the builder relies on
        this to map spawn constraints back to PCs."""
        _, prb, entries = retire_all("li r1, 1\nli r2, 2\nli r3, 3\nhalt")
        for i, entry in enumerate(entries):
            assert entry.pos == i == entry.idx
            assert prb.get(i) is entry


class TestWriterMapResidency:
    """Regression tests for the writer-map growth bug: ``_reg_writer`` /
    ``_mem_writer`` used to accumulate one entry per unique register /
    store address for the whole run, unbounded on streaming workloads.
    They are now swept every ring wrap, so residency is bounded by the
    buffer capacity regardless of trace length."""

    def test_mem_writer_bounded_on_streaming_stores(self):
        # A store stream over ever-fresh addresses: the old code kept
        # every address forever.
        source = """
            li r1, 0x1000
            li r2, 7
            loop:
            st r2, 0(r1)
            addi r1, r1, 8
            jmp loop
        """
        _, prb, _ = retire_all(source, capacity=64, n=4000)
        # Entries older than one full ring behind the cursor are swept at
        # every wrap, so at most ~2 rings' worth of addresses survive.
        assert len(prb._mem_writer) <= 2 * prb.capacity
        assert len(prb._reg_writer) <= 2 * prb.capacity

    def test_swept_producer_still_reported_none(self):
        # Sweeping must not change visible linkage: a producer that left
        # the ring reads as None whether its map entry was pruned or not.
        source = "li r9, 7\n" + "loop:\naddi r1, r1, 1\njmp loop"
        trace = run_program(assemble(source), max_instructions=500)
        prb = PostRetirementBuffer(32)
        for i, rec in enumerate(trace):
            prb.insert(rec, i)
        # r9's only writer (position 0) is far beyond the liveness floor.
        trailer = run_program(assemble("addi r2, r9, 0\nhalt"),
                              max_instructions=4)
        entry = prb.insert(trailer[0], len(trace))
        assert entry.src_producers == (None,)

    def test_producer_at_exact_liveness_floor_is_live(self):
        """Boundary: with capacity C, a consumer at position P links a
        producer at exactly P + 1 - C (the oldest resident entry) but
        not one position older."""
        capacity = 8
        # One producer, then filler, then the consumer; distance tuned so
        # the producer sits exactly at the floor.
        filler = "addi r3, r3, 1\n" * (capacity - 1)
        source = "li r9, 7\n" + filler + "addi r2, r9, 0\nhalt"
        trace = run_program(assemble(source), max_instructions=50)
        prb = PostRetirementBuffer(capacity)
        entries = [prb.insert(rec, i) for i, rec in enumerate(trace)]
        consumer = entries[capacity]       # position C; floor = C + 1 - C = 1
        assert consumer.pos == capacity
        assert consumer.src_producers == (None,)  # producer at 0 < floor
        # One instruction earlier the producer was still inside the
        # window: re-run with one less filler instruction.
        source = "li r9, 7\n" + "addi r3, r3, 1\n" * (capacity - 2) \
            + "addi r2, r9, 0\nhalt"
        trace = run_program(assemble(source), max_instructions=50)
        prb = PostRetirementBuffer(capacity)
        entries = [prb.insert(rec, i) for i, rec in enumerate(trace)]
        consumer = entries[capacity - 1]   # position C-1; floor = C - C = 0
        assert consumer.src_producers == (0,)

    def test_linkage_matches_unswept_reference(self):
        """Bit-identity of the swept maps against a naive reference that
        never prunes: every entry's producer links agree on a real
        workload trace."""
        from repro.workloads import benchmark_trace

        trace = benchmark_trace("gcc", 3000)
        capacity = 64
        prb = PostRetirementBuffer(capacity)
        reg_writer = {}
        mem_writer = {}
        for i, rec in enumerate(trace.records):
            entry = prb.insert(rec, i)
            floor = entry.pos + 1 - capacity
            inst = rec.inst
            expect_srcs = tuple(
                p if (p := reg_writer.get(s)) is not None and p >= floor
                else None
                for s in inst.srcs)
            expect_mem = None
            if inst.is_load:
                p = mem_writer.get(rec.ea)
                if p is not None and p >= floor:
                    expect_mem = p
            assert entry.src_producers == expect_srcs, i
            assert entry.mem_producer == expect_mem, i
            if inst.dest is not None:
                reg_writer[inst.dest] = entry.pos
            if inst.is_store:
                mem_writer[rec.ea] = entry.pos
