"""Tests for the stride/last-value predictors and the trainer."""

import pytest

from repro.isa.assembler import assemble
from repro.sim.functional import run_program
from repro.valuepred import AddressPredictor, PredictorTrainer, StridePredictor


class TestStridePredictor:
    def test_constant_value_becomes_confident(self):
        predictor = StridePredictor(confidence_threshold=4)
        for _ in range(6):
            predictor.train(10, 42)
        assert predictor.is_confident(10)
        assert predictor.predict(10) == 42

    def test_stride_sequence(self):
        predictor = StridePredictor(confidence_threshold=4)
        for value in range(0, 60, 5):
            predictor.train(10, value)
        assert predictor.is_confident(10)
        assert predictor.predict(10, ahead=1) == 60
        assert predictor.predict(10, ahead=3) == 70

    def test_ahead_zero_returns_last_value(self):
        predictor = StridePredictor()
        for value in (3, 6, 9):
            predictor.train(10, value)
        assert predictor.predict(10, ahead=0) == 9

    def test_random_values_never_confident(self):
        predictor = StridePredictor(confidence_threshold=4)
        import random
        rng = random.Random(1)
        for _ in range(200):
            predictor.train(10, rng.randrange(1 << 30))
        assert not predictor.is_confident(10)

    def test_stride_change_resets_confidence(self):
        predictor = StridePredictor(confidence_threshold=2)
        for value in (0, 1, 2, 3, 4):
            predictor.train(10, value)
        assert predictor.is_confident(10)
        predictor.train(10, 100)  # stride breaks
        assert not predictor.is_confident(10)

    def test_unknown_pc_predicts_none(self):
        assert StridePredictor().predict(999) is None
        assert StridePredictor().confidence(999) == 0

    def test_capacity_eviction(self):
        predictor = StridePredictor(capacity=2)
        predictor.train(1, 10)
        predictor.train(2, 20)
        predictor.train(3, 30)
        assert len(predictor) == 2
        assert predictor.predict(1) is None

    def test_wraparound_stride(self):
        predictor = StridePredictor(confidence_threshold=2)
        top = (1 << 64) - 2
        for value in (top, top + 1, (top + 2) & ((1 << 64) - 1)):
            predictor.train(5, value & ((1 << 64) - 1))
        assert predictor.predict(5) == ((top + 3) & ((1 << 64) - 1))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            StridePredictor(max_confidence=3, confidence_threshold=5)


class TestAddressPredictor:
    def test_base_register_stride(self):
        predictor = AddressPredictor(confidence_threshold=3)
        for base in (0x100, 0x108, 0x110, 0x118, 0x120):
            predictor.train_load(50, base)
        assert predictor.is_confident(50)
        assert predictor.predict_base(50) == 0x128


class TestPredictorTrainer:
    def _trace(self):
        return run_program(assemble("""
        .data arr 8 1 2 3 4 5 6 7 8
            li r1, 0
            li r2, 40
        loop:
            li r3, &arr
            add r4, r3, r1
            ld r5, 0(r4)
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """), max_instructions=2000)

    def test_trains_value_and_address(self):
        trainer = PredictorTrainer()
        for rec in self._trace():
            trainer.observe(rec)
        assert trainer.value_predictor.trains > 0
        assert trainer.address_predictor.trains > 0

    def test_confidence_snapshot_precedes_training(self):
        """The flags returned describe state *before* this instance."""
        trainer = PredictorTrainer()
        flags = []
        for rec in self._trace():
            if rec.inst.is_load:
                flags.append(trainer.observe(rec))
        # first loads cannot be confident; later ones should become so
        assert flags[0] == (False, False)
        assert any(value or addr for value, addr in flags[10:])

    def test_loop_counter_becomes_value_confident(self):
        trainer = PredictorTrainer()
        addi_pc = None
        for rec in self._trace():
            trainer.observe(rec)
            if rec.inst.opcode.name == "ADDI" and rec.inst.rd == 1:
                addi_pc = rec.pc
        assert trainer.value_predictor.is_confident(addi_pc)

    def test_constant_base_becomes_address_confident(self):
        trainer = PredictorTrainer()
        load_pc = None
        for rec in self._trace():
            trainer.observe(rec)
            if rec.inst.is_load:
                load_pc = rec.pc
        # base register walks with stride 1 -> confident
        assert trainer.address_predictor.is_confident(load_pc)
