"""Tests for the static microthread verifier (repro.verify.static).

Each rule id is exercised by taking a genuine builder-produced
microthread and seeding exactly the defect the rule exists to catch;
unmodified builder output must verify clean.
"""

import copy

import pytest

from repro.core.builder import BuilderConfig, MicrothreadBuilder
from repro.core.microthread import MicroOp
from repro.core.path import PathTracker
from repro.core.prb import PostRetirementBuffer
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.sim.functional import run_program
from repro.valuepred import PredictorTrainer
from repro.verify import BuildVerifier, Severity, verify_microthread
from repro.verify.diagnostics import RULES, VerifyReport

DATA_LOOP = """
.data arr 16 57 3 91 22 68 14 77 41 5 99 33 60 12 84 29 50
    li r1, 0
    li r2, 60
loop:
    andi r3, r1, 15
    li r4, &arr
    add r5, r4, r3
    ld r6, 0(r5)
    jmp h1
h1:
    addi r9, r9, 1
    jmp h2
h2:
    li r7, 50
    blt r6, r7, taken
    addi r8, r8, 1
taken:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
"""

_TRACE = None


def _trace():
    global _TRACE
    if _TRACE is None:
        _TRACE = run_program(assemble(DATA_LOOP), max_instructions=3000)
    return _TRACE


def build_all(pruning=True):
    """Replay DATA_LOOP, building (and keeping) every routine.

    Returns ``(threads, prb)`` with the PRB in its end-of-trace state;
    the youngest threads' extraction windows are still fully resident.
    """
    tracker = PathTracker(4)
    prb = PostRetirementBuffer(512)
    trainer = PredictorTrainer()
    builder = MicrothreadBuilder(BuilderConfig(build_latency=0,
                                               pruning=pruning))
    built = []
    for idx, rec in enumerate(_trace()):
        flags = trainer.observe(rec)
        prb.insert(rec, idx, *flags)
        event = tracker.observe(rec, idx)
        if event is not None and not event.partial:
            thread = builder.request(event, prb, 0)
            if thread is not None:
                built.append(thread)
    return built, prb


def window_resident(thread, prb):
    spawn_idx = thread.built_from_idx - thread.separation
    return all(prb.get(pos) is not None
               for pos in range(spawn_idx, thread.built_from_idx + 1))


def pick_thread(built, prb, pred=lambda t: True):
    """Youngest window-resident thread satisfying ``pred``, deep-copied
    so tests can corrupt it freely."""
    for thread in reversed(built):
        if window_resident(thread, prb) and pred(thread):
            return copy.deepcopy(thread)
    raise AssertionError("no window-resident thread matches the predicate")


def pick_node(built, prb, pred):
    """Youngest resident (thread, node) pair satisfying ``pred``."""
    for thread in reversed(built):
        if not window_resident(thread, prb):
            continue
        for node in thread.nodes:
            if pred(node, prb):
                clone = copy.deepcopy(thread)
                twin = next(n for n in clone.nodes if n.uid == node.uid)
                return clone, twin
    raise AssertionError("no window-resident node matches the predicate")


def _entry_matches(node, prb):
    entry = prb.get(node.order)
    return entry is not None and entry.rec.pc == node.pc


def has_kind(kind):
    return lambda t: any(n.kind == kind for n in t.nodes)


class TestCleanBuilderOutput:
    def test_all_built_threads_verify_clean_at_build_time(self):
        """Verified against the PRB snapshot at build time (the engine's
        own usage via BuildVerifier): zero errors, zero warnings."""
        tracker = PathTracker(4)
        prb = PostRetirementBuffer(512)
        trainer = PredictorTrainer()
        builder = MicrothreadBuilder(BuilderConfig(build_latency=0))
        verifier = BuildVerifier()
        for idx, rec in enumerate(_trace()):
            flags = trainer.observe(rec)
            prb.insert(rec, idx, *flags)
            event = tracker.observe(rec, idx)
            if event is not None and not event.partial:
                thread = builder.request(event, prb, 0)
                if thread is not None:
                    verifier.verify_built(thread, prb)
        assert verifier.verified > 50
        assert verifier.ok
        assert verifier.error_count == 0
        assert verifier.warning_count == 0

    def test_clean_without_prb(self):
        built, prb = build_all()
        for thread in built:
            report = verify_microthread(thread, None)
            assert report.ok, report.format()

    def test_harness_produces_pruned_threads(self):
        built, prb = build_all()
        assert any(has_kind("vp")(t) for t in built)
        assert any(has_kind("ap")(t) for t in built)


class TestMT001UseBeforeDef:
    def test_reversed_listing(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, lambda t: len(t.nodes) > 2)
        thread.nodes = list(reversed(thread.nodes))
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT001")
        assert not report.ok

    def test_duplicate_node(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, lambda t: len(t.nodes) > 2)
        thread.nodes = thread.nodes + [thread.nodes[0]]
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT001")
        assert any("twice" in d.message for d in report.errors)


class TestMT002DeadOps:
    def test_unreachable_op(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, lambda t: len(t.nodes) > 2)
        orphan = MicroOp("op", op=Opcode.ADD, pc=thread.term_pc,
                         inputs=[thread.nodes[0]])
        thread.nodes.insert(len(thread.nodes) - 1, orphan)
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT002")
        dead = [d for d in report.errors if d.rule == "MT002"]
        assert dead[0].node_index == len(thread.nodes) - 2


class TestMT003TerminatorForm:
    def test_empty_routine(self):
        built, prb = build_all()
        thread = pick_thread(built, prb)
        thread.nodes = []
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT003")
        assert not report.ok

    def test_missing_terminator(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, lambda t: len(t.nodes) > 2)
        thread.nodes = [n for n in thread.nodes if n.kind != "branch"]
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT003")

    def test_two_terminators(self):
        built, prb = build_all()
        thread = pick_thread(built, prb)
        extra = MicroOp("branch", op=thread.root.op, pc=thread.term_pc,
                        inputs=list(thread.root.inputs),
                        order=thread.root.order)
        thread.nodes.append(extra)
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT003")

    def test_terminator_not_final(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, lambda t: len(t.nodes) > 2)
        thread.nodes = [thread.nodes[-1]] + thread.nodes[:-1]
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT003")


class TestMT004IllegalSpawn:
    def test_zero_separation(self):
        built, prb = build_all()
        thread = pick_thread(built, prb)
        thread.separation = 0
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT004")

    def test_livein_producer_after_spawn(self):
        built, prb = build_all()
        thread, node = pick_node(
            built, prb,
            lambda n, _: n.kind == "livein" and n.producer_idx is not None)
        node.producer_idx = thread.built_from_idx
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT004")

    def test_spawn_pc_disagrees_with_prb(self):
        built, prb = build_all()
        thread = pick_thread(built, prb)
        thread.spawn_pc += 1
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT004")

    def test_spawn_rules_skip_without_prb(self):
        built, prb = build_all()
        thread = pick_thread(built, prb)
        thread.spawn_pc += 1
        assert verify_microthread(thread, None).ok


class TestMT005DataflowMismatch:
    def test_tampered_constant(self):
        built, prb = build_all()
        thread, node = pick_node(
            built, prb,
            lambda n, p: n.kind == "const" and _entry_matches(n, p))
        node.imm += 1
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT005")
        assert any("constant" in d.message for d in report.errors)

    def test_tampered_load_offset(self):
        built, prb = build_all()

        def corruptible_load(n, p):
            if n.kind != "load" or not n.inputs or not _entry_matches(n, p):
                return False
            entry = p.get(n.order)
            # base must be re-derivable from the snapshot alone
            return n.inputs[0].kind in ("const", "ap") \
                and entry.rec.ea is not None

        thread, node = pick_node(built, prb, corruptible_load)
        node.imm += 8
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT005")
        assert any("address" in d.message for d in report.errors)


class TestMT006UnsoundPrune:
    def test_vp_without_value_confidence(self):
        built, prb = build_all()
        thread, node = pick_node(
            built, prb,
            lambda n, p: n.kind == "vp" and _entry_matches(n, p))
        prb.get(node.order).value_confident = False
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT006")
        assert any("value-confident" in d.message for d in report.errors)

    def test_ap_without_address_confidence(self):
        built, prb = build_all()
        thread, node = pick_node(
            built, prb,
            lambda n, p: n.kind == "ap" and _entry_matches(n, p))
        prb.get(node.order).address_confident = False
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT006")

    def test_prune_node_with_pruning_disabled_flag(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, has_kind("vp"))
        thread.pruned = False
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT006")

    def test_vp_must_be_leaf(self):
        built, prb = build_all()
        thread, node = pick_node(built, prb, lambda n, _: n.kind == "vp")
        node.inputs = [thread.nodes[0]]
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT006")
        assert any("leaf" in d.message for d in report.errors)

    def test_ap_detached_from_its_load(self):
        built, prb = build_all()
        thread, node = pick_node(built, prb, lambda n, _: n.kind == "ap")
        for load in thread.nodes:
            if load.kind == "load" and load.inputs \
                    and load.inputs[0].uid == node.uid:
                load.inputs[0] = MicroOp("const", imm=0x1000, order=-1)
                thread.nodes.insert(0, load.inputs[0])
                break
        else:
            raise AssertionError("ap node has no consuming load")
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT006")
        assert any("feed" in d.message for d in report.errors)

    def test_evicted_entry_downgrades_to_warning(self):
        built, prb = build_all()
        # oldest pruned thread: its window has long been evicted
        for thread in built:
            if has_kind("vp")(thread) and not window_resident(thread, prb):
                report = verify_microthread(thread, prb)
                assert report.ok
                assert any(d.rule == "MT006" and
                           d.severity == Severity.WARNING
                           for d in report.diagnostics)
                return
        pytest.skip("every pruned thread still resident")


class TestMT007LiveinMismatch:
    def test_declared_set_cleared(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, lambda t: t.live_in_regs)
        thread.live_in_regs = ()
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT007")

    def test_declared_set_inflated(self):
        built, prb = build_all()
        thread = pick_thread(built, prb)
        thread.live_in_regs = tuple(thread.live_in_regs) + (27,)
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT007")


class TestMT008SuffixMismatch:
    def test_bogus_prefix(self):
        built, prb = build_all()
        thread = pick_thread(built, prb, lambda t: t.key.branches)
        thread.prefix = (0xDEAD,)
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT008")

    def test_tampered_expected_suffix(self):
        built, prb = build_all()
        thread = pick_thread(built, prb)
        thread.expected_suffix = tuple(thread.expected_suffix) + (4242,)
        report = verify_microthread(thread, prb)
        assert report.has_rule("MT008")


class TestBuildVerifierAggregation:
    def test_error_reports_and_counts(self):
        built, prb = build_all()
        verifier = BuildVerifier()
        clean = pick_thread(built, prb)
        verifier.verify_built(clean, prb)
        assert verifier.ok and verifier.error_count == 0

        broken = pick_thread(built, prb)
        broken.separation = 0
        verifier.verify_built(broken, prb)
        assert verifier.verified == 2
        assert not verifier.ok
        assert len(verifier.error_reports) == 1
        assert verifier.error_count >= 1


class TestDiagnostics:
    def test_unknown_rule_rejected(self):
        report = VerifyReport(subject="x")
        with pytest.raises(ValueError):
            report.emit("MT999", Severity.ERROR, "nope")

    def test_format_carries_rule_and_hint(self):
        report = VerifyReport(subject="routine r")
        report.emit("MT002", Severity.ERROR, "dead", node_index=3,
                    hint="rebuild listing")
        text = report.format()
        assert "routine r" in text
        assert "MT002" in text and "@op[3]" in text and "rebuild" in text

    def test_rule_registry_covers_all_ids(self):
        assert {f"MT00{i}" for i in range(1, 9)} <= set(RULES)
        assert {f"SAN00{i}" for i in range(1, 7)} <= set(RULES)
