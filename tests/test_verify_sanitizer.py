"""Tests for the runtime invariant sanitizer (repro.verify.sanitizer).

Each SAN rule is exercised by running the real SSMT engine over a short
benchmark trace and then seeding exactly the cross-structure corruption
the invariant exists to catch; an uncorrupted run must sanitize clean.
"""

import pytest

from repro.core.prediction_cache import PredictionCacheEntry
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.verify import SanitizerConfig, SimSanitizer
from repro.verify.sanitizer import SanitizerError

TRACE_LEN = 20_000


def run_engine(sanitizer=None, instructions=TRACE_LEN):
    from repro.workloads import benchmark_trace

    trace = benchmark_trace("comp", instructions)
    _, engine = run_ssmt(trace, SSMTConfig(), sanitizer=sanitizer)
    return engine


def fresh():
    """A finished engine plus a consistent sanitizer attached post-hoc.

    The shadow occurrence tallies are primed to the training interval so
    the engine's legitimately-difficult paths do not trip SAN002; tests
    seeding an SAN002 defect zero the tally for their victim key.
    """
    engine = run_engine()
    sanitizer = SimSanitizer(SanitizerConfig(check_every=0))
    interval = engine.path_cache.config.training_interval
    for key, _ in engine.path_cache.entries():
        sanitizer._shadow_occurrences[key] = interval
    return engine, sanitizer


def rule_count(sanitizer, rule):
    return sum(1 for d in sanitizer.report.errors if d.rule == rule)


class TestCleanRun:
    def test_attached_run_sanitizes_clean(self):
        sanitizer = SimSanitizer(SanitizerConfig(check_every=64))
        engine = run_engine(sanitizer=sanitizer)
        report = sanitizer.final_check(engine)
        assert report.ok, report.format()
        assert sanitizer.ok
        assert sanitizer.retires_seen == TRACE_LEN
        assert sanitizer.sweeps > 1  # periodic sweeps plus the final one

    def test_engine_promoted_paths_have_routines(self):
        engine = run_engine()
        assert len(engine.microram) > 0  # the corruptions below rely on it


class TestSAN001PathCacheCounters:
    def test_mispredicts_exceed_occurrences(self):
        engine, sanitizer = fresh()
        _, entry = next(iter(engine.path_cache.entries()))
        entry.mispredicts = entry.occurrences + 3
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN001") == 1

    def test_occurrences_run_past_interval(self):
        engine, sanitizer = fresh()
        _, entry = next(iter(engine.path_cache.entries()))
        interval = engine.path_cache.config.training_interval
        entry.occurrences = interval + 5
        entry.mispredicts = 0
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN001") == 1


class TestSAN002DifficultUntrained:
    def test_difficult_bit_without_training(self):
        engine, sanitizer = fresh()
        key, entry = next(iter(engine.path_cache.entries()))
        sanitizer._shadow_occurrences[key] = 0
        entry.difficult = True
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN002") >= 1

    def test_trained_difficult_bit_is_legal(self):
        engine, sanitizer = fresh()
        key, entry = next(iter(engine.path_cache.entries()))
        interval = engine.path_cache.config.training_interval
        sanitizer._shadow_occurrences[key] = interval
        entry.difficult = True
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN002") == 0


class TestSAN003PromotedNoRoutine:
    def test_promoted_bit_without_routine(self):
        engine, sanitizer = fresh()
        interval = engine.path_cache.config.training_interval
        for key, entry in engine.path_cache.entries():
            if key not in engine.microram:
                sanitizer._shadow_occurrences[key] = interval
                entry.promoted = True
                break
        else:
            raise AssertionError("every tracked path has a routine")
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN003") == 1


class TestSAN004Occupancy:
    def test_prediction_cache_overfull(self):
        engine, sanitizer = fresh()
        pcache = engine.prediction_cache
        for i in range(pcache.capacity + 1 - len(pcache)):
            pcache._entries[(0x7FFF0000 + i, i)] = \
                PredictionCacheEntry(True, 0, 0)
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN004") == 1

    def test_spawn_index_desync(self):
        engine, sanitizer = fresh()
        assert len(engine.microram) > 0
        engine.microram._by_spawn_pc.clear()
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN004") == 1

    def test_routine_over_mcb_capacity(self):
        engine, sanitizer = fresh()
        assert len(engine.microram) > 0
        engine.config.mcb_capacity = 1
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN004") >= 1


class TestSAN005StalePrediction:
    def test_violated_writer_entry_still_valid(self):
        engine, sanitizer = fresh()
        ghost = object()
        sanitizer.note_violation(ghost)
        engine.prediction_cache._entries[(0x123456, 7)] = \
            PredictionCacheEntry(True, 0, 0, writer=ghost, valid=True)
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN005") == 1

    def test_invalidated_entry_is_legal(self):
        engine, sanitizer = fresh()
        ghost = object()
        sanitizer.note_violation(ghost)
        engine.prediction_cache._entries[(0x123456, 7)] = \
            PredictionCacheEntry(True, 0, 0, writer=ghost, valid=False)
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN005") == 0


class TestSAN006DemotedRoutine:
    def test_demoted_key_still_resident(self):
        engine, sanitizer = fresh()
        key = next(iter(engine.microram.routines())).key
        assert key in engine.microram
        sanitizer.note_demote(key)
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN006") == 1

    def test_repromotion_clears_the_obligation(self):
        engine, sanitizer = fresh()
        key = next(iter(engine.microram.routines())).key
        sanitizer.note_demote(key)
        sanitizer.note_promote(key)
        sanitizer.sweep(engine)
        assert rule_count(sanitizer, "SAN006") == 0


class TestConfigAndReporting:
    def test_raise_on_error(self):
        engine, _ = fresh()
        sanitizer = SimSanitizer(SanitizerConfig(check_every=0,
                                                 raise_on_error=True))
        _, entry = next(iter(engine.path_cache.entries()))
        entry.mispredicts = entry.occurrences + 1
        with pytest.raises(SanitizerError):
            sanitizer.sweep(engine)

    def test_max_diagnostics_caps_the_report(self):
        engine, _ = fresh()
        sanitizer = SimSanitizer(SanitizerConfig(check_every=0,
                                                 max_diagnostics=1))
        for ghost in (object(), object(), object()):
            sanitizer.note_violation(ghost)
            engine.prediction_cache._entries[(id(ghost), 1)] = \
                PredictionCacheEntry(True, 0, 0, writer=ghost)
        sanitizer.sweep(engine)
        assert len(sanitizer.report.diagnostics) == 1

    @pytest.mark.parametrize("kwargs", [
        {"check_every": -1},
        {"max_diagnostics": 0},
        {"violation_memory": 0},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            SanitizerConfig(**kwargs)

    def test_check_every_zero_never_sweeps_inline(self):
        sanitizer = SimSanitizer(SanitizerConfig(check_every=0))
        engine = run_engine(sanitizer=sanitizer, instructions=5000)
        assert sanitizer.retires_seen == 5000
        assert sanitizer.sweeps == 0
        sanitizer.final_check(engine)
        assert sanitizer.sweeps == 1
