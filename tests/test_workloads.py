"""Tests for the synthetic workload generator and the named suite."""

import pytest

from repro.sim.functional import run_program
from repro.workloads import (
    BENCHMARK_NAMES,
    benchmark_spec,
    benchmark_trace,
    build_benchmark,
    generate_program,
)
from repro.workloads.spec import SiteKind, WorkloadSpec


class TestWorkloadSpec:
    def test_validate_accepts_defaults(self):
        WorkloadSpec(name="x").validate()

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mix={}).validate()

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mix={SiteKind.DATA: -1}).validate()

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mix={SiteKind.DATA: 0.0}).validate()

    def test_rejects_non_power_of_two_array(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", array_size=1000).validate()

    def test_rejects_zero_sites(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", sites_per_function=0).validate()


class TestGenerator:
    def test_deterministic_generation(self):
        spec = WorkloadSpec(name="det-test", seed=7)
        first = generate_program(spec)
        second = generate_program(spec)
        assert len(first) == len(second)
        assert all(a.opcode == b.opcode and a.rd == b.rd and a.imm == b.imm
                   for a, b in zip(first.instructions, second.instructions))

    def test_different_seeds_differ(self):
        a = generate_program(WorkloadSpec(name="seed-test", seed=1))
        b = generate_program(WorkloadSpec(name="seed-test", seed=2))
        assert (len(a) != len(b)
                or any(x.opcode != y.opcode
                       for x, y in zip(a.instructions, b.instructions)))

    def test_every_site_kind_generates_runnable_code(self):
        for kind in SiteKind:
            spec = WorkloadSpec(name=f"kind-{kind.value}", seed=3,
                                n_functions=2, sites_per_function=3,
                                mix={kind: 1.0})
            trace = run_program(generate_program(spec),
                                max_instructions=20_000)
            assert len(trace) == 20_000  # ran without fault, no early halt

    def test_generated_program_loops_forever(self):
        program = build_benchmark("comp")
        trace = run_program(program, max_instructions=5_000)
        assert not trace.halted

    def test_branch_tags_attached(self):
        program = build_benchmark("gcc")
        tags = {i.tag for i in program.instructions if i.tag}
        assert any(t.startswith("data") for t in tags)
        assert any(t.startswith("biased") for t in tags)


class TestSuite:
    def test_twenty_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 20

    def test_paper_benchmark_names_present(self):
        for name in ("comp", "gcc", "go", "mcf_2k", "eon_2k", "vpr_2k"):
            assert name in BENCHMARK_NAMES

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark_spec("nonsense")

    def test_trace_cache_returns_same_object(self):
        first = benchmark_trace("comp", 5_000)
        second = benchmark_trace("comp", 5_000)
        assert first is second

    def test_trace_length_respected(self):
        assert len(benchmark_trace("li", 7_000)) == 7_000

    def test_control_density_realistic(self):
        """Integer-code-like control density: 15-35% control transfers."""
        trace = benchmark_trace("gcc", 30_000)
        control_fraction = trace.control_count() / len(trace)
        assert 0.10 < control_fraction < 0.40

    def test_load_density_realistic(self):
        trace = benchmark_trace("gcc", 30_000)
        loads = sum(1 for r in trace if r.inst.is_load)
        assert 0.05 < loads / len(trace) < 0.40

    def test_suite_programs_have_expected_scale_order(self):
        """gcc-like benchmarks are much larger than comp-like ones."""
        assert len(build_benchmark("gcc")) > 2 * len(build_benchmark("comp"))

    def test_big_scope_benchmarks_have_bigger_blocks(self):
        vpr = benchmark_spec("vpr_2k")
        gcc = benchmark_spec("gcc")
        assert vpr.filler_range[1] > gcc.filler_range[1]
