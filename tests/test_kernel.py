"""Tests for the batched retire-loop kernel and sampled simulation.

The contract under test (``repro.kernel``):

* predecode: the struct-of-arrays columns agree with the per-record
  attribute walk on every backend, including the pure-Python fallback,
* batched == scalar: the fused kernel is *bit-identical* to the scalar
  loop, both at the ``TimingResult``/engine-report level and at the
  worker-payload level (the justification for excluding ``kernel`` from
  the task key),
* PRB ``insert_decoded`` == ``insert`` (the decoded-column fast path),
* sampled simulation: marked, key-distinct, within the documented error
  bound, and exact for a degenerate spec.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.unit import BranchPredictorComplex
from repro.core.prb import PostRetirementBuffer
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.kernel import (
    BACKENDS,
    BatchedOoOTimingModel,
    KERNEL_NAMES,
    SampleSpec,
    predecode,
    resolve_backend,
)
from repro.kernel.columns import (
    HAS_DEST,
    HAS_EA,
    IS_COND,
    IS_CONTROL,
    IS_LOAD,
    IS_STORE,
    IS_TAKEN,
    IS_TERM,
)
from repro.parallel.taskkey import SweepTask
from repro.parallel.worker import run_task
from repro.uarch.timing import OoOTimingModel
from repro.workloads import BENCHMARK_NAMES, benchmark_trace


def fresh_trace(name, n):
    """A trace without memoized columns (predecode caches on the trace)."""
    return benchmark_trace(name, n)


def _require(backend):
    """Skip a numpy-backend case when numpy is not installed (the
    fallback CI job runs this suite without it)."""
    if backend == "numpy":
        pytest.importorskip("numpy")


class TestPredecode:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_columns_match_records(self, backend):
        _require(backend)
        trace = fresh_trace("gcc", 4000)
        columns = predecode(trace, backend=backend)
        assert columns.n == len(trace.records)
        (flags, pcs, ops, dests, src1s, src2s, nsrcs, imms, eas,
         results, next_pcs) = columns.lists()
        for idx, rec in enumerate(trace.records):
            inst = rec.inst
            f = flags[idx]
            assert pcs[idx] == rec.pc
            assert bool(f & IS_CONTROL) == inst.is_control
            assert bool(f & IS_COND) == inst.is_conditional_branch
            assert bool(f & IS_TERM) == inst.is_path_terminating
            assert bool(f & IS_LOAD) == inst.is_load
            assert bool(f & IS_STORE) == inst.is_store
            assert bool(f & IS_TAKEN) == bool(rec.taken)
            assert bool(f & HAS_DEST) == (inst.dest is not None)
            assert bool(f & HAS_EA) == (rec.ea is not None)
            if inst.dest is not None:
                assert dests[idx] == inst.dest
            else:
                assert dests[idx] == -1
            assert nsrcs[idx] == len(inst.srcs)
            if inst.srcs:
                assert src1s[idx] == inst.srcs[0]
            if len(inst.srcs) > 1:
                assert src2s[idx] == inst.srcs[1]
            if rec.ea is not None:
                assert eas[idx] == rec.ea
            assert results[idx] == (rec.result or 0)
            assert next_pcs[idx] == rec.next_pc

    def test_backends_produce_identical_lists(self):
        trace = fresh_trace("mcf_2k", 3000)
        reference = predecode(trace, backend="python").lists()
        available = [b for b in BACKENDS if b != "numpy"]
        try:
            import numpy  # noqa: F401
            available.insert(0, "numpy")
        except ImportError:
            pass
        for backend in available:
            if backend == "python":
                continue
            got = predecode(trace, backend=backend).lists()
            assert [list(col) for col in got] \
                == [list(col) for col in reference], backend

    def test_predecode_is_memoized_per_backend(self):
        trace = fresh_trace("gcc", 500)
        first = predecode(trace, backend="python")
        assert predecode(trace, backend="python") is first
        assert predecode(trace, backend="array") is not first

    def test_env_var_forces_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
        assert resolve_backend(None) == "python"
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        assert resolve_backend("array") == "array"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_kernel_names(self):
        assert KERNEL_NAMES == ("scalar", "batched")


def ssmt_pair(name, n, config=None):
    """(scalar, batched) timing+report pairs for one workload."""
    trace = benchmark_trace(name, n)
    out = []
    for kernel in ("scalar", "batched"):
        result, engine = run_ssmt(trace, config,
                                  predictor=BranchPredictorComplex(),
                                  kernel=kernel)
        out.append((result.as_dict(),
                    json.loads(json.dumps(engine.report(), default=repr,
                                          sort_keys=True))))
    return out


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("name", ["gcc", "go", "mcf_2k"])
    def test_ssmt_identical_timing_and_report(self, name):
        (scalar_timing, scalar_report), (batched_timing, batched_report) \
            = ssmt_pair(name, 30_000)
        assert batched_timing == scalar_timing
        assert batched_report == scalar_report

    def test_baseline_identical(self):
        trace = benchmark_trace("gcc", 20_000)
        scalar = OoOTimingModel().run(trace, BranchPredictorComplex())
        batched = BatchedOoOTimingModel().run(
            trace, BranchPredictorComplex())
        assert batched.as_dict() == scalar.as_dict()

    @given(name=st.sampled_from(sorted(BENCHMARK_NAMES)),
           n=st.integers(2_000, 8_000),
           path_n=st.integers(4, 12))
    @settings(max_examples=8, deadline=None)
    def test_property_batched_equals_scalar(self, name, n, path_n):
        config = SSMTConfig(n=path_n)
        (scalar_timing, scalar_report), (batched_timing, batched_report) \
            = ssmt_pair(name, n, config)
        assert batched_timing == scalar_timing
        assert batched_report == scalar_report

    def test_payload_identity_gcc_50k(self):
        """The acceptance bar: worker payloads (the cached artifact) are
        byte-identical scalar vs batched on the gcc/50k reference — which
        is what licenses sharing one task key across kernels."""
        scalar_task = SweepTask(kind="ssmt", benchmark="gcc",
                                instructions=50_000)
        batched_task = SweepTask(kind="ssmt", benchmark="gcc",
                                 instructions=50_000, kernel="batched")
        assert scalar_task.key == batched_task.key
        scalar_payload = run_task(scalar_task)
        batched_payload = run_task(batched_task)
        assert json.dumps(batched_payload, sort_keys=True) \
            == json.dumps(scalar_payload, sort_keys=True)

    def test_unknown_listener_falls_back_to_scalar(self):
        """A listener outside the fused engine surface still works — the
        batched model must defer to the inherited scalar loop."""

        class CountingListener:
            def __init__(self):
                self.retired = 0

            def on_retire(self, idx, rec, cycle):
                self.retired += 1

        trace = benchmark_trace("gcc", 3000)
        listener = CountingListener()
        scalar = OoOTimingModel().run(trace, BranchPredictorComplex())
        batched = BatchedOoOTimingModel().run(
            trace, BranchPredictorComplex(), listener)
        assert listener.retired == 3000
        assert batched.as_dict() == scalar.as_dict()


class TestInsertDecoded:
    @given(n=st.integers(500, 3000), capacity=st.sampled_from([16, 64, 512]))
    @settings(max_examples=10, deadline=None)
    def test_matches_insert(self, n, capacity):
        trace = benchmark_trace("gcc", n)
        reference = PostRetirementBuffer(capacity)
        decoded = PostRetirementBuffer(capacity)
        for idx, rec in enumerate(trace.records):
            inst = rec.inst
            a = reference.insert(rec, idx)
            srcs = inst.srcs
            b = decoded.insert_decoded(
                rec, idx, False, False,
                inst.dest if inst.dest is not None else -1,
                srcs[0] if srcs else -1,
                srcs[1] if len(srcs) > 1 else -1,
                len(srcs), inst.is_load, inst.is_store,
                rec.ea if rec.ea is not None else 0)
            assert (a.pos, a.src_producers, a.mem_producer) \
                == (b.pos, b.src_producers, b.mem_producer)


class TestSampled:
    def test_marked_and_key_distinct(self):
        exact = SweepTask(kind="ssmt", benchmark="gcc", instructions=20_000)
        sampled = SweepTask(kind="ssmt", benchmark="gcc",
                            instructions=20_000,
                            sample=SampleSpec(interval=5_000))
        assert sampled.key != exact.key
        payload = run_task(sampled)
        assert payload["sampled"] is True
        assert payload["sample"]["interval"] == 5_000
        assert payload["sample"]["windows"] >= 1
        assert 0 < payload["sample"]["measured_fraction"] < 1
        assert "sampled" not in run_task(exact)

    def test_degenerate_spec_is_exact(self):
        """A window covering the whole trace reproduces the exact run."""
        trace = benchmark_trace("gcc", 10_000)
        exact, _ = run_ssmt(trace, predictor=BranchPredictorComplex())
        spec = SampleSpec(interval=10_000, warmup=0, measure=10_000)
        sampled, _ = run_ssmt(trace, predictor=BranchPredictorComplex(),
                              sample=spec)
        exact_dict, sampled_dict = exact.as_dict(), sampled.as_dict()
        assert sampled.sample["scale"] == 1.0
        assert sampled_dict == exact_dict

    @pytest.mark.parametrize("name", ["gcc", "mcf_2k"])
    def test_mispredict_rate_within_error_bound(self, name):
        """docs/performance.md documents <= 20% relative error on the
        suite at interval=10k/warmup=2k; hold a looser 25% here so the
        gate does not flake on workload updates."""
        trace = benchmark_trace(name, 50_000)
        exact, _ = run_ssmt(trace, predictor=BranchPredictorComplex())
        sampled, _ = run_ssmt(trace, predictor=BranchPredictorComplex(),
                              sample=SampleSpec(interval=10_000))
        exact_rate = exact.mispredict_rate()
        sampled_rate = sampled.mispredict_rate()
        assert exact_rate > 0
        assert abs(sampled_rate - exact_rate) / exact_rate <= 0.25

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SampleSpec(interval=0)
        with pytest.raises(ValueError):
            SampleSpec(interval=100, warmup=90, measure=20)
        with pytest.raises(ValueError):
            SampleSpec(interval=100, warmup=-1)
        spec = SampleSpec(interval=1000, warmup=0)
        assert spec.measure == 100  # interval // 10

    def test_sample_only_on_baseline_and_ssmt(self):
        spec = SampleSpec(interval=10_000, warmup=100)
        with pytest.raises(ValueError):
            SweepTask(kind="oracle", benchmark="gcc", instructions=20_000,
                      sample=spec)
        with pytest.raises(ValueError):
            SweepTask(kind="ssmt", benchmark="gcc", instructions=20_000,
                      sample={"interval": 10_000})


class TestRunSsmtDispatch:
    def test_unknown_kernel_rejected(self):
        trace = benchmark_trace("gcc", 1000)
        with pytest.raises(ValueError):
            run_ssmt(trace, kernel="turbo")


class TestZeroCost:
    def test_default_paths_never_import_kernel(self):
        """Scalar-kernel, unsampled tasks keep :mod:`repro.kernel` out of
        sys.modules entirely — the same hot-path guard the zoo has
        (``tests/test_zoo_zero_cost.py``): the default simulation path
        must measure exactly the code it measured before the kernel
        package existed."""
        import json as json_mod
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        program = (
            "import sys\n"
            "from repro.parallel.taskkey import SweepTask\n"
            "from repro.parallel.worker import run_task\n"
            "run_task(SweepTask(kind='baseline', benchmark='gcc',\n"
            "                   instructions=2000))\n"
            "run_task(SweepTask(kind='ssmt', benchmark='gcc',\n"
            "                   instructions=2000))\n"
            "kernel = [m for m in sys.modules\n"
            "          if m.startswith('repro.kernel')]\n"
            "print(__import__('json').dumps({'kernel_modules': kernel}))\n"
        )
        proc = subprocess.run([sys.executable, "-c", program],
                              capture_output=True, text=True,
                              env={"PYTHONPATH": src, "PATH": ""},
                              check=True)
        outcome = json_mod.loads(proc.stdout.strip().splitlines()[-1])
        assert outcome["kernel_modules"] == []
