"""The hot-path optimization pass must not change simulation semantics.

Every rewrite in the ``repro.perf`` PR claims bit-identity with what it
replaced; this module is where each claim is checked against an oracle:

* the ``array``-backed :class:`SaturatingCounterTable` against the seed
  list-backed :class:`ReferenceSaturatingCounterTable` (including
  saturation boundaries at 1/2/3-bit widths),
* every predictor's fused ``predict_and_update`` against a split
  ``predict`` + ``update`` twin — prediction stream *and* internal
  state,
* the :class:`PathTracker`'s incremental ``Path_Id`` hash against the
  :func:`path_id_hash` reference recompute,
* plus a smoke test of the :class:`ProfileHarness` artifact itself.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.base import SaturatingCounterTable
from repro.branch.gshare import GsharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.pas import PAsPredictor
from repro.core.path import PathTracker, path_id_hash
from repro.isa.instructions import Instruction, Opcode
from repro.perf import ProfileHarness, ReferenceSaturatingCounterTable
from repro.perf.harness import classify
from repro.sim.trace import DynamicInstruction

# -- SaturatingCounterTable: array backing vs the seed list backing ------------


def test_counter_table_initial_state_matches_reference():
    for bits in (1, 2, 3, 5, 7, 8):
        fast = SaturatingCounterTable(16, bits=bits)
        ref = ReferenceSaturatingCounterTable(16, bits=bits)
        assert list(fast.table) == ref.table
        assert (fast.threshold, fast.max_value) == (ref.threshold,
                                                    ref.max_value)


def test_counter_saturates_at_max_and_min():
    """Boundary behavior per width: no wrap past 0 or 2**bits - 1."""
    for bits in (1, 2, 3):
        table = SaturatingCounterTable(4, bits=bits)
        top = (1 << bits) - 1
        for _ in range(top + 3):        # overshoot on purpose
            table.update(0, taken=True)
        assert table.counter(0) == top
        assert table.predict(0)
        for _ in range(top + 3):
            table.update(0, taken=False)
        assert table.counter(0) == 0
        assert not table.predict(0)
        # One increment from the floor must land at exactly 1.
        table.update(0, taken=True)
        assert table.counter(0) == 1


def test_one_bit_counter_flips_in_one_update():
    table = SaturatingCounterTable(2, bits=1)
    assert table.predict(0)             # starts at threshold (taken)
    table.update(0, taken=False)
    assert not table.predict(0)
    table.update(0, taken=True)
    assert table.predict(0)


@settings(max_examples=50)
@given(st.integers(1, 8), st.integers(0, 6),
       st.lists(st.tuples(st.integers(0, 2**20), st.booleans()),
                max_size=300))
def test_counter_table_bit_identical_to_reference(bits, log_entries, stream):
    entries = 1 << log_entries
    fast = SaturatingCounterTable(entries, bits=bits)
    ref = ReferenceSaturatingCounterTable(entries, bits=bits)
    for index, taken in stream:
        assert fast.predict(index) == ref.predict(index)
        fast.update(index, taken)
        ref.update(index, taken)
    assert list(fast.table) == ref.table


# -- fused predict_and_update vs the split sequence ----------------------------

_PREDICTORS = {
    "gshare": lambda: GsharePredictor(entries=256, history_bits=6),
    "pas": lambda: PAsPredictor(history_entries=16, history_bits=4,
                                pht_sets=4),
    "hybrid": lambda: HybridPredictor(
        gshare=GsharePredictor(entries=256, history_bits=6),
        pas=PAsPredictor(history_entries=16, history_bits=4, pht_sets=4),
        selector_entries=64),
}


def _state(predictor):
    """Full observable predictor state, tables included."""
    if isinstance(predictor, HybridPredictor):
        return (_state(predictor.gshare), _state(predictor.pas),
                list(predictor.selector.table),
                predictor.used_gshare_count, predictor.used_pas_count)
    if isinstance(predictor, GsharePredictor):
        return (list(predictor.table.table), predictor.history)
    return (list(predictor.pht.table), list(predictor.bht))


@settings(max_examples=40)
@given(st.sampled_from(sorted(_PREDICTORS)),
       st.lists(st.tuples(st.integers(0, 2**16), st.booleans()),
                max_size=200))
def test_fused_predict_and_update_is_bit_identical(name, stream):
    fused = _PREDICTORS[name]()
    split = _PREDICTORS[name]()
    for pc, taken in stream:
        expected = split.predict(pc)
        split.update(pc, taken)
        assert fused.predict_and_update(pc, taken) == expected
        assert _state(fused) == _state(split)


# -- PathTracker incremental hash vs reference recompute -----------------------


def _control_rec(pc, taken, seq=0):
    inst = Instruction(Opcode.BEQ, rd=0, rs1=1, rs2=2, imm=4, pc=pc)
    return DynamicInstruction(seq=seq, inst=inst, taken=taken,
                              next_pc=pc + (8 if taken else 4))


@settings(max_examples=40)
@given(st.integers(1, 12), st.sampled_from([1, 2, 8, 16, 24]),
       st.lists(st.tuples(st.integers(0, 2**32), st.booleans()),
                max_size=200))
def test_incremental_path_id_matches_reference_hash(n, bits, stream):
    tracker = PathTracker(n, id_bits=bits)
    for idx, (pc, taken) in enumerate(stream):
        event = tracker.observe(_control_rec(pc, taken), idx)
        window = tracker.current_branches()
        assert tracker.current_path_id() == path_id_hash(window, bits)
        if event is not None:
            assert event.path_id == path_id_hash(event.key.branches, bits)
            assert len(window) <= n


def test_path_tracker_reset_clears_incremental_hash():
    tracker = PathTracker(4)
    for idx in range(10):
        tracker.observe(_control_rec(0x1000 + 8 * idx, True), idx)
    assert tracker.current_path_id() != 0
    tracker.reset()
    assert tracker.current_path_id() == 0
    assert tracker.current_branches() == ()


# -- ProfileHarness ------------------------------------------------------------


def test_classify_buckets_by_module_path():
    assert classify("/x/src/repro/branch/gshare.py") == "branch_unit"
    assert classify("/x/src/repro/core/path_cache.py") == "path_cache"
    assert classify("/x/src/repro/core/path.py") == "path_tracking"
    assert classify("/x/src/repro/telemetry/sampler.py") == "telemetry"
    assert classify("~") == "other"
    assert classify("C:\\x\\repro\\uarch\\timing.py".replace("\\", "/")) \
        == "timing_model"


def test_profile_harness_emits_repro_perf_artifact(tmp_path):
    report = ProfileHarness("comp", instructions=2_000, top=5).run()
    out = tmp_path / "perf.json"
    report.write(str(out))
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.perf/1"
    assert payload["benchmark"] == "comp"
    assert payload["instructions"] == 2_000
    assert payload["instructions_per_second"] > 0
    subsystems = payload["subsystems"]
    # The engine's core loops must all be visible in the breakdown.
    for name in ("timing_model", "ssmt_engine", "prb", "branch_unit"):
        assert name in subsystems, f"missing {name} bucket"
        assert subsystems[name]["calls"] > 0
    total_fraction = sum(row["fraction"] for row in subsystems.values())
    assert abs(total_fraction - 1.0) < 1e-6
    assert len(payload["top_functions"]) <= 5
    assert report.format_table().splitlines()[0].startswith("subsystem")


def test_profile_harness_telemetry_mode_buckets_telemetry_time():
    report = ProfileHarness("comp", instructions=2_000,
                            telemetry=True).run()
    assert report.payload["telemetry_attached"] is True
    assert "telemetry" in report.subsystems


# -- deterministic replay: optimizations must not perturb simulation -----------


def test_random_counter_walk_regression():
    """A fixed-seed random walk pins the exact counter trajectory."""
    rng = random.Random(1234)
    table = SaturatingCounterTable(64, bits=2)
    ref = ReferenceSaturatingCounterTable(64, bits=2)
    for _ in range(2_000):
        index, taken = rng.randrange(1 << 16), rng.random() < 0.6
        table.update(index, taken)
        ref.update(index, taken)
    assert list(table.table) == ref.table
