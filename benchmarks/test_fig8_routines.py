"""Figure 8: mean microthread routine size and mean longest dependence
chain, with and without pruning.

Expected shape (paper): pruning shortens the critical dependence chain
everywhere; routine size usually shrinks, but can grow slightly where an
Ap_Inst replaces a live-in (the paper's compress example).
"""

import statistics


from benchmarks.conftest import realistic_results
from repro.analysis import format_table
from repro.analysis.experiments import figure8_routines


def test_figure8(benchmark, suite, trace_length):
    results = realistic_results(suite, trace_length)
    rows_data = benchmark.pedantic(figure8_routines, args=(results,),
                                   rounds=1, iterations=1)
    rows = []
    for name, d in rows_data.items():
        rows.append([
            name,
            round(d["size_no_pruning"], 2), round(d["size_pruning"], 2),
            round(d["chain_no_pruning"], 2), round(d["chain_pruning"], 2),
        ])
    means = [statistics.mean(d[k] for d in rows_data.values())
             for k in ("size_no_pruning", "size_pruning",
                       "chain_no_pruning", "chain_pruning")]
    rows.append(["MEAN"] + [round(m, 2) for m in means])
    print()
    print(format_table(
        ["bench", "size (np)", "size (p)", "chain (np)", "chain (p)"],
        rows, title="Figure 8 (reproduced): routine size & dep chain"))

    size_np, size_p, chain_np, chain_p = means
    assert chain_p <= chain_np, \
        "pruning must shorten the mean dependence chain"
    assert size_p <= size_np * 1.15, \
        "pruned routines must not balloon in size"
    assert chain_np > 1.0 and size_np > 2.0
