"""Figure 6: potential speed-up from perfect prediction of difficult-path
terminating branches (8K-entry Path Cache, training interval 32, T=.10,
n in {4, 10, 16}).

Expected shape (paper): clear gains well short of full perfect-prediction
headroom — the realistic Path Cache cannot track the sheer number of
difficult paths; moderate sensitivity to n.
"""

import statistics


from repro.analysis import format_table
from repro.analysis.experiments import figure6_potential

NS = (4, 10, 16)


def test_figure6(benchmark, suite, trace_length):
    results = benchmark.pedantic(
        figure6_potential,
        kwargs=dict(benchmarks=suite, ns=NS, threshold=0.10,
                    trace_length=trace_length),
        rounds=1, iterations=1)
    rows = [[name] + [round(per_n[n], 3) for n in NS]
            for name, per_n in results.items()]
    means = [statistics.mean(per_n[n] for per_n in results.values())
             for n in NS]
    rows.append(["MEAN"] + [round(m, 3) for m in means])
    print()
    print(format_table(["bench"] + [f"n={n}" for n in NS], rows,
                       title="Figure 6 (reproduced): potential speed-up"))

    for n, mean in zip(NS, means):
        assert mean > 1.0, f"potential at n={n} must be a net win"
    # potential must stay below the intro's full perfect-prediction 2x
    assert max(means) < 2.0
