"""Path_Id aliasing (paper §4.3.3: "aliasing is almost non-existent").

Measures, per hash width, how many distinct paths collide and what
fraction of dynamic occurrences land on collided ids.  At the default
24-bit width aliasing should be negligible; narrow widths show the
breakdown point.
"""

import statistics


from repro.analysis import collect_control_events, format_table
from repro.analysis.aliasing import path_id_aliasing
from repro.workloads import benchmark_trace

ALIAS_BENCHMARKS = ("gcc", "go", "vpr_2k", "comp")
BITS = (12, 16, 20, 24)


def run_aliasing(benchmarks, trace_length):
    table = {}
    for name in benchmarks:
        events = collect_control_events(benchmark_trace(name, trace_length))
        table[name] = path_id_aliasing(events, n=10, bits_list=BITS)
    return table


def test_path_id_aliasing(benchmark, trace_length):
    table = benchmark.pedantic(run_aliasing,
                               args=(ALIAS_BENCHMARKS, trace_length),
                               rounds=1, iterations=1)
    rows = []
    for name, results in table.items():
        row = [name, results[0].unique_paths]
        for r in results:
            row.append(round(100 * r.occurrence_alias_rate, 3))
        rows.append(row)
    print()
    print(format_table(
        ["bench", "paths"] + [f"{b}b alias%" for b in BITS], rows,
        title="Path_Id aliasing vs hash width (paper §4.3.3)"))

    # at the default 24-bit width aliasing must be negligible
    rates_24 = [results[-1].occurrence_alias_rate
                for results in table.values()]
    assert statistics.mean(rates_24) < 0.01
    # aliasing decreases (weakly) with width
    for results in table.values():
        rates = [r.occurrence_alias_rate for r in results]
        assert rates[0] >= rates[-1]
