"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of its design arguments:

* allocate-on-mispredict vs allocate-always in the Path Cache,
* difficulty-aware LRU vs plain LRU,
* training-interval sensitivity (8 / 32 / 128),
* abort mechanism on vs off,
* Prediction Cache size (the paper argues 128 entries suffice),
* memory-dependence rebuild on vs off (stop-at-memdep always).

Ablations run on a representative subset so the bench stays tractable.
All configs fan through :class:`repro.parallel.SweepRunner`, so setting
``$REPRO_JOBS`` parallelises the ablation grid.
"""

import statistics


from repro.analysis import format_table
from repro.core.ssmt import SSMTConfig
from repro.parallel import SweepRunner, SweepTask, point_ipc

ABLATION_BENCHMARKS = ("gcc", "go", "mcf_2k", "eon_2k", "comp", "parser_2k")


def _sweep(benchmarks, trace_length, configs):
    """Run each named config; return {config: {bench: (speedup, metrics)}}."""
    tasks = [SweepTask(kind="baseline", benchmark=name,
                       instructions=trace_length)
             for name in benchmarks]
    for label, config in configs.items():
        for name in benchmarks:
            tasks.append(SweepTask(kind="ssmt", benchmark=name,
                                   instructions=trace_length,
                                   label=label, config=config))
    outcome = SweepRunner().run(tasks)
    if outcome.failures:
        raise RuntimeError(f"ablation sweep failed: {outcome.errors}")
    results = outcome.results
    baselines = {name: point_ipc(results[i])
                 for i, name in enumerate(benchmarks)}
    out = {label: {} for label in configs}
    i = len(benchmarks)
    for label in configs:
        for name in benchmarks:
            point = results[i]
            out[label][name] = (point_ipc(point) / baselines[name],
                                point["metrics"])
            i += 1
    return out


def _print_speedups(title, sweep):
    labels = list(sweep)
    benchmarks = list(next(iter(sweep.values())))
    rows = []
    for name in benchmarks:
        rows.append([name] + [round(sweep[label][name][0], 3)
                              for label in labels])
    rows.append(["MEAN"] + [
        round(statistics.mean(sweep[label][n][0] for n in benchmarks), 3)
        for label in labels])
    print()
    print(format_table(["bench"] + labels, rows, title=title))
    return {label: statistics.mean(sweep[label][n][0] for n in benchmarks)
            for label in labels}


class TestPathCachePolicies:
    def test_allocation_policy(self, benchmark, trace_length):
        configs = {
            "on-mispredict": SSMTConfig(),
            "always": SSMTConfig(allocate_on_mispredict_only=False),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: Path Cache allocation policy",
                                sweep)
        # Both must work; allocate-on-mispredict must not lose materially
        # while filtering most allocations (checked via engine stats).
        assert means["on-mispredict"] > means["always"] - 0.02
        metrics = sweep["on-mispredict"][ABLATION_BENCHMARKS[0]][1]
        assert metrics["path_cache"]["allocation_avoid_rate"] > 0.4

    def test_replacement_policy(self, benchmark, trace_length):
        configs = {
            "difficulty-lru": SSMTConfig(),
            "plain-lru": SSMTConfig(difficulty_aware_lru=False),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: Path Cache replacement", sweep)
        assert means["difficulty-lru"] > means["plain-lru"] - 0.02


class TestTrainingInterval:
    def test_interval_sensitivity(self, benchmark, trace_length):
        configs = {
            "interval-8": SSMTConfig(training_interval=8),
            "interval-32": SSMTConfig(training_interval=32),
            "interval-128": SSMTConfig(training_interval=128),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: training interval", sweep)
        # All intervals must produce a working mechanism.
        for mean in means.values():
            assert mean > 0.97


class TestAbortMechanism:
    def test_abort_on_off(self, benchmark, trace_length):
        configs = {
            "abort-on": SSMTConfig(),
            "abort-off": SSMTConfig(abort_enabled=False),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: abort mechanism", sweep)
        # Aborts reclaim contexts: with aborts on, more spawns complete.
        on_metrics = sweep["abort-on"]["gcc"][1]
        off_metrics = sweep["abort-off"]["gcc"][1]
        assert on_metrics["spawn"]["aborted_active"] > 0
        assert off_metrics["spawn"]["aborted_active"] == 0
        assert means["abort-on"] >= means["abort-off"] - 0.02


class TestBuilderSensitivity:
    def test_build_latency_insensitive_unless_extreme(self, benchmark,
                                                      trace_length):
        """Paper §4.2.2: "the microthread build latency, unless extreme,
        does not significantly influence performance"."""
        configs = {
            "latency-10": SSMTConfig(build_latency=10),
            "latency-100": SSMTConfig(build_latency=100),
            "latency-1000": SSMTConfig(build_latency=1000),
            "latency-50000": SSMTConfig(build_latency=50_000),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: builder latency (paper §4.2.2)",
                                sweep)
        # 10..1000 cycles: insignificant differences
        assert abs(means["latency-10"] - means["latency-100"]) < 0.03
        assert abs(means["latency-1000"] - means["latency-100"]) < 0.05
        # extreme latency erodes the benefit
        assert means["latency-50000"] < means["latency-100"]

    def test_second_builder_port_changes_little(self, benchmark,
                                                trace_length):
        """A single builder suffices (paper §4.2.2's design assumption)."""
        configs = {
            "one-builder": SSMTConfig(builder_ports=1),
            "four-builders": SSMTConfig(builder_ports=4),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: builder ports", sweep)
        assert abs(means["one-builder"] - means["four-builders"]) < 0.05


class TestClassificationGranularity:
    def test_path_vs_branch_classification(self, benchmark, trace_length):
        """The paper's central design choice (§3.2.1): classify
        difficulty per *path*, not per *branch*.

        Expected shape: path classification wins on average (higher
        prediction precision, fewer useless spawns on easy paths);
        branch classification can win on benchmarks with so many unique
        paths that per-path training dilutes below the training interval
        — the same Path Cache tracking limit the paper reports for
        gcc/go in §5.2.
        """
        configs = {
            "by-path": SSMTConfig(),
            "by-branch": SSMTConfig(classify_by_branch=True),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: classification granularity",
                                sweep)
        assert means["by-path"] > 1.0
        assert means["by-path"] >= means["by-branch"] - 0.03


class TestPredictionCacheSize:
    def test_small_cache_suffices(self, benchmark, trace_length):
        """Paper §4.3.3: 128 entries perform like a much larger cache."""
        configs = {
            "pc-16": SSMTConfig(prediction_cache_entries=16),
            "pc-128": SSMTConfig(prediction_cache_entries=128),
            "pc-4096": SSMTConfig(prediction_cache_entries=4096),
        }
        sweep = benchmark.pedantic(
            _sweep, args=(ABLATION_BENCHMARKS, trace_length, configs),
            rounds=1, iterations=1)
        means = _print_speedups("Ablation: Prediction Cache size", sweep)
        assert means["pc-128"] > means["pc-4096"] - 0.01, \
            "128 entries must match a 4096-entry cache"
