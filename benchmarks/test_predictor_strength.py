"""Baseline-predictor-strength sensitivity.

The paper stresses that it improves an *aggressive* baseline ("it is
more difficult to improve performance when the primary thread already
achieves high performance", §5.1).  This bench runs the mechanism
against weak (bimodal), medium (gshare-only) and strong (full hybrid)
baselines — each compared to its own predictor's baseline run — to show
the gain persists on the strong baseline while weaker predictors leave
more for microthreads to harvest.
"""

import statistics


from repro.analysis import format_table
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.uarch.timing import OoOTimingModel
from repro.workloads import benchmark_trace

STRENGTH_BENCHMARKS = ("comp", "gcc", "mcf_2k", "parser_2k")


def make_units():
    """Factories for the three predictor strengths."""
    return {
        "bimodal-4K": lambda: BranchPredictorComplex(
            direction=BimodalPredictor(entries=4096)),
        "gshare-16K": lambda: BranchPredictorComplex(
            direction=GsharePredictor(entries=16 * 1024, history_bits=12)),
        "hybrid-128K": lambda: BranchPredictorComplex(),
    }


def run_strength_sweep(benchmarks, trace_length):
    rows = []
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        row = [name]
        for label, factory in make_units().items():
            base = OoOTimingModel().run(trace, factory())
            ssmt, _ = run_ssmt(trace, SSMTConfig(), predictor=factory())
            row += [round(100 * (1 - base.mispredict_rate()), 1),
                    round(ssmt.ipc / base.ipc, 3)]
        rows.append(row)
    return rows


def test_predictor_strength(benchmark, trace_length):
    rows = benchmark.pedantic(run_strength_sweep,
                              args=(STRENGTH_BENCHMARKS, trace_length),
                              rounds=1, iterations=1)
    headers = ["bench"]
    for label in make_units():
        headers += [f"{label}:acc%", f"{label}:SU"]
    print()
    print(format_table(headers, rows,
                       title="Baseline predictor strength vs SSMT gain"))

    mean_weak = statistics.mean(row[2] for row in rows)
    mean_strong = statistics.mean(row[6] for row in rows)
    # the mechanism must still win on the aggressive baseline...
    assert mean_strong > 1.0
    # ...and weaker baselines leave at least as much on the table
    assert mean_weak >= mean_strong - 0.02
    # sanity: the hybrid really is the most accurate baseline
    acc_weak = statistics.mean(row[1] for row in rows)
    acc_strong = statistics.mean(row[5] for row in rows)
    assert acc_strong > acc_weak
