"""Baseline-predictor-strength sensitivity.

The paper stresses that it improves an *aggressive* baseline ("it is
more difficult to improve performance when the primary thread already
achieves high performance", §5.1).  This bench runs the mechanism
against weak (bimodal), medium (gshare-only) and strong (full hybrid)
baselines — each compared to its own predictor's baseline run — to show
the gain persists on the strong baseline while weaker predictors leave
more for microthreads to harvest.

The zoo baselines (``docs/predictors.md``) extend the strength axis past
2002: TAGE-lite, a hashed perceptron and an H2P-augmented TAGE ride the
same sweep, and the per-unit accuracy/speed-up pairs are written to
``BENCH_predictors.json`` (schema ``repro.bench/1``) so predictor
strength joins the benchmark trajectory CI archives.
"""

import os
import statistics

import pytest

from repro.analysis import format_table
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.unit import BranchPredictorComplex
from repro.branch.zoo import ARENA_BASELINES, make_complex
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.telemetry import write_bench_json
from repro.uarch.timing import OoOTimingModel
from repro.workloads import benchmark_trace

STRENGTH_BENCHMARKS = ("comp", "gcc", "mcf_2k", "parser_2k")

_RESULTS = {}


def make_units():
    """Factories for the classic strengths plus the zoo baselines.

    Order matters: the strength assertions index the classic triple
    (bimodal/gshare/hybrid) by position, so zoo units append after.
    """
    return {
        "bimodal-4K": lambda: BranchPredictorComplex(
            direction=BimodalPredictor(entries=4096)),
        "gshare-16K": lambda: BranchPredictorComplex(
            direction=GsharePredictor(entries=16 * 1024, history_bits=12)),
        "hybrid-128K": lambda: BranchPredictorComplex(),
        "tage-lite": lambda: make_complex(ARENA_BASELINES["tage"]),
        "perceptron": lambda: make_complex(ARENA_BASELINES["perceptron"]),
        "h2p-tage": lambda: make_complex(ARENA_BASELINES["h2p-tage"]),
    }


@pytest.fixture(scope="module", autouse=True)
def _bench_artifact():
    """Write BENCH_predictors.json after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    path = os.environ.get("REPRO_BENCH_PREDICTORS_JSON",
                          "BENCH_predictors.json")
    write_bench_json(path, "predictors", dict(_RESULTS), context={
        "benchmarks": list(STRENGTH_BENCHMARKS),
    })


def run_strength_sweep(benchmarks, trace_length):
    units = make_units()
    rows = []
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        row = [name]
        for label, factory in units.items():
            base = OoOTimingModel().run(trace, factory())
            ssmt, _ = run_ssmt(trace, SSMTConfig(), predictor=factory())
            accuracy = round(100 * (1 - base.mispredict_rate()), 1)
            speedup = round(ssmt.ipc / base.ipc, 3)
            row += [accuracy, speedup]
            _RESULTS.setdefault(label, {})[name] = {
                "accuracy_pct": accuracy,
                "ssmt_speedup": speedup,
            }
        rows.append(row)
    return rows


def test_predictor_strength(benchmark, trace_length):
    rows = benchmark.pedantic(run_strength_sweep,
                              args=(STRENGTH_BENCHMARKS, trace_length),
                              rounds=1, iterations=1)
    headers = ["bench"]
    for label in make_units():
        headers += [f"{label}:acc%", f"{label}:SU"]
    print()
    print(format_table(headers, rows,
                       title="Baseline predictor strength vs SSMT gain"))

    mean_weak = statistics.mean(row[2] for row in rows)
    mean_strong = statistics.mean(row[6] for row in rows)
    # the mechanism must still win on the aggressive baseline...
    assert mean_strong > 1.0
    # ...and weaker baselines leave at least as much on the table
    assert mean_weak >= mean_strong - 0.02
    # sanity: the hybrid really is the most accurate baseline
    acc_weak = statistics.mean(row[1] for row in rows)
    acc_strong = statistics.mean(row[5] for row in rows)
    assert acc_strong > acc_weak
    # the zoo rode along: every unit reported every benchmark
    assert set(_RESULTS) == set(make_units())
    for per_bench in _RESULTS.values():
        assert set(per_bench) == set(STRENGTH_BENCHMARKS)
