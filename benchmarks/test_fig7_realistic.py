"""Figure 7: realistic speed-up of the full mechanism (n=10, T=.10,
build latency 100): without pruning, with pruning, and overhead-only.

Expected shape (paper): average gain of several percent (8.4% in the
paper) with pruning > no-pruning; overhead-only near 1.0 with occasional
losses (eon-like benchmarks) and prefetch-driven gains (mcf-like).

Also reports the §4.3.2 abort-rate claims (~67% of attempted spawns
aborted pre-allocation, ~66% of successful spawns aborted in flight) and
the §4.1 claim that allocate-on-mispredict avoids ~45% of allocations.
"""

import statistics


from benchmarks.conftest import realistic_results
from repro.analysis import format_table


def test_figure7(benchmark, suite, trace_length):
    results = benchmark.pedantic(
        realistic_results, args=(suite, trace_length), rounds=1, iterations=1)
    rows = []
    for r in results:
        rows.append([
            r.benchmark,
            round(r.baseline_ipc, 2),
            round(r.speedup_no_pruning, 3),
            round(r.speedup_pruning, 3),
            round(r.speedup_overhead_only, 3),
        ])
    mean_np = statistics.mean(r.speedup_no_pruning for r in results)
    mean_p = statistics.mean(r.speedup_pruning for r in results)
    mean_o = statistics.mean(r.speedup_overhead_only for r in results)
    rows.append(["MEAN", "",
                 round(mean_np, 3), round(mean_p, 3), round(mean_o, 3)])
    print()
    print(format_table(
        ["bench", "base IPC", "no-pruning", "pruning", "overhead-only"],
        rows, title="Figure 7 (reproduced): realistic speed-up"))

    # paper-claim side-statistics
    stat_rows = []
    for r in results:
        spawn = r.pruning_metrics["spawn"]
        path_cache = r.pruning_metrics["path_cache"]
        stat_rows.append([
            r.benchmark,
            round(100 * spawn["pre_allocation_abort_rate"], 1),
            round(100 * spawn["active_abort_rate"], 1),
            round(100 * path_cache["allocation_avoid_rate"], 1),
        ])
    print()
    print(format_table(
        ["bench", "pre-alloc abort%", "active abort%", "alloc avoided%"],
        stat_rows, title="Spawn/PathCache statistics (paper §4.3.2, §4.1)"))

    assert mean_p > 1.0, "the mechanism must be a net average win"
    assert mean_p >= mean_np - 0.005, "pruning should not lose on average"
    assert 0.9 < mean_o < 1.15, "overhead-only must hover near 1.0"
    # allocate-on-mispredict avoids a large share of allocations
    avoid = statistics.mean(row[3] for row in stat_rows)
    assert avoid > 40.0
