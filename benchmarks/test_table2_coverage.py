"""Table 2: misprediction and execution coverage of difficult branches
vs difficult paths (n in {4, 10, 16}; T in {.05, .10, .15}).

Expected shape (paper): moving from branch- to path-classification
raises misprediction coverage while lowering execution coverage, and
longer paths push further in the same direction.
"""

import statistics


from repro.analysis import collect_control_events, coverage_analysis, format_table
from repro.workloads import benchmark_trace

NS = (4, 10, 16)
THRESHOLDS = (0.05, 0.10, 0.15)


def run_table2(benchmarks, trace_length):
    table = {}
    for name in benchmarks:
        events = collect_control_events(benchmark_trace(name, trace_length))
        table[name] = coverage_analysis(events, ns=NS, thresholds=THRESHOLDS)
    return table


def test_table2(benchmark, suite, trace_length):
    table = benchmark.pedantic(run_table2, args=(suite, trace_length),
                               rounds=1, iterations=1)
    schemes = ["branch"] + [f"path({n})" for n in NS]
    for threshold in THRESHOLDS:
        rows = []
        for name, results in table.items():
            row = [name]
            for scheme in schemes:
                r = next(x for x in results
                         if x.scheme == scheme and x.threshold == threshold)
                row += [round(100 * r.mispredict_coverage, 1),
                        round(100 * r.execution_coverage, 1)]
            rows.append(row)
        headers = ["bench"]
        for scheme in schemes:
            headers += [f"{scheme}:mis%", f"{scheme}:exe%"]
        print()
        print(format_table(headers, rows,
                           title=f"Table 2 (reproduced), T={threshold}"))

    # Shape assertions at T=0.10, averaged over the suite (the paper's
    # aggregate direction; individual benchmarks may deviate slightly).
    def mean_coverage(scheme, threshold, attribute):
        values = []
        for results in table.values():
            r = next(x for x in results
                     if x.scheme == scheme and x.threshold == threshold)
            values.append(getattr(r, attribute))
        return statistics.mean(values)

    branch_exe = mean_coverage("branch", 0.10, "execution_coverage")
    path16_exe = mean_coverage("path(16)", 0.10, "execution_coverage")
    assert path16_exe <= branch_exe, \
        "paths must lower execution coverage on average"

    branch_mis = mean_coverage("branch", 0.10, "mispredict_coverage")
    path16_mis = mean_coverage("path(16)", 0.10, "mispredict_coverage")
    assert path16_mis >= branch_mis - 0.02, \
        "paths must not lose misprediction coverage on average"
