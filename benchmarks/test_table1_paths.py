"""Table 1: unique paths, mean scope, difficult-path counts.

Regenerates the paper's Table 1 over the synthetic suite: for each
benchmark and n in {4, 10, 16}, the number of unique paths, the mean
scope size in instructions, and the number of difficult paths at
T in {.05, .10, .15}.

Expected shape (paper): unique paths and scope grow steeply with n; the
difficult-path count is remarkably stable across T; gcc/go dominate path
counts while comp/li are small.
"""


from repro.analysis import (
    characterize_paths,
    collect_control_events,
    format_table,
)
from repro.workloads import benchmark_trace

NS = (4, 10, 16)
THRESHOLDS = (0.05, 0.10, 0.15)


def run_table1(benchmarks, trace_length):
    rows = []
    for name in benchmarks:
        events = collect_control_events(benchmark_trace(name, trace_length))
        row = [name]
        for n in NS:
            c = characterize_paths(events, n, THRESHOLDS)
            row.extend([
                c.unique_paths,
                round(c.mean_scope, 2),
                c.difficult_paths[0.05],
                c.difficult_paths[0.10],
                c.difficult_paths[0.15],
            ])
        rows.append(row)
    return rows


def test_table1(benchmark, suite, trace_length):
    rows = benchmark.pedantic(run_table1, args=(suite, trace_length),
                              rounds=1, iterations=1)
    headers = ["bench"]
    for n in NS:
        headers += [f"n{n}:paths", f"n{n}:scope",
                    f"n{n}:T.05", f"n{n}:T.10", f"n{n}:T.15"]
    print()
    print(format_table(headers, rows, title="Table 1 (reproduced)"))

    by_name = {row[0]: row for row in rows}
    for row in rows:
        paths4, paths10, paths16 = row[1], row[6], row[11]
        assert paths4 <= paths10 <= paths16, "paths must grow with n"
        scope4, scope16 = row[2], row[12]
        assert scope4 < scope16, "scope must grow with n"
        # difficult counts decrease (weakly) as T rises
        assert row[3] >= row[4] >= row[5]
    if "gcc" in by_name and "comp" in by_name:
        assert by_name["gcc"][1] > by_name["comp"][1], \
            "gcc must have far more paths than comp"
