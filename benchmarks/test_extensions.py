"""Extensions beyond the paper's evaluation.

* **Profile-guided vs dynamic identification** — the paper names
  compiler-assisted difficult-path identification as future work (§5.2,
  §6) and mentions compile-time implementations were investigated (§4).
  This bench quantifies the gap on our traces: offline profiling sees
  every path (no Path Cache capacity limit) and the static MicroRAM
  image has no warm-up ramp or build latency.
* **Throttling feedback** — §5.3: "We are experimenting with feedback
  mechanisms to throttle microthread usage"; measured here as an on/off
  ablation.
"""

import statistics


from repro.analysis import format_table
from repro.analysis.experiments import baseline_run
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.core.static import run_profile_guided
from repro.workloads import benchmark_trace

EXTENSION_BENCHMARKS = ("comp", "gcc", "go", "mcf_2k", "eon_2k", "parser_2k")


def run_static_vs_dynamic(benchmarks, trace_length):
    rows = []
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        base = baseline_run(trace)
        dynamic, _ = run_ssmt(trace, SSMTConfig())
        static, engine = run_profile_guided(trace, SSMTConfig())
        rows.append([
            name,
            round(dynamic.ipc / base.ipc, 3),
            round(static.ipc / base.ipc, 3),
            len(engine.microram),
        ])
    return rows


def test_profile_guided_vs_dynamic(benchmark, trace_length):
    rows = benchmark.pedantic(
        run_static_vs_dynamic, args=(EXTENSION_BENCHMARKS, trace_length),
        rounds=1, iterations=1)
    means = [statistics.mean(row[i] for row in rows) for i in (1, 2)]
    rows.append(["MEAN", round(means[0], 3), round(means[1], 3), ""])
    print()
    print(format_table(
        ["bench", "dynamic", "profile-guided", "static routines"],
        rows, title="Extension: compile-time path identification"))
    # The compile-time variant must not lose to the dynamic mechanism on
    # average (it sees all paths and pays no warm-up).
    assert means[1] >= means[0] - 0.01


def run_throttle(benchmarks, trace_length):
    rows = []
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        base = baseline_run(trace)
        plain, _ = run_ssmt(trace, SSMTConfig())
        throttled, engine = run_ssmt(trace, SSMTConfig(
            throttle_enabled=True, throttle_window=32,
            throttle_useless_fraction=0.9))
        rows.append([
            name,
            round(plain.ipc / base.ipc, 3),
            round(throttled.ipc / base.ipc, 3),
            engine.throttled_paths,
        ])
    return rows


def test_throttling_feedback(benchmark, trace_length):
    rows = benchmark.pedantic(
        run_throttle, args=(EXTENSION_BENCHMARKS, trace_length),
        rounds=1, iterations=1)
    means = [statistics.mean(row[i] for row in rows) for i in (1, 2)]
    rows.append(["MEAN", round(means[0], 3), round(means[1], 3), ""])
    print()
    print(format_table(
        ["bench", "no throttle", "throttle", "paths throttled"],
        rows, title="Extension: usefulness-feedback throttling (§5.3)"))
    # A conservative throttle must not hurt materially.
    assert means[1] >= means[0] - 0.02
