"""Machine-width sensitivity (paper §1 and §5.1 motivation).

The paper argues the mechanism matters most on wide, deep machines:
misprediction penalties grow relative to useful work, and wide machines
have spare execution bandwidth for microthreads.  This bench sweeps the
machine width (fetch/issue/retire) with per-width baselines.

The sweep executes through :class:`repro.parallel.SweepRunner`; set
``$REPRO_JOBS`` to fan the (width x benchmark) grid across a process
pool — the resulting speed-ups are bit-identical either way.
"""


from repro.analysis.sweeps import sweep_machine_width, sweep_report

WIDTH_BENCHMARKS = ("comp", "gcc", "mcf_2k", "parser_2k")
WIDTHS = (4, 8, 16)


def test_width_sweep(benchmark, trace_length):
    points = benchmark.pedantic(
        sweep_machine_width,
        args=(WIDTHS, WIDTH_BENCHMARKS, trace_length),
        rounds=1, iterations=1)
    print()
    print(sweep_report(points, "machine width"))
    by_width = {p.setting: p.mean_speedup for p in points}
    # The mechanism must help at the paper's 16-wide point...
    assert by_width[16] > 1.0
    # ...and a wide machine should benefit at least as much as a narrow
    # one (spare capacity + bigger exposed penalties).
    assert by_width[16] >= by_width[4] - 0.03
