"""Shared configuration for the benchmark harness.

Environment knobs:

``REPRO_BENCH_TRACE``
    dynamic instructions per benchmark trace (default 400000, the suite
    default).  Lower it for quick smoke runs.
``REPRO_BENCH_SUITE``
    comma-separated benchmark names, or ``all`` (default).

Figure 7's metrics snapshots feed Figures 8 and 9, so the realistic
sweep runs once per session and is shared through
:func:`realistic_results`.  Set ``$REPRO_JOBS`` to run these grids on a
process pool (results are identical; see ``docs/telemetry.md``).
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

import pytest

from repro.workloads import BENCHMARK_NAMES
from repro.workloads.suite import DEFAULT_TRACE_LENGTH


def bench_trace_length() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACE", DEFAULT_TRACE_LENGTH))


def bench_suite() -> Sequence[str]:
    raw = os.environ.get("REPRO_BENCH_SUITE", "all")
    if raw == "all":
        return BENCHMARK_NAMES
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    unknown = [n for n in names if n not in BENCHMARK_NAMES]
    if unknown:
        raise ValueError(f"unknown benchmarks in REPRO_BENCH_SUITE: {unknown}")
    return names


_REALISTIC_CACHE: Dict[tuple, list] = {}


def realistic_results(benchmarks, trace_length):
    """Session-cached Figure 7 sweep (metrics reused by Figures 8-9)."""
    key = (tuple(benchmarks), trace_length)
    if key not in _REALISTIC_CACHE:
        from repro.analysis.experiments import figure7_realistic

        _REALISTIC_CACHE[key] = figure7_realistic(
            benchmarks, trace_length=trace_length)
    return _REALISTIC_CACHE[key]


@pytest.fixture(scope="session")
def suite():
    return bench_suite()


@pytest.fixture(scope="session")
def trace_length():
    return bench_trace_length()
