"""§1 claim: "a futuristic 16-wide, deeply-pipelined machine with 95%
branch prediction accuracy can achieve a twofold improvement in
performance solely by eliminating the remaining mispredictions."

This bench measures the speed-up of perfect direction/indirect-target
prediction over the baseline hybrid, expecting a geometric mean around 2x
with large spread (memory-bound and branchy benchmarks gain most).
"""


from repro.analysis import format_table
from repro.analysis.experiments import (
    geometric_mean_speedup,
    intro_perfect_prediction,
)


def test_intro_perfect_prediction(benchmark, suite, trace_length):
    speedups = benchmark.pedantic(
        intro_perfect_prediction, args=(suite, trace_length),
        rounds=1, iterations=1)
    rows = [[name, round(value, 3)] for name, value in speedups.items()]
    geo = geometric_mean_speedup(speedups)
    rows.append(["GEOMEAN", round(geo, 3)])
    print()
    print(format_table(["bench", "perfect/baseline"], rows,
                       title="Intro claim: perfect-prediction headroom"))
    assert 1.4 < geo < 3.5, "headroom should be around the paper's ~2x"
    assert all(s >= 0.99 for s in speedups.values())
