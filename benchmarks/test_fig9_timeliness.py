"""Figure 9: prediction timeliness — early (before the branch is
fetched), late (after fetch, before resolve) and useless (after resolve),
with and without pruning.

Expected shape (paper): pruning raises the early and useful (early+late)
fractions and the total number of predictions; even with pruning the
majority arrive late on this aggressive front-end.
"""

import statistics


from benchmarks.conftest import realistic_results
from repro.analysis import format_table
from repro.analysis.experiments import figure9_timeliness


def test_figure9(benchmark, suite, trace_length):
    results = realistic_results(suite, trace_length)
    data = benchmark.pedantic(figure9_timeliness, args=(results,),
                              rounds=1, iterations=1)
    rows = []
    for name, d in data.items():
        np_, p = d["no_pruning"], d["pruning"]
        rows.append([
            name,
            round(100 * np_["early"], 1), round(100 * np_["late"], 1),
            round(100 * np_["useless"], 1), np_["total"],
            round(100 * p["early"], 1), round(100 * p["late"], 1),
            round(100 * p["useless"], 1), p["total"],
        ])
    print()
    print(format_table(
        ["bench", "np:early%", "np:late%", "np:useless%", "np:total",
         "p:early%", "p:late%", "p:useless%", "p:total"],
        rows, title="Figure 9 (reproduced): prediction timeliness"))

    populated = [d for d in data.values() if d["pruning"]["total"] > 20]
    assert populated, "suite must produce consumed predictions"
    useful_np = statistics.mean(
        d["no_pruning"]["early"] + d["no_pruning"]["late"]
        for d in populated)
    useful_p = statistics.mean(
        d["pruning"]["early"] + d["pruning"]["late"] for d in populated)
    assert useful_p >= useful_np - 0.05, \
        "pruning should not reduce the useful fraction"
    mean_early_p = statistics.mean(d["pruning"]["early"] for d in populated)
    assert mean_early_p < 0.8, \
        "most predictions arrive after fetch on this fast front-end"
