"""Simulator throughput: the cost of the models themselves.

Not a paper experiment — this measures the reproduction's own speed
(instructions per second of the functional simulator, the baseline
timing model and the full SSMT machine) so regressions in the hot loops
are caught.  These run multiple rounds since they are cheap.

The module also checks the telemetry layer's overhead contract: an
attached :class:`~repro.telemetry.session.TelemetrySession` (sampler +
tracer) may cost at most 10% over a detached run.  Measured means are
written to ``BENCH_throughput.json`` (schema ``repro.bench/1``) so CI
can archive the performance trajectory.

Two entries guard the hot-path optimization pass (see
``docs/performance.md``):

* the committed **baseline** (``throughput_baseline.json``) — the seed
  tree's SSMT throughput plus the post-optimization reference, both
  normalized by a pure-Python calibration loop so they transfer across
  machines — is replayed into ``BENCH_throughput.json`` alongside the
  freshly **measured** point, and
* a **regression gate** fails the run if measured normalized throughput
  drops more than ``gate.max_regression_fraction`` below the committed
  reference.
"""

import json
import os
import time

import pytest

from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.sim.functional import FunctionalSimulator
from repro.telemetry import TelemetrySession, write_bench_json
from repro.uarch.timing import OoOTimingModel
from repro.workloads import benchmark_trace, build_benchmark

BENCH = "gcc"
LENGTH = 50_000

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "throughput_baseline.json")
#: iterations of the calibration loop (matches the committed baseline)
CALIBRATION_OPS = 2_000_000

#: attached-telemetry slowdown budget (relative to detached)
TELEMETRY_OVERHEAD_BUDGET = 0.10

_RESULTS = {}


@pytest.fixture(scope="module")
def trace():
    return benchmark_trace(BENCH, LENGTH)


@pytest.fixture(scope="module", autouse=True)
def _bench_artifact():
    """Write BENCH_throughput.json after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_throughput.json")
    write_bench_json(path, "throughput", dict(_RESULTS), context={
        "benchmark": BENCH,
        "instructions": LENGTH,
    })


def _record(name, benchmark):
    mean = benchmark.stats.stats.mean
    _RESULTS[name] = {
        "mean_seconds": mean,
        "instructions_per_second": LENGTH / mean if mean else 0.0,
    }


def test_functional_simulator_throughput(benchmark):
    program = build_benchmark(BENCH)

    def run():
        return FunctionalSimulator(program, max_instructions=LENGTH).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == LENGTH
    _record("functional", benchmark)


def test_timing_model_throughput(benchmark, trace):
    def run():
        return OoOTimingModel().run(trace, BranchPredictorComplex())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
    _record("timing", benchmark)


def test_ssmt_machine_throughput(benchmark, trace):
    def run():
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory)
        return OoOTimingModel().run(trace, BranchPredictorComplex(),
                                    listener=engine)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
    _record("ssmt", benchmark)


def test_batched_kernel_throughput(benchmark, trace):
    """The fused batched retire loop on the full SSMT machine."""
    from repro.kernel.batched import BatchedOoOTimingModel

    def run():
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory)
        return BatchedOoOTimingModel().run(trace, BranchPredictorComplex(),
                                           listener=engine)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
    _record("ssmt_batched", benchmark)


def test_ssmt_telemetry_throughput(benchmark, trace):
    """Full machine with the telemetry session attached."""

    def run():
        telemetry = TelemetrySession(sample_every=2000)
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory,
                            telemetry=telemetry)
        return OoOTimingModel().run(trace, BranchPredictorComplex(),
                                    listener=engine)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
    _record("ssmt_telemetry", benchmark)


def _calibrate() -> float:
    """Machine-speed yardstick: pure-Python integer ops per second.

    The SSMT engine's throughput divided by this rate is stable across
    machine speeds (it cancels CPU frequency and ambient load), which is
    what makes a committed baseline meaningful on CI runners.  Best of
    three so a scheduling hiccup cannot depress the yardstick.
    """
    best = None
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(CALIBRATION_OPS):
            acc = (acc + i) ^ (i >> 3)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return CALIBRATION_OPS / best


def test_throughput_regression_gate(trace):
    """Fail if SSMT throughput regresses against the committed baseline.

    Replays the committed seed + optimized points into the artifact so
    ``BENCH_throughput.json`` always shows the optimization trajectory
    (baseline vs optimized vs measured-now), then gates the fresh
    measurement against ``gate.reference_normalized_throughput``.
    """
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    assert baseline["schema"] == "repro.perf.baseline/1"

    def run_once():
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory)
        start = time.perf_counter()
        OoOTimingModel().run(trace, BranchPredictorComplex(),
                             listener=engine)
        return time.perf_counter() - start

    # Best of paired (sim, calibration) attempts — see the batched gate
    # below for why pairing beats one calibration per session.
    gate = baseline["gate"]
    floor = (gate["reference_normalized_throughput"]
             * (1.0 - gate["max_regression_fraction"]))
    best = None
    for _attempt in range(5):
        sim = min(run_once() for _ in range(2))
        calibration = _calibrate()
        ips = LENGTH / sim
        normalized = ips / calibration
        if best is None or normalized > best[0]:
            best = (normalized, ips, calibration)
        if best[0] >= floor:
            break
    normalized, ips, calibration = best

    _RESULTS["ssmt_baseline_seed"] = {
        "instructions_per_second":
            baseline["seed"]["ssmt_instructions_per_second"],
        "normalized_throughput": baseline["seed"]["normalized_throughput"],
        "source": "committed baseline (pre-optimization tree)",
    }
    _RESULTS["ssmt_optimized_reference"] = {
        "instructions_per_second":
            baseline["optimized"]["ssmt_instructions_per_second"],
        "normalized_throughput":
            baseline["optimized"]["normalized_throughput"],
        "source": "committed baseline (post-optimization tree)",
    }
    _RESULTS["ssmt_measured"] = {
        "instructions_per_second": ips,
        "normalized_throughput": normalized,
        "calibration_ops_per_second": calibration,
        "speedup_vs_seed":
            normalized / baseline["seed"]["normalized_throughput"],
    }

    assert normalized >= floor, (
        f"SSMT throughput regressed: normalized {normalized:.6f} is below "
        f"the gate floor {floor:.6f} "
        f"(reference {gate['reference_normalized_throughput']:.6f}, "
        f"allowed regression {gate['max_regression_fraction']:.0%}; "
        f"measured {ips:,.0f} insts/s at "
        f"{calibration:,.0f} calibration ops/s)")


def test_optimized_speedup_over_seed_baseline(trace):
    """The optimization pass must hold its >=1.5x win over the seed tree.

    Compares freshly measured normalized throughput against the
    committed *seed* point — the cross-machine form of "simulation is
    now at least 1.5x faster than before the ``repro.perf`` pass".
    """
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    measured = _RESULTS.get("ssmt_measured")
    if measured is None:  # gate test did not run (e.g. -k selection)
        pytest.skip("requires test_throughput_regression_gate results")
    speedup = (measured["normalized_throughput"]
               / baseline["seed"]["normalized_throughput"])
    assert speedup >= 1.5, (
        f"optimized-over-seed speedup {speedup:.2f}x fell below 1.5x")


def test_batched_kernel_speedup_over_seed(trace):
    """The batched kernel must clear 3x the committed seed throughput.

    Same cross-machine normalization as the regression gate: fresh
    batched-kernel throughput divided by the calibration yardstick,
    compared against the committed seed tree's normalized point.  The
    first run pays the one-time predecode walk; best-of-three reflects
    steady-state sweep throughput, which is what the kernel exists for.
    """
    from repro.kernel.batched import BatchedOoOTimingModel

    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)

    def run_once():
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory)
        start = time.perf_counter()
        BatchedOoOTimingModel().run(trace, BranchPredictorComplex(),
                                    listener=engine)
        return time.perf_counter() - start

    # Ambient load depresses whichever side it hits; pairing the sim run
    # with an immediately following calibration and keeping the best pair
    # rejects load spikes the way the obs-overhead benchmark does.
    seed = baseline["seed"]["normalized_throughput"]
    best = None
    for _attempt in range(5):
        sim = min(run_once() for _ in range(2))
        calibration = _calibrate()
        ips = LENGTH / sim
        normalized = ips / calibration
        if best is None or normalized > best[0]:
            best = (normalized, ips, calibration)
        if best[0] / seed >= 3.0:
            break
    normalized, ips, calibration = best
    speedup = normalized / seed
    _RESULTS["ssmt_batched_measured"] = {
        "instructions_per_second": ips,
        "normalized_throughput": normalized,
        "calibration_ops_per_second": calibration,
        "speedup_vs_seed": speedup,
    }
    assert speedup >= 3.0, (
        f"batched kernel speedup over seed {speedup:.2f}x fell below 3.0x "
        f"({ips:,.0f} insts/s at {calibration:,.0f} calibration ops/s; "
        f"seed normalized {seed:.6f})")


def test_telemetry_overhead_within_budget(trace):
    """Attached sampler + tracer may slow the machine by at most 10%.

    Measured directly (best of three, not via pytest-benchmark) so the
    two configurations run interleaved under identical conditions.
    """

    def run_once(telemetry):
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory,
                            telemetry=telemetry)
        start = time.perf_counter()
        OoOTimingModel().run(trace, BranchPredictorComplex(),
                             listener=engine)
        return time.perf_counter() - start

    detached = min(run_once(None) for _ in range(3))
    attached = min(run_once(TelemetrySession(sample_every=2000))
                   for _ in range(3))
    overhead = attached / detached - 1.0
    _RESULTS["telemetry_overhead"] = {
        "detached_seconds": detached,
        "attached_seconds": attached,
        "overhead_fraction": overhead,
    }
    assert overhead <= TELEMETRY_OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead:.1%} exceeds "
        f"{TELEMETRY_OVERHEAD_BUDGET:.0%} budget "
        f"({detached:.3f}s detached vs {attached:.3f}s attached)")


def test_obs_overhead_within_budget(trace):
    """A full ObsSession (event recorder + flight recorder) may add at
    most the telemetry budget on top of a plain TelemetrySession.

    Composed with :func:`test_telemetry_overhead_within_budget` (plain
    telemetry <= 10% over detached), this bounds the full observability
    stack.  The gate is differential — obs-attached vs
    telemetry-attached, run as adjacent pairs — because at this budget
    an absolute wall-clock ratio sits inside scheduler noise on loaded
    runners.  Noise only ever inflates a run, so the *best* of five
    paired ratios tracks the true overhead; a genuine regression
    inflates every pair.  The import is deliberately local: this is the
    only benchmark that touches ``repro.obs``, keeping every other
    measurement on the untouched default path.
    """
    from repro.obs import FlightRecorder, ObsSession

    def run_once(telemetry):
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory,
                            telemetry=telemetry)
        start = time.perf_counter()
        OoOTimingModel().run(trace, BranchPredictorComplex(),
                             listener=engine)
        return time.perf_counter() - start

    def obs_session():
        return ObsSession(sample_every=2000, flight=FlightRecorder())

    run_once(obs_session())        # warm the obs import + code paths
    best = None
    for _attempt in range(2):
        for _ in range(5):
            plain = run_once(TelemetrySession(sample_every=2000))
            obs = run_once(obs_session())
            ratio = obs / plain - 1.0
            if best is None or ratio < best[0]:
                best = (ratio, plain, obs)
        if best[0] <= TELEMETRY_OVERHEAD_BUDGET:
            break
    overhead, plain, obs = best
    _RESULTS["obs_overhead"] = {
        "telemetry_attached_seconds": plain,
        "obs_attached_seconds": obs,
        "overhead_over_telemetry_fraction": overhead,
    }
    assert overhead <= TELEMETRY_OVERHEAD_BUDGET, (
        f"obs overhead {overhead:.1%} over plain telemetry exceeds "
        f"{TELEMETRY_OVERHEAD_BUDGET:.0%} budget in ten paired runs "
        f"({plain:.3f}s telemetry vs {obs:.3f}s obs)")
