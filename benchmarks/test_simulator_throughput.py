"""Simulator throughput: the cost of the models themselves.

Not a paper experiment — this measures the reproduction's own speed
(instructions per second of the functional simulator, the baseline
timing model and the full SSMT machine) so regressions in the hot loops
are caught.  These run multiple rounds since they are cheap.

The module also checks the telemetry layer's overhead contract: an
attached :class:`~repro.telemetry.session.TelemetrySession` (sampler +
tracer) may cost at most 10% over a detached run.  Measured means are
written to ``BENCH_throughput.json`` (schema ``repro.bench/1``) so CI
can archive the performance trajectory.
"""

import os
import time

import pytest

from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.sim.functional import FunctionalSimulator
from repro.telemetry import TelemetrySession, write_bench_json
from repro.uarch.timing import OoOTimingModel
from repro.workloads import benchmark_trace, build_benchmark

BENCH = "gcc"
LENGTH = 50_000

#: attached-telemetry slowdown budget (relative to detached)
TELEMETRY_OVERHEAD_BUDGET = 0.10

_RESULTS = {}


@pytest.fixture(scope="module")
def trace():
    return benchmark_trace(BENCH, LENGTH)


@pytest.fixture(scope="module", autouse=True)
def _bench_artifact():
    """Write BENCH_throughput.json after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_throughput.json")
    write_bench_json(path, "throughput", dict(_RESULTS), context={
        "benchmark": BENCH,
        "instructions": LENGTH,
    })


def _record(name, benchmark):
    mean = benchmark.stats.stats.mean
    _RESULTS[name] = {
        "mean_seconds": mean,
        "instructions_per_second": LENGTH / mean if mean else 0.0,
    }


def test_functional_simulator_throughput(benchmark):
    program = build_benchmark(BENCH)

    def run():
        return FunctionalSimulator(program, max_instructions=LENGTH).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == LENGTH
    _record("functional", benchmark)


def test_timing_model_throughput(benchmark, trace):
    def run():
        return OoOTimingModel().run(trace, BranchPredictorComplex())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
    _record("timing", benchmark)


def test_ssmt_machine_throughput(benchmark, trace):
    def run():
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory)
        return OoOTimingModel().run(trace, BranchPredictorComplex(),
                                    listener=engine)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
    _record("ssmt", benchmark)


def test_ssmt_telemetry_throughput(benchmark, trace):
    """Full machine with the telemetry session attached."""

    def run():
        telemetry = TelemetrySession(sample_every=2000)
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory,
                            telemetry=telemetry)
        return OoOTimingModel().run(trace, BranchPredictorComplex(),
                                    listener=engine)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
    _record("ssmt_telemetry", benchmark)


def test_telemetry_overhead_within_budget(trace):
    """Attached sampler + tracer may slow the machine by at most 10%.

    Measured directly (best of three, not via pytest-benchmark) so the
    two configurations run interleaved under identical conditions.
    """

    def run_once(telemetry):
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory,
                            telemetry=telemetry)
        start = time.perf_counter()
        OoOTimingModel().run(trace, BranchPredictorComplex(),
                             listener=engine)
        return time.perf_counter() - start

    detached = min(run_once(None) for _ in range(3))
    attached = min(run_once(TelemetrySession(sample_every=2000))
                   for _ in range(3))
    overhead = attached / detached - 1.0
    _RESULTS["telemetry_overhead"] = {
        "detached_seconds": detached,
        "attached_seconds": attached,
        "overhead_fraction": overhead,
    }
    assert overhead <= TELEMETRY_OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead:.1%} exceeds "
        f"{TELEMETRY_OVERHEAD_BUDGET:.0%} budget "
        f"({detached:.3f}s detached vs {attached:.3f}s attached)")
