"""Simulator throughput: the cost of the models themselves.

Not a paper experiment — this measures the reproduction's own speed
(instructions per second of the functional simulator, the baseline
timing model and the full SSMT machine) so regressions in the hot loops
are caught.  These run multiple rounds since they are cheap.
"""

import pytest

from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.sim.functional import FunctionalSimulator
from repro.uarch.timing import OoOTimingModel
from repro.workloads import benchmark_trace, build_benchmark

BENCH = "gcc"
LENGTH = 50_000


@pytest.fixture(scope="module")
def trace():
    return benchmark_trace(BENCH, LENGTH)


def test_functional_simulator_throughput(benchmark):
    program = build_benchmark(BENCH)

    def run():
        return FunctionalSimulator(program, max_instructions=LENGTH).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == LENGTH


def test_timing_model_throughput(benchmark, trace):
    def run():
        return OoOTimingModel().run(trace, BranchPredictorComplex())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH


def test_ssmt_machine_throughput(benchmark, trace):
    def run():
        engine = SSMTEngine(SSMTConfig(),
                            initial_memory=trace.initial_memory)
        return OoOTimingModel().run(trace, BranchPredictorComplex(),
                                    listener=engine)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions == LENGTH
