"""Table 3: the baseline machine model.

Table 3 is a configuration, not a measurement; this bench asserts that
the default :class:`MachineConfig` matches the paper's parameters and
prints the mapping, then measures baseline IPC and branch accuracy over
the suite as the machine-sanity row.
"""

import statistics


from repro.analysis import format_table
from repro.analysis.experiments import baseline_run
from repro.branch.unit import default_complex
from repro.uarch.config import TABLE3_BASELINE
from repro.workloads import benchmark_trace


def run_baseline(benchmarks, trace_length):
    rows = []
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        result = baseline_run(trace)
        rows.append([
            name,
            round(result.ipc, 2),
            result.hw_mispredicts,
            round(100 * (1 - result.mispredict_rate()), 2),
            round(result.cache.l1_hit_rate, 3),
        ])
    return rows


def test_table3_configuration(benchmark):
    def check():
        return TABLE3_BASELINE

    cfg = benchmark.pedantic(check, rounds=1, iterations=1)
    assert cfg.fetch_width == 16           # "16-wide decoder"
    assert cfg.fetch_taken_limit == 3      # "3 predictions per cycle"
    assert cfg.window_size == 512          # "512-entry out-of-order window"
    assert cfg.issue_width == 16           # "16 all-purpose functional units"
    assert cfg.mispredict_penalty == 20    # "total misprediction penalty"
    assert cfg.l1_words == 8192            # 64KB / 8B
    assert cfg.l1_assoc == 2
    assert cfg.l2_words == 131072          # 1MB
    assert cfg.l2_assoc == 8

    unit = default_complex()
    assert unit.btb.entries == 4096        # "4K-entry branch target buffer"
    assert unit.ras.entries == 32          # "32-entry call/return stack"
    assert unit.target_cache.entries == 64 * 1024  # "64K-entry target cache"
    assert unit.direction.selector.entries == 64 * 1024


def test_table3_baseline_sanity(benchmark, suite, trace_length):
    rows = benchmark.pedantic(run_baseline, args=(suite, trace_length),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["bench", "IPC", "mispredicts", "accuracy%", "L1 hit"],
        rows, title="Baseline machine (Table 3 config)"))
    accuracies = [row[3] for row in rows]
    # The paper describes a ~95%-accurate aggressive baseline.
    assert statistics.mean(accuracies) > 88.0
    assert statistics.mean(row[1] for row in rows) > 1.5
