"""Reference (pre-optimization) implementations kept as semantics oracles.

The hot-path rewrites in ``repro.branch.base`` and ``repro.core.path``
must be *bit-identical* to what they replaced — a branch predictor that
drifts by one counter tick changes every downstream number in the paper
reproduction.  The original lives here so property tests can drive both
implementations with the same random streams and compare predictions and
counter state exactly (``tests/test_perf.py``).
"""

from __future__ import annotations

from typing import List


class ReferenceSaturatingCounterTable:
    """The seed list-backed table of n-bit saturating counters.

    Byte-for-byte the ``SaturatingCounterTable`` implementation shipped
    with before it moved to a flat ``array`` backing store: counters
    start at the weak taken boundary (``2**(bits-1)``) and saturate at
    ``0`` and ``2**bits - 1``.
    """

    def __init__(self, entries: int, bits: int = 2):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if bits < 1:
            raise ValueError("counter width must be >= 1")
        self.entries = entries
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        self.mask = entries - 1
        self.table: List[int] = [self.threshold] * entries

    def predict(self, index: int) -> bool:
        return self.table[index & self.mask] >= self.threshold

    def counter(self, index: int) -> int:
        return self.table[index & self.mask]

    def update(self, index: int, taken: bool) -> None:
        index &= self.mask
        value = self.table[index]
        if taken:
            if value < self.max_value:
                self.table[index] = value + 1
        elif value > 0:
            self.table[index] = value - 1
