"""cProfile harness with per-subsystem aggregation (``repro.perf/1``).

Runs one SSMT workload under :mod:`cProfile`, buckets the profile's
per-function *total* time (time inside the function itself, excluding
callees) by simulator subsystem, and emits a JSON artifact so profiles
can be diffed across commits.  The subsystem map is by module path, so
new functions land in the right bucket automatically.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.schemas import schema_string
from repro.telemetry.session import TelemetrySession
from repro.workloads import benchmark_trace

SCHEMA = schema_string("repro.perf", 1)

#: Subsystem name -> module path fragments (matched against profile
#: entries' filenames).  First match wins; order is most-specific first.
SUBSYSTEMS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("branch_unit", ("repro/branch/",)),
    ("path_cache", ("repro/core/path_cache",)),
    ("path_tracking", ("repro/core/path",)),       # after path_cache
    ("prb", ("repro/core/prb",)),
    ("builder", ("repro/core/builder", "repro/core/microthread",
                 "repro/core/microram", "repro/core/mcb")),
    ("spawn", ("repro/core/spawn", "repro/core/prediction_cache")),
    ("ssmt_engine", ("repro/core/ssmt",)),
    ("timing_model", ("repro/uarch/",)),
    ("telemetry", ("repro/telemetry/",)),
    ("value_predictors", ("repro/valuepred/",)),
    ("functional_sim", ("repro/sim/",)),
    ("workload", ("repro/workloads/",)),
    ("isa", ("repro/isa/",)),
)


def classify(filename: str) -> str:
    """Map a profile entry's filename to a subsystem bucket."""
    normalized = filename.replace("\\", "/")
    for name, fragments in SUBSYSTEMS:
        for fragment in fragments:
            if fragment in normalized:
                return name
    return "other"


class ProfileReport:
    """Aggregated profile of one workload run."""

    def __init__(self, benchmark: str, instructions: int,
                 wall_seconds: float, payload: Dict[str, Any]):
        self.benchmark = benchmark
        self.instructions = instructions
        self.wall_seconds = wall_seconds
        self.payload = payload

    @property
    def subsystems(self) -> Dict[str, Dict[str, Any]]:
        return self.payload["subsystems"]

    @property
    def top_functions(self) -> List[Dict[str, Any]]:
        return self.payload["top_functions"]

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def format_table(self) -> str:
        """Human-readable subsystem breakdown, hottest first."""
        lines = [f"{'subsystem':<18} {'seconds':>9} {'%':>6} {'calls':>10}"]
        for name, row in sorted(self.subsystems.items(),
                                key=lambda kv: -kv[1]["seconds"]):
            lines.append(f"{name:<18} {row['seconds']:>9.4f} "
                         f"{100 * row['fraction']:>5.1f}% "
                         f"{row['calls']:>10}")
        return "\n".join(lines)


class ProfileHarness:
    """Profile one SSMT run and aggregate time per subsystem.

    ``telemetry=True`` attaches a :class:`TelemetrySession` so the
    telemetry bucket reflects instrumented-run overhead; by default the
    engine runs detached (its production fast path).
    """

    def __init__(self, benchmark: str = "gcc", instructions: int = 20_000,
                 config: Optional[SSMTConfig] = None,
                 telemetry: bool = False, top: int = 20):
        self.benchmark = benchmark
        self.instructions = instructions
        self.config = config if config is not None else SSMTConfig()
        self.telemetry = telemetry
        self.top = top

    def run(self) -> ProfileReport:
        trace = benchmark_trace(self.benchmark, self.instructions)
        session = TelemetrySession() if self.telemetry else None
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        run_ssmt(trace, self.config,
                 predictor=BranchPredictorComplex(), telemetry=session)
        profiler.disable()
        wall = time.perf_counter() - start
        return self._aggregate(profiler, wall)

    def _aggregate(self, profiler: cProfile.Profile,
                   wall: float) -> ProfileReport:
        stats = pstats.Stats(profiler)
        buckets: Dict[str, Dict[str, Any]] = {}
        functions: List[Dict[str, Any]] = []
        total = 0.0
        for (filename, lineno, funcname), (_cc, nc, tottime, cumtime, _callers) \
                in stats.stats.items():  # type: ignore[attr-defined]
            total += tottime
            subsystem = classify(filename)
            bucket = buckets.setdefault(
                subsystem, {"seconds": 0.0, "calls": 0})
            bucket["seconds"] += tottime
            bucket["calls"] += nc
            normalized = filename.replace("\\", "/")
            functions.append({
                "function": f"{normalized}:{lineno}:{funcname}",
                "subsystem": subsystem,
                "calls": nc,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            })
        for bucket in buckets.values():
            bucket["fraction"] = (bucket["seconds"] / total) if total else 0.0
            bucket["seconds"] = round(bucket["seconds"], 6)
        functions.sort(key=lambda f: -f["tottime"])
        payload: Dict[str, Any] = {
            "schema": SCHEMA,
            "benchmark": self.benchmark,
            "instructions": self.instructions,
            "telemetry_attached": self.telemetry,
            "wall_seconds": round(wall, 6),
            "profiled_seconds": round(total, 6),
            "instructions_per_second": round(self.instructions / wall, 2)
            if wall else 0.0,
            "subsystems": buckets,
            "top_functions": functions[:self.top],
        }
        return ProfileReport(self.benchmark, self.instructions, wall, payload)
