"""Profiling and performance tooling for the simulator itself.

This package is about *simulator* performance (wall-clock instructions
per second), not simulated performance (IPC).  It provides:

* :class:`~repro.perf.harness.ProfileHarness` — run a workload under
  ``cProfile``, aggregate time per simulator subsystem and emit a
  ``repro.perf/1`` JSON artifact (``repro profile <bench> --perf``).
* :class:`~repro.perf.reference.ReferenceSaturatingCounterTable` — the
  original list-backed counter table, kept as the semantics oracle for
  the ``array``-backed fast path (``tests/test_perf.py``).

See ``docs/performance.md`` for the profiling workflow and the hot-path
inventory that the current optimizations came from.
"""

from repro.perf.harness import ProfileHarness, ProfileReport, SUBSYSTEMS
from repro.perf.reference import ReferenceSaturatingCounterTable

__all__ = [
    "ProfileHarness",
    "ProfileReport",
    "SUBSYSTEMS",
    "ReferenceSaturatingCounterTable",
]
