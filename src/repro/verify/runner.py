"""Drive the static verifier (and optionally simsan) over workloads.

``repro verify`` uses :func:`verify_suite` to run the full SSMT machine
over each benchmark with a :class:`~repro.verify.static.BuildVerifier`
attached, so every microthread the builder constructs is audited against
the live PRB snapshot at build time.  ``--sanitize`` additionally
attaches a :class:`~repro.verify.sanitizer.SimSanitizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.uarch.config import TABLE3_BASELINE, MachineConfig
from repro.verify.diagnostics import VerifyReport
from repro.verify.sanitizer import SanitizerConfig, SimSanitizer
from repro.verify.static import BuildVerifier

#: Paths only promote after a full Path Cache training interval, so
#: verification needs the same trace length the analyses use; shorter
#: traces silently audit nothing on the branchier benchmarks.
DEFAULT_VERIFY_LENGTH = 400_000


@dataclass
class WorkloadVerifyResult:
    """Verification outcome for one benchmark."""

    benchmark: str
    routines_built: int
    error_reports: List[VerifyReport] = field(default_factory=list)
    error_count: int = 0
    warning_count: int = 0
    sanitizer_report: Optional[VerifyReport] = None

    @property
    def clean(self) -> int:
        return self.routines_built - len(self.error_reports)

    @property
    def sanitizer_errors(self) -> int:
        if self.sanitizer_report is None:
            return 0
        return len(self.sanitizer_report.errors)

    @property
    def ok(self) -> bool:
        return self.error_count == 0 and self.sanitizer_errors == 0


def verify_workload(
    name: str,
    instructions: int = DEFAULT_VERIFY_LENGTH,
    config: Optional[SSMTConfig] = None,
    machine: MachineConfig = TABLE3_BASELINE,
    sanitize: bool = False,
    sanitizer_config: Optional[SanitizerConfig] = None,
) -> WorkloadVerifyResult:
    """Run SSMT over ``name`` and statically verify every built routine."""
    from repro.workloads import benchmark_trace

    trace = benchmark_trace(name, instructions)
    verifier = BuildVerifier()
    sanitizer = SimSanitizer(sanitizer_config) if sanitize else None
    _, engine = run_ssmt(trace, config, machine=machine,
                         verifier=verifier, sanitizer=sanitizer)
    sanitizer_report = None
    if sanitizer is not None:
        sanitizer_report = sanitizer.final_check(engine)
    return WorkloadVerifyResult(
        benchmark=name,
        routines_built=verifier.verified,
        error_reports=verifier.error_reports,
        error_count=verifier.error_count,
        warning_count=verifier.warning_count,
        sanitizer_report=sanitizer_report,
    )


def verify_suite(
    benchmarks: Optional[Sequence[str]] = None,
    instructions: int = DEFAULT_VERIFY_LENGTH,
    config: Optional[SSMTConfig] = None,
    machine: MachineConfig = TABLE3_BASELINE,
    sanitize: bool = False,
) -> Tuple[WorkloadVerifyResult, ...]:
    """Verify every benchmark (default: the whole 20-program suite)."""
    from repro.workloads import BENCHMARK_NAMES

    names = tuple(benchmarks) if benchmarks else BENCHMARK_NAMES
    return tuple(
        verify_workload(name, instructions=instructions, config=config,
                        machine=machine, sanitize=sanitize)
        for name in names
    )
