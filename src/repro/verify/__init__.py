"""Correctness tooling for the SSMT mechanism (``repro verify``).

Two layers:

* :mod:`repro.verify.static` — an IR-level static verifier over built
  :class:`~repro.core.microthread.Microthread` programs (def-before-use,
  dead code, terminator form, spawn legality, optimization soundness
  re-derived from the PRB snapshot, pruning soundness);
* :mod:`repro.verify.sanitizer` — an opt-in runtime invariant sanitizer
  ("simsan") over the Path Cache / MicroRAM / Prediction Cache / spawn
  state machines of a running :class:`~repro.core.ssmt.SSMTEngine`.

Both emit structured :class:`~repro.verify.diagnostics.Diagnostic`
records so the CLI (and CI) can gate on them.
"""

from repro.verify.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    VerifyReport,
)
from repro.verify.runner import (
    WorkloadVerifyResult,
    verify_suite,
    verify_workload,
)
from repro.verify.sanitizer import SanitizerConfig, SimSanitizer
from repro.verify.static import BuildVerifier, verify_microthread

__all__ = [
    "RULES",
    "Diagnostic",
    "Severity",
    "VerifyReport",
    "BuildVerifier",
    "verify_microthread",
    "SanitizerConfig",
    "SimSanitizer",
    "WorkloadVerifyResult",
    "verify_workload",
    "verify_suite",
]
