"""Runtime invariant sanitizer over the SSMT engine ("simsan").

An opt-in hook layer for :class:`~repro.core.ssmt.SSMTEngine`: the
engine calls into the sanitizer at each retire, path-cache update,
promotion, demotion and memory-dependence violation, and the sanitizer
asserts cross-structure invariants (rule ids ``SAN001``-``SAN006`` in
:data:`repro.verify.diagnostics.RULES`):

``SAN001``  Path Cache counters stay in ``0 <= mispredicts <=
            occurrences < training_interval`` after every update.
``SAN002``  The ``Difficult`` bit is only ever set after a full
            training interval of observed occurrences (tracked in a
            shadow tally, so eviction/re-allocation cannot fake it).
``SAN003``  A ``Promoted`` entry always has its routine resident in the
            MicroRAM.
``SAN004``  Occupancy: MicroRAM and Prediction Cache never exceed their
            capacity, the MicroRAM's spawn-PC index stays in sync, every
            stored routine fits the MCB, and every active microthread
            holds a legal context id.
``SAN005``  Predictions written by a memory-dependence-violated
            microthread are invalidated (rebuild-on-violation actually
            kills the stale output).
``SAN006``  A demoted path's routine actually leaves the MicroRAM and
            stays out until the path is re-promoted.

When no sanitizer is attached the engine pays one ``is None`` test per
hook site — effectively zero overhead.  When attached, cheap per-entry
checks run on every touched Path Cache entry and a full structural
sweep runs every ``check_every`` retires (and on demand via
:meth:`SimSanitizer.final_check`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, Optional, Set

from repro.verify.diagnostics import Severity, VerifyReport

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.path import PathKey
    from repro.core.ssmt import SSMTEngine


class SanitizerError(AssertionError):
    """Raised on the first violation when ``raise_on_error`` is set."""


@dataclass
class SanitizerConfig:
    #: run the full structural sweep every N retires (0 = only on
    #: :meth:`SimSanitizer.final_check`)
    check_every: int = 64
    #: stop accumulating diagnostics past this many (the run is already
    #: broken; keep the report readable)
    max_diagnostics: int = 200
    #: raise :class:`SanitizerError` at the first ERROR (debugging aid)
    raise_on_error: bool = False
    #: how many recently-violated microthread instances to keep checking
    #: against the Prediction Cache
    violation_memory: int = 256

    def __post_init__(self) -> None:
        if self.check_every < 0:
            raise ValueError("check_every must be >= 0")
        if self.max_diagnostics <= 0:
            raise ValueError("max_diagnostics must be positive")
        if self.violation_memory <= 0:
            raise ValueError("violation_memory must be positive")


class SimSanitizer:
    """Cross-structure invariant checker; see module docstring."""

    def __init__(self, config: Optional[SanitizerConfig] = None) -> None:
        self.config = config or SanitizerConfig()
        self.report = VerifyReport(subject="simsan")
        self.retires_seen = 0
        self.sweeps = 0
        #: shadow per-path occurrence tally backing SAN002
        self._shadow_occurrences: Dict[Any, int] = {}
        #: instances whose predictions must be invalid (SAN005)
        self._violated: Deque[Any] = deque(
            maxlen=self.config.violation_memory)
        #: demoted keys that must stay out of the MicroRAM (SAN006)
        self._demoted: Set[Any] = set()

    # -- reporting -----------------------------------------------------------

    @property
    def violations(self) -> int:
        return len(self.report.errors)

    @property
    def ok(self) -> bool:
        return not self.report.errors

    def _emit(self, rule: str, message: str, hint: str = "") -> None:
        if len(self.report.diagnostics) >= self.config.max_diagnostics:
            return
        self.report.emit(rule, Severity.ERROR, message, hint=hint)
        if self.config.raise_on_error:
            raise SanitizerError(f"{rule}: {message}")

    # -- engine hooks --------------------------------------------------------

    def note_path_update(self, engine: "SSMTEngine", key: "PathKey",
                         path_id: int) -> None:
        """Called after every Path Cache update of ``key``."""
        self._shadow_occurrences[key] = \
            self._shadow_occurrences.get(key, 0) + 1
        entry = engine.path_cache.lookup(key, path_id)
        if entry is not None:
            self._check_entry(engine, key, entry)

    def note_violation(self, instance: Any) -> None:
        """Called for each microthread hit by a memory-dependence
        violation; its Prediction Cache output must now be dead."""
        self._violated.append(instance)

    def note_demote(self, key: "PathKey") -> None:
        self._demoted.add(key)

    def note_promote(self, key: "PathKey") -> None:
        self._demoted.discard(key)

    def on_retire(self, engine: "SSMTEngine", idx: int, rec: Any) -> None:
        self.retires_seen += 1
        every = self.config.check_every
        if every and self.retires_seen % every == 0:
            self.sweep(engine)

    def final_check(self, engine: "SSMTEngine") -> VerifyReport:
        """Run one last full sweep and return the accumulated report."""
        self.sweep(engine)
        return self.report

    # -- invariant checks ----------------------------------------------------

    def _check_entry(self, engine: "SSMTEngine", key: "PathKey",
                     entry: Any) -> None:
        interval = engine.path_cache.config.training_interval
        if not (0 <= entry.mispredicts <= entry.occurrences < interval):
            self._emit(
                "SAN001",
                f"path {key.term_pc}: counters mispredicts="
                f"{entry.mispredicts} occurrences={entry.occurrences} "
                f"violate 0 <= m <= o < {interval}",
                hint="counters must reset exactly at the interval end")
        if entry.difficult and \
                self._shadow_occurrences.get(key, 0) < interval:
            self._emit(
                "SAN002",
                f"path {key.term_pc}: Difficult set after only "
                f"{self._shadow_occurrences.get(key, 0)} occurrences "
                f"(interval={interval})",
                hint="difficulty may only be classified at training "
                     "interval boundaries")
        if entry.promoted and key not in engine.microram:
            self._emit(
                "SAN003",
                f"path {key.term_pc}: Promoted bit set but no routine "
                "in the MicroRAM",
                hint="mark_promoted must track MicroRAM insert/evict")

    def sweep(self, engine: "SSMTEngine") -> None:
        """Full structural sweep over every engine structure."""
        self.sweeps += 1
        for key, entry in engine.path_cache.entries():
            self._check_entry(engine, key, entry)
        self._check_occupancy(engine)
        self._check_violated(engine)
        self._check_demoted(engine)

    def _check_occupancy(self, engine: "SSMTEngine") -> None:
        microram = engine.microram
        if len(microram) > microram.capacity:
            self._emit(
                "SAN004",
                f"MicroRAM holds {len(microram)} routines, capacity "
                f"{microram.capacity}")
        if microram.spawn_index_len() != len(microram):
            self._emit(
                "SAN004",
                f"MicroRAM spawn-PC index holds "
                f"{microram.spawn_index_len()} routines but the key "
                f"index holds {len(microram)}",
                hint="insert/remove must update both indexes")
        mcb_capacity = engine.config.mcb_capacity
        for thread in microram.routines():
            if thread.routine_size > mcb_capacity:
                self._emit(
                    "SAN004",
                    f"routine for term_pc={thread.term_pc} has "
                    f"{thread.routine_size} micro-ops, over the MCB "
                    f"capacity {mcb_capacity}")
        pcache = engine.prediction_cache
        if len(pcache) > pcache.capacity:
            self._emit(
                "SAN004",
                f"Prediction Cache holds {len(pcache)} entries, "
                f"capacity {pcache.capacity}")
        n_contexts = engine.spawner.n_contexts
        for instance in engine.spawner.active:
            if not 0 <= instance.context_id < n_contexts:
                self._emit(
                    "SAN004",
                    f"active microthread for term_pc="
                    f"{instance.thread.term_pc} holds illegal context "
                    f"id {instance.context_id} (of {n_contexts})")

    def _check_violated(self, engine: "SSMTEngine") -> None:
        if not self._violated:
            return
        violated = {id(instance) for instance in self._violated}
        for entry in engine.prediction_cache.entries():
            if entry.valid and id(entry.writer) in violated:
                self._emit(
                    "SAN005",
                    f"prediction arriving at cycle {entry.arrival_cycle} "
                    "from a violated microthread is still valid",
                    hint="invalidate_writer must cover every entry of "
                         "the violated instance")

    def _check_demoted(self, engine: "SSMTEngine") -> None:
        for key in self._demoted:
            if key in engine.microram:
                self._emit(
                    "SAN006",
                    f"demoted path term_pc={key.term_pc} still has a "
                    "routine resident in the MicroRAM",
                    hint="demotion must remove the routine until the "
                         "path is re-promoted")
