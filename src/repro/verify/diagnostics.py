"""Structured diagnostics shared by the static verifier and the sanitizer.

Every check failure is a :class:`Diagnostic` carrying a stable rule id
(``MT0xx`` for static microthread rules, ``SAN0xx`` for runtime sanitizer
invariants), a severity, the offending micro-op index where applicable,
and a fix hint.  Diagnostics accumulate into a :class:`VerifyReport` per
verified object; reports render as rows for the CLI summary table.

The rule-id/severity plumbing is shared across verification layers: each
layer registers its rule family under a prefix via :func:`register_rules`
(``MT``/``SAN`` here, ``LINT`` in :mod:`repro.lint.rules`), so rule ids
stay globally unique and tooling (docs checks, ``--rules`` listings) can
enumerate every family through :func:`all_rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Mapping, Tuple


class Severity(IntEnum):
    """How bad a finding is; only ``ERROR`` gates the exit code."""

    INFO = 0
    WARNING = 1
    ERROR = 2


#: Every registered rule family: prefix -> {rule id -> description}.
RULE_NAMESPACES: Dict[str, Dict[str, str]] = {}


def register_rules(prefix: str, rules: Mapping[str, str]) -> Dict[str, str]:
    """Register a rule family under ``prefix``; returns the family dict.

    Rule ids must start with the prefix and may not collide with any id
    already registered under another prefix.  Registration is idempotent
    for an identical family (modules may be re-imported).
    """
    for rule in rules:
        if not rule.startswith(prefix):
            raise ValueError(f"rule id {rule!r} does not start with "
                             f"prefix {prefix!r}")
    existing = RULE_NAMESPACES.get(prefix)
    if existing is not None:
        if existing != dict(rules):
            raise ValueError(f"rule family {prefix!r} already registered "
                             f"with different contents")
        return existing
    for other_prefix, family in RULE_NAMESPACES.items():
        dupes = set(family) & set(rules)
        if dupes:
            raise ValueError(f"rule ids {sorted(dupes)} already registered "
                             f"under {other_prefix!r}")
    family = dict(rules)
    RULE_NAMESPACES[prefix] = family
    return family


def all_rules() -> Dict[str, str]:
    """Every registered rule id -> description, across all families."""
    merged: Dict[str, str] = {}
    for family in RULE_NAMESPACES.values():
        merged.update(family)
    return merged


#: Registry of every rule id, for docs and ``repro verify --rules``.
RULES: Dict[str, str] = {
    # -- static microthread verifier --------------------------------------
    "MT001": "use-before-def: a micro-op reads an operand that is not "
             "defined earlier in the routine listing",
    "MT002": "dead-op: a micro-op does not reach the terminating "
             "Store_PCache through the use-def chain",
    "MT003": "terminator-form: the routine must contain exactly one "
             "terminating Store_PCache node, as its root and final op",
    "MT004": "illegal-spawn: the spawn point does not precede the branch, "
             "lies outside the extracted scope, or runs before a live-in "
             "producer / conflicting store",
    "MT005": "dataflow-mismatch: re-deriving the backward dataflow tree "
             "from the PRB snapshot disagrees with the built program "
             "(unsound move elimination / constant propagation)",
    "MT006": "unsound-prune: a Vp_Inst/Ap_Inst replacement is not backed "
             "by predictor confidence or does not cover the pruned "
             "subtree's live-outs",
    "MT007": "livein-mismatch: the routine's declared live-in register "
             "set differs from the live-ins its graph actually reads",
    "MT008": "suffix-mismatch: the spawn prefix / expected taken-branch "
             "suffix disagrees with the PRB's recorded control flow",
    # -- runtime sanitizer ("simsan") --------------------------------------
    "SAN001": "path-cache-counters: a Path Cache entry's counters are "
              "outside 0 <= mispredicts <= occurrences < interval",
    "SAN002": "difficult-untrained: an entry's Difficult bit is set "
              "before a full training interval completed",
    "SAN003": "promoted-no-routine: an entry's Promoted bit is set but "
              "no routine is resident in the MicroRAM",
    "SAN004": "occupancy: a structure exceeds its configured capacity "
              "(MicroRAM, Prediction Cache, MCB routine size, contexts)",
    "SAN005": "stale-prediction: a Prediction Cache entry written by a "
              "memory-dependence-violated microthread is still valid",
    "SAN006": "demoted-routine: a demoted/rebuilt path still has a stale "
              "routine resident in the MicroRAM",
}

# The verifier/sanitizer families share one dict (RULES) because they
# share the VerifyReport pipeline; register them per-prefix so other
# families (repro.lint's LINT rules) can join the shared namespace.
register_rules("MT", {k: v for k, v in RULES.items() if k.startswith("MT")})
register_rules("SAN", {k: v for k, v in RULES.items() if k.startswith("SAN")})


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding."""

    rule: str                 # stable id, e.g. "MT002"
    severity: Severity
    message: str
    node_index: int = -1      # micro-op index in the routine listing
    hint: str = ""            # how to fix / where to look

    def format(self) -> str:
        loc = f" @op[{self.node_index}]" if self.node_index >= 0 else ""
        text = f"{self.rule} {self.severity.name}{loc}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class VerifyReport:
    """All diagnostics for one verified object (routine or engine)."""

    subject: str = ""                       # e.g. "path 0x1a2b term_pc=77"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def emit(self, rule: str, severity: Severity, message: str,
             node_index: int = -1, hint: str = "") -> Diagnostic:
        if rule not in RULES:
            raise ValueError(f"unknown rule id {rule!r}")
        diag = Diagnostic(rule, severity, message, node_index, hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "VerifyReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No errors (warnings do not fail verification)."""
        return not self.errors

    def rule_ids(self) -> Tuple[str, ...]:
        return tuple(d.rule for d in self.diagnostics)

    def has_rule(self, rule: str) -> bool:
        return any(d.rule == rule for d in self.diagnostics)

    def format(self) -> str:
        lines = [self.subject or "<anonymous>"]
        lines.extend("  " + d.format() for d in self.diagnostics)
        if not self.diagnostics:
            lines.append("  clean")
        return "\n".join(lines)
