"""Static verification of built microthread routines.

:func:`verify_microthread` analyses one built
:class:`~repro.core.microthread.Microthread` and emits a
:class:`~repro.verify.diagnostics.VerifyReport`.  The rules (ids in
:data:`repro.verify.diagnostics.RULES`):

``MT001``
    Def-before-use over the routine listing: every operand of every
    micro-op must be produced by an earlier node, and the listing must
    not contain duplicates (a cycle in the graph surfaces here too).
``MT002``
    No dead micro-ops: every node must reach the terminating
    ``Store_PCache`` through the use-def chain.
``MT003``
    Exactly-one-terminator form: one ``branch`` node, it is the root,
    it is the final op, nothing consumes its result, and its opcode can
    terminate a path (indirect terminators must compute a target).
``MT004``
    Spawn-point legality: the spawn strictly precedes the terminating
    branch, every live-in producer retires before the spawn, and no
    in-window store feeding an included load retires at/after it.
``MT005``
    Move-elimination / constant-propagation soundness: the verifier
    re-derives the backward dataflow from the PRB snapshot (recorded
    operand values, effective addresses and results) and diffs it
    against the built program node by node, ending with the recorded
    branch outcome.
``MT006``
    Pruning soundness: every ``Vp_Inst``/``Ap_Inst`` must be a leaf,
    must be backed by the confidence snapshot stored in the PRB, and an
    ``Ap_Inst`` must feed exactly the load whose base sub-tree it
    replaced (the pruned subtree's only live-out).
``MT007``
    The declared live-in register set must equal the live-ins the graph
    actually reads.
``MT008``
    The spawn prefix must be a prefix of the path key, and the expected
    taken-branch suffix must match the control flow recorded in the PRB
    between spawn point and terminating branch.

PRB-dependent rules (parts of MT004, MT005, MT006, MT008) degrade
gracefully: entries that have fallen out of the buffer simply skip the
corresponding check (a ``WARNING`` is emitted where the skip leaves a
pruning decision unaudited).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.microthread import Microthread, MicroOp
from repro.core.prb import PostRetirementBuffer, PRBEntry
from repro.isa.instructions import CONDITIONAL_BRANCHES, INDIRECT_JUMPS
from repro.verify.diagnostics import Severity, VerifyReport

_MASK = (1 << 64) - 1

#: Sentinel for values the PRB snapshot can no longer reconstruct.
_UNKNOWN = object()

_VALID_KINDS = frozenset(
    {"op", "load", "const", "livein", "vp", "ap", "branch"})


def _subject(thread: Microthread) -> str:
    return (f"path_id=0x{thread.path_id:x} term_pc={thread.term_pc} "
            f"spawn_pc={thread.spawn_pc} size={thread.routine_size}")


def _entry_at(prb: Optional[PostRetirementBuffer], pos: int,
              pc: int) -> Optional[PRBEntry]:
    """The PRB entry a node was extracted from, if still resident."""
    if prb is None or pos < 0:
        return None
    entry = prb.get(pos)
    if entry is None or entry.rec.pc != pc:
        return None
    return entry


def verify_microthread(thread: Microthread,
                       prb: Optional[PostRetirementBuffer] = None
                       ) -> VerifyReport:
    """Run every static rule over ``thread``; see module docstring.

    ``prb`` is the Post-Retirement Buffer the routine was extracted
    from, ideally snapshotted at build time; it enables the dataflow
    re-derivation rules (MT005 and friends).
    """
    report = VerifyReport(subject=_subject(thread))
    nodes = thread.nodes
    if not nodes:
        report.emit("MT003", Severity.ERROR, "routine has no micro-ops",
                    hint="builder produced an empty extraction")
        return report

    index_of: Dict[int, int] = {}
    _check_def_before_use(report, nodes, index_of)
    reachable = _check_dead_ops(report, thread, index_of)
    _check_terminator(report, thread, index_of)
    _check_liveins(report, thread, reachable)
    _check_spawn(report, thread, prb, index_of)
    _check_prune(report, thread, prb, index_of)
    _check_dataflow(report, thread, prb, index_of)
    _check_suffix(report, thread, prb)
    return report


# -- MT001 ----------------------------------------------------------------

def _check_def_before_use(report: VerifyReport, nodes: List[MicroOp],
                          index_of: Dict[int, int]) -> None:
    for i, node in enumerate(nodes):
        if node.uid in index_of:
            report.emit(
                "MT001", Severity.ERROR,
                f"micro-op {node.describe()!r} appears twice in the listing",
                node_index=i, hint="listing must be a topological order")
            continue
        if node.kind not in _VALID_KINDS:
            report.emit(
                "MT001", Severity.ERROR,
                f"unknown micro-op kind {node.kind!r}", node_index=i)
        for child in node.inputs:
            if child.uid not in index_of:
                report.emit(
                    "MT001", Severity.ERROR,
                    f"{node.describe()!r} reads operand "
                    f"{child.describe()!r} that is not defined earlier",
                    node_index=i,
                    hint="re-linearize with topological_order after "
                         "graph rewrites")
        index_of[node.uid] = i


# -- MT002 ----------------------------------------------------------------

def _check_dead_ops(report: VerifyReport, thread: Microthread,
                    index_of: Dict[int, int]) -> frozenset:
    reachable = set()
    stack = [thread.root]
    while stack:
        node = stack.pop()
        if node.uid in reachable:
            continue
        reachable.add(node.uid)
        stack.extend(node.inputs)
    for node in thread.nodes:
        if node.uid not in reachable:
            report.emit(
                "MT002", Severity.ERROR,
                f"dead micro-op {node.describe()!r} never reaches "
                "Store_PCache",
                node_index=index_of.get(node.uid, -1),
                hint="rebuild the listing from the Store_PCache root "
                     "after pruning/rewrites")
    return frozenset(reachable)


# -- MT003 ----------------------------------------------------------------

def _check_terminator(report: VerifyReport, thread: Microthread,
                      index_of: Dict[int, int]) -> None:
    nodes = thread.nodes
    branches = [n for n in nodes if n.kind == "branch"]
    if len(branches) != 1:
        report.emit(
            "MT003", Severity.ERROR,
            f"routine has {len(branches)} terminator nodes, expected "
            "exactly one",
            hint="extraction must convert exactly the terminating "
                 "branch into Store_PCache")
        return
    term = branches[0]
    if term is not thread.root:
        report.emit(
            "MT003", Severity.ERROR,
            "terminator node is not the routine root",
            node_index=index_of.get(term.uid, -1))
    if nodes[-1] is not term:
        report.emit(
            "MT003", Severity.ERROR,
            f"terminator is not the final micro-op "
            f"(last is {nodes[-1].describe()!r})",
            node_index=index_of.get(term.uid, -1))
    for i, node in enumerate(nodes):
        if term in node.inputs:
            report.emit(
                "MT003", Severity.ERROR,
                f"{node.describe()!r} consumes the terminator's result",
                node_index=i)
    op = term.op
    if op in INDIRECT_JUMPS:
        if not term.inputs:
            report.emit(
                "MT003", Severity.ERROR,
                "indirect terminator has no target operand",
                node_index=index_of.get(term.uid, -1))
    elif op not in CONDITIONAL_BRANCHES:
        report.emit(
            "MT003", Severity.ERROR,
            f"terminator opcode {op!r} cannot terminate a path",
            node_index=index_of.get(term.uid, -1))


# -- MT007 ----------------------------------------------------------------

def _check_liveins(report: VerifyReport, thread: Microthread,
                   reachable: frozenset) -> None:
    actual = sorted({n.reg for n in thread.nodes
                     if n.kind == "livein" and n.uid in reachable})
    declared = sorted(thread.live_in_regs)
    if actual != declared:
        report.emit(
            "MT007", Severity.ERROR,
            f"declared live-in registers {declared} but the graph reads "
            f"{actual}",
            hint="live_in_regs must be recomputed after every graph "
                 "rewrite")


# -- MT004 ----------------------------------------------------------------

def _check_spawn(report: VerifyReport, thread: Microthread,
                 prb: Optional[PostRetirementBuffer],
                 index_of: Dict[int, int]) -> None:
    if thread.separation <= 0:
        report.emit(
            "MT004", Severity.ERROR,
            f"spawn point does not precede the terminating branch "
            f"(separation={thread.separation})",
            hint="spawn must be strictly older than the branch")
        return
    spawn_idx = thread.built_from_idx - thread.separation
    for node in thread.nodes:
        if node.kind == "livein" and node.producer_idx is not None \
                and node.producer_idx >= spawn_idx:
            report.emit(
                "MT004", Severity.ERROR,
                f"live-in r{node.reg} is produced at PRB position "
                f"{node.producer_idx}, at/after the spawn point "
                f"({spawn_idx})",
                node_index=index_of.get(node.uid, -1),
                hint="spawn selection must run after every surviving "
                     "live-in producer")
        if node.kind == "load":
            entry = _entry_at(prb, node.order, node.pc)
            if entry is not None and entry.mem_producer is not None \
                    and entry.mem_producer >= spawn_idx:
                report.emit(
                    "MT004", Severity.ERROR,
                    f"included load at pc={node.pc} depends on a store "
                    f"at PRB position {entry.mem_producer}, at/after "
                    f"the spawn point ({spawn_idx})",
                    node_index=index_of.get(node.uid, -1),
                    hint="memory-dependence constraints must push the "
                         "spawn past the store")
    if prb is not None:
        spawn_entry = prb.get(spawn_idx)
        if spawn_entry is not None \
                and spawn_entry.rec.pc != thread.spawn_pc:
            report.emit(
                "MT004", Severity.ERROR,
                f"spawn_pc={thread.spawn_pc} but the PRB records pc="
                f"{spawn_entry.rec.pc} at the spawn position {spawn_idx}")


# -- MT006 ----------------------------------------------------------------

def _check_prune(report: VerifyReport, thread: Microthread,
                 prb: Optional[PostRetirementBuffer],
                 index_of: Dict[int, int]) -> None:
    loads_by_ap_uid: Dict[int, MicroOp] = {}
    for node in thread.nodes:
        if node.kind == "load" and node.inputs:
            base = node.inputs[0]
            if base.kind == "ap":
                loads_by_ap_uid[base.uid] = node
    for node in thread.nodes:
        if node.kind not in ("vp", "ap"):
            continue
        i = index_of.get(node.uid, -1)
        what = "Vp_Inst" if node.kind == "vp" else "Ap_Inst"
        if not thread.pruned:
            report.emit(
                "MT006", Severity.ERROR,
                f"{what} present but the routine was built with pruning "
                "disabled", node_index=i)
        if node.inputs:
            report.emit(
                "MT006", Severity.ERROR,
                f"{what} must be a leaf but has "
                f"{len(node.inputs)} operand(s)", node_index=i,
                hint="prediction micro-ops replace whole sub-trees")
        entry = _entry_at(prb, node.order, node.pc)
        if entry is None:
            if prb is not None:
                report.emit(
                    "MT006", Severity.WARNING,
                    f"{what} for pc={node.pc} has no PRB entry left to "
                    "audit its confidence against", node_index=i)
        elif node.kind == "vp":
            if not entry.value_confident:
                report.emit(
                    "MT006", Severity.ERROR,
                    f"Vp_Inst replaced pc={node.pc} whose PRB entry was "
                    "not value-confident", node_index=i,
                    hint="prune only on the stored confidence snapshot")
            if entry.rec.inst.dest_reg() is None:
                report.emit(
                    "MT006", Severity.ERROR,
                    f"Vp_Inst replaced pc={node.pc} which produces no "
                    "register value", node_index=i)
        else:  # ap
            if not entry.address_confident:
                report.emit(
                    "MT006", Severity.ERROR,
                    f"Ap_Inst for pc={node.pc} whose PRB entry was not "
                    "address-confident", node_index=i,
                    hint="prune only on the stored confidence snapshot")
            if not entry.rec.inst.is_load:
                report.emit(
                    "MT006", Severity.ERROR,
                    f"Ap_Inst attached to non-load pc={node.pc}",
                    node_index=i)
        if node.kind == "ap":
            consumer = loads_by_ap_uid.get(node.uid)
            if consumer is None or consumer.order != node.order:
                report.emit(
                    "MT006", Severity.ERROR,
                    f"Ap_Inst for pc={node.pc} does not feed the load it "
                    "was created for", node_index=i,
                    hint="an Ap_Inst must cover exactly the pruned base "
                         "sub-tree's live-out")


# -- MT005 ----------------------------------------------------------------

def _check_dataflow(report: VerifyReport, thread: Microthread,
                    prb: Optional[PostRetirementBuffer],
                    index_of: Dict[int, int]) -> None:
    """Re-derive the dataflow from the PRB and diff the built program.

    Each node is evaluated from the *recorded* values of its operands,
    compared against the recorded result of the instruction it was
    extracted from, and the recorded value is propagated onward so one
    unsound rewrite yields one diagnostic at the node that broke.
    """
    if prb is None:
        return
    values: Dict[int, Any] = {}
    for node in thread.nodes:
        i = index_of.get(node.uid, -1)
        kind = node.kind
        if kind == "livein":
            if node.producer_idx is None:
                values[node.uid] = _UNKNOWN
            else:
                producer = prb.get(node.producer_idx)
                values[node.uid] = (producer.rec.result & _MASK
                                    if producer is not None else _UNKNOWN)
            continue
        entry = _entry_at(prb, node.order, node.pc)
        recorded = entry.rec.result & _MASK if entry is not None else None
        if kind == "const":
            value = node.imm & _MASK
            if recorded is not None and value != recorded:
                report.emit(
                    "MT005", Severity.ERROR,
                    f"constant {value} disagrees with the recorded "
                    f"result {recorded} of pc={node.pc}",
                    node_index=i,
                    hint="constant propagation folded a wrong value")
            values[node.uid] = value
        elif kind in ("vp", "ap"):
            if entry is None:
                values[node.uid] = _UNKNOWN
            elif kind == "vp":
                values[node.uid] = recorded
            else:
                values[node.uid] = entry.rec.src1_val & _MASK
        elif kind == "load":
            base = values[node.uid] = _UNKNOWN
            if node.inputs:
                base = values.get(node.inputs[0].uid, _UNKNOWN)
            if entry is not None and base is not _UNKNOWN:
                ea = (base + node.imm) & _MASK
                if entry.rec.ea is not None and ea != entry.rec.ea & _MASK:
                    report.emit(
                        "MT005", Severity.ERROR,
                        f"load at pc={node.pc} computes address {ea} but "
                        f"the PRB recorded {entry.rec.ea}",
                        node_index=i,
                        hint="base sub-tree was rewired incorrectly")
            if entry is not None:
                values[node.uid] = recorded
        elif kind == "op":
            known = all(values.get(c.uid, _UNKNOWN) is not _UNKNOWN
                        for c in node.inputs)
            if known:
                computed = thread._eval_op(node, values) & _MASK
                if recorded is not None and computed != recorded:
                    report.emit(
                        "MT005", Severity.ERROR,
                        f"{node.describe()!r} computes {computed} but "
                        f"the PRB recorded {recorded}",
                        node_index=i,
                        hint="move elimination / rewiring changed the "
                             "computed value")
                values[node.uid] = (recorded if recorded is not None
                                    else computed)
            else:
                values[node.uid] = (recorded if recorded is not None
                                    else _UNKNOWN)
        elif kind == "branch":
            if entry is None:
                continue
            known = all(values.get(c.uid, _UNKNOWN) is not _UNKNOWN
                        for c in node.inputs)
            if not known:
                continue
            prediction = thread._eval_branch(node, values, ())
            if prediction.taken != entry.rec.taken:
                report.emit(
                    "MT005", Severity.ERROR,
                    f"routine resolves the terminator "
                    f"{'taken' if prediction.taken else 'not-taken'} but "
                    f"the PRB recorded "
                    f"{'taken' if entry.rec.taken else 'not-taken'}",
                    node_index=i,
                    hint="the extracted dataflow does not compute the "
                         "branch predicate")
            elif prediction.target != entry.rec.next_pc:
                report.emit(
                    "MT005", Severity.ERROR,
                    f"routine predicts target {prediction.target} but "
                    f"the PRB recorded next_pc={entry.rec.next_pc}",
                    node_index=i)


# -- MT008 ----------------------------------------------------------------

def _check_suffix(report: VerifyReport, thread: Microthread,
                  prb: Optional[PostRetirementBuffer]) -> None:
    prefix = thread.prefix
    if tuple(thread.key.branches[:len(prefix)]) != tuple(prefix):
        report.emit(
            "MT008", Severity.ERROR,
            f"spawn prefix {tuple(prefix)} is not a prefix of the path "
            f"key branches {tuple(thread.key.branches)}",
            hint="prefix must list the path branches older than the "
                 "spawn point, oldest first")
    if prb is None or thread.separation <= 0:
        return
    spawn_idx = thread.built_from_idx - thread.separation
    window = [prb.get(pos)
              for pos in range(spawn_idx, thread.built_from_idx)]
    entries = [entry for entry in window if entry is not None]
    if len(entries) != len(window):
        return  # window partially evicted; nothing sound to diff
    derived = tuple(entry.rec.pc for entry in entries
                    if entry.rec.is_taken_control)
    if derived != tuple(thread.expected_suffix):
        report.emit(
            "MT008", Severity.ERROR,
            f"expected taken-branch suffix {tuple(thread.expected_suffix)} "
            f"but the PRB records {derived}",
            hint="suffix must cover every taken control between spawn "
                 "and terminator")


class BuildVerifier:
    """Accumulates a report per built routine; engine-side hook.

    Attach via ``SSMTEngine(..., verifier=BuildVerifier())`` (or
    ``run_ssmt(..., verifier=...)``): the engine calls
    :meth:`verify_built` with the live PRB right after each successful
    build, which is the only moment the full extraction window is
    guaranteed resident.
    """

    def __init__(self) -> None:
        self.reports: List[VerifyReport] = []

    def verify_built(self, thread: Microthread,
                     prb: PostRetirementBuffer) -> VerifyReport:
        report = verify_microthread(thread, prb)
        self.reports.append(report)
        return report

    @property
    def verified(self) -> int:
        return len(self.reports)

    @property
    def error_reports(self) -> List[VerifyReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def error_count(self) -> int:
        return sum(len(r.errors) for r in self.reports)

    @property
    def warning_count(self) -> int:
        return sum(len(r.warnings) for r in self.reports)

    @property
    def ok(self) -> bool:
        return not self.error_reports
