"""ObsSession: a TelemetrySession that also records event timelines.

The session *is a* :class:`~repro.telemetry.session.TelemetrySession`,
so attaching it costs the engine exactly what PR 2's layer costs — the
same ``is None`` hook sites, the same bound-method hot-path contract —
while every hook additionally appends one :class:`ObsEvent` to the
bounded :class:`~repro.obs.events.EventRecorder`:

* Path Cache / builder hooks -> ``promote`` / ``demote`` / ``build`` /
  ``build_failed`` instants,
* the spawn manager's tracer (an :class:`ObsThreadTracer`) ->
  ``spawn`` / ``spawn_rejected`` / ``microthread_abort`` /
  ``microthread_complete`` instants plus one ``microthread_span``
  complete-event per closed span,
* microthread execution -> a ``microthread_execute`` span (dispatch to
  ``Store_PCache``) and a ``store_pcache`` instant at arrival,
* prediction consumption -> ``prediction_consumed`` with the timeliness
  kind, and
* the engine's **control hook** (new in this layer; the base session
  returns ``None`` from :attr:`control_hook` so plain telemetry pays
  nothing) -> ``mispredict`` instants per mispredicted terminating
  branch, throttled ``active_contexts`` /
  ``prediction_cache_occupancy`` counters, and — when a
  :class:`~repro.obs.flight.FlightRecorder` is attached — online H2P
  classification with ``h2p_mispredict`` triggers and post-mortem
  dumps.

All cycle-domain timestamps are simulated cycle numbers, so two runs of
the same simulation produce the same event stream (the determinism the
shard-merge property test relies on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.obs.events import PH_COMPLETE, PH_COUNTER, EventRecorder
from repro.obs.export import to_chrome_trace, write_chrome_trace
from repro.obs.flight import FlightRecorder
from repro.telemetry.session import TelemetrySession
from repro.telemetry.tracer import ThreadTracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.branch.unit import BranchOutcome
    from repro.core.microthread import Microthread
    from repro.core.path import PathEvent
    from repro.core.spawn import ActiveMicrothread
    from repro.core.ssmt import SSMTEngine
    from repro.sim.trace import DynamicInstruction
    from repro.uarch.timing import TimingResult


class ObsThreadTracer(ThreadTracer):
    """A ThreadTracer that mirrors lifecycle transitions as events.

    The spawn manager already notifies its tracer of every instance
    transition; routing those notifications into the recorder here
    means the engine needs no additional microthread hook sites.
    """

    def __init__(self, recorder: EventRecorder, max_spans: int = 10_000,
                 max_routines: int = 10_000,
                 term_pc: Optional[int] = None):
        super().__init__(max_spans=max_spans, max_routines=max_routines,
                         term_pc=term_pc)
        self.recorder = recorder

    def on_spawn(self, instance: "ActiveMicrothread") -> None:
        super().on_spawn(instance)
        self.recorder.cycle("spawn", instance.spawn_cycle,
                            pc=instance.thread.term_pc,
                            ctx=instance.context_id,
                            target_seq=instance.target_seq)

    def on_spawn_rejected(self, thread: "Microthread", idx: int,
                          cycle: int, reason: str) -> None:
        super().on_spawn_rejected(thread, idx, cycle, reason)
        self.recorder.cycle("spawn_rejected", cycle, pc=thread.term_pc,
                            reason=reason)

    def _close_event(self, instance: "ActiveMicrothread", name: str,
                     cycle: int, **args: Any) -> None:
        span = self._live.get(id(instance))
        self.recorder.cycle(name, cycle, pc=instance.thread.term_pc, **args)
        if span is not None:
            self.recorder.cycle(
                "microthread_span", span.spawn_cycle, ph=PH_COMPLETE,
                dur=max(0, cycle - span.spawn_cycle),
                pc=span.term_pc, span_id=span.span_id)

    def on_abort(self, instance: "ActiveMicrothread", cause: str,
                 idx: int, cycle: int) -> None:
        self._close_event(instance, "microthread_abort", cycle, cause=cause)
        super().on_abort(instance, cause, idx, cycle)

    def on_complete(self, instance: "ActiveMicrothread", idx: int,
                    cycle: int) -> None:
        self._close_event(instance, "microthread_complete", cycle)
        super().on_complete(instance, idx, cycle)


class ObsSession(TelemetrySession):
    """Telemetry session + dual-domain event recorder; see module doc."""

    def __init__(self, sample_every: int = 2000,
                 trace_spans: bool = True,
                 max_spans: int = 10_000,
                 term_pc: Optional[int] = None,
                 max_samples: int = 100_000,
                 max_events: int = 200_000,
                 flight: Optional[FlightRecorder] = None,
                 occupancy_every: int = 1000):
        super().__init__(sample_every=sample_every, trace_spans=False,
                         term_pc=term_pc, max_samples=max_samples)
        self.recorder = EventRecorder(max_events=max_events)
        self.flight = flight
        if flight is not None:
            # the flight ring sees every cycle event, stored or dropped
            self.recorder.cycle_tap = flight.tap
        if trace_spans:
            self.tracer = ObsThreadTracer(self.recorder,
                                          max_spans=max_spans,
                                          term_pc=term_pc)
        self.occupancy_every = max(1, occupancy_every)
        self._next_occupancy_cycle = 0
        self._last_cycle = 0

    # -- attachment --------------------------------------------------------

    def attach(self, engine: "SSMTEngine") -> None:
        super().attach(engine)
        self.registry.register_callback("obs", self.recorder.as_dict)
        if self.flight is not None:
            self.registry.register_callback("obs.flight",
                                            self.flight.as_dict)

    # -- the per-terminating-branch control hook ---------------------------

    @property
    def control_hook(self) -> Optional[Callable[..., None]]:
        """Bound per-terminating-branch callable (base sessions return
        ``None``, so the engine's dispatch stays one identity test)."""
        return self._on_control

    def _on_control(self, engine: "SSMTEngine", idx: int,
                    rec: "DynamicInstruction", outcome: "BranchOutcome",
                    fetch_cycle: int, resolve_cycle: int) -> None:
        self._last_cycle = resolve_cycle
        recorder = self.recorder
        mispredicted = outcome.mispredicted
        if mispredicted:
            recorder.cycle("mispredict", resolve_cycle, pc=rec.pc, idx=idx)
        flight = self.flight
        if flight is not None:
            # key by the tracker's integer path id (O(1)); the full
            # history tuple is materialised only when a dump fires
            tracker = engine.tracker
            before = flight.h2p_mispredicts
            dump = flight.on_branch(
                idx, rec.pc, tracker.current_path_id(), mispredicted,
                resolve_cycle, engine.spawner, tracker.current_branches)
            if flight.h2p_mispredicts != before:
                recorder.cycle(
                    "h2p_mispredict", resolve_cycle, pc=rec.pc, idx=idx,
                    dump=dump.dump_id if dump is not None else -1)
        if resolve_cycle >= self._next_occupancy_cycle:
            self._next_occupancy_cycle = resolve_cycle + self.occupancy_every
            recorder.cycle("active_contexts", resolve_cycle, ph=PH_COUNTER,
                           active=len(engine.spawner.active))
            recorder.cycle("prediction_cache_occupancy", resolve_cycle,
                           ph=PH_COUNTER,
                           entries=len(engine.prediction_cache))

    # -- telemetry hooks, mirrored into the recorder -----------------------

    def on_promote(self, event: "PathEvent", cycle: int) -> None:
        super().on_promote(event, cycle)
        self._last_cycle = cycle
        self.recorder.cycle("promote", cycle, pc=event.key.term_pc,
                            path_id=event.path_id)

    def on_build(self, thread: "Microthread", event: "PathEvent",
                 cycle: int, build_latency: int) -> None:
        super().on_build(thread, event, cycle, build_latency)
        self.recorder.cycle("build", cycle, pc=thread.term_pc,
                            size=thread.routine_size,
                            chain=thread.longest_chain,
                            sep=thread.separation, latency=build_latency)

    def on_build_failed(self, event: "PathEvent", cycle: int,
                        reason: str) -> None:
        super().on_build_failed(event, cycle, reason)
        self.recorder.cycle("build_failed", cycle, pc=event.key.term_pc,
                            reason=reason)

    def on_demote(self, term_pc: int) -> None:
        super().on_demote(term_pc)
        # the demote hook carries no cycle; the control hook's last
        # resolve cycle is the tightest timestamp available
        self.recorder.cycle("demote", self._last_cycle, pc=term_pc)

    def on_execute(self, instance: "ActiveMicrothread",
                   dispatch_cycle: int) -> None:
        super().on_execute(instance, dispatch_cycle)
        pc = instance.thread.term_pc
        self.recorder.cycle(
            "microthread_execute", dispatch_cycle, ph=PH_COMPLETE,
            dur=max(0, instance.arrival_cycle - dispatch_cycle),
            pc=pc, ctx=instance.context_id)
        self.recorder.cycle("store_pcache", instance.arrival_cycle, pc=pc,
                            target_seq=instance.target_seq)

    def on_outcome(self, idx: int, rec: "DynamicInstruction", kind: str,
                   correct: bool) -> None:
        # peek before the base class pops the lookup stash
        stashed = self._lookup_stash.get(idx)
        super().on_outcome(idx, rec, kind, correct)
        if stashed is not None:
            self.recorder.cycle("prediction_consumed", stashed[1],
                                pc=rec.pc, idx=idx, kind=kind,
                                correct=correct)

    def on_run_end(self, engine: "SSMTEngine",
                   result: "TimingResult") -> None:
        self.recorder.cycle("run", 0, ph=PH_COMPLETE,
                            dur=float(result.cycles),
                            instructions=result.instructions)
        super().on_run_end(engine, result)

    # -- export ------------------------------------------------------------

    def chrome_payload(self,
                       context: Optional[Dict[str, Any]] = None,
                       ) -> Dict[str, Any]:
        """The run's ``repro.obs/1`` Chrome trace object."""
        return to_chrome_trace(self.recorder.sorted_events(),
                               context=context,
                               dropped=self.recorder.total_dropped)

    def write_trace(self, path: str,
                    context: Optional[Dict[str, Any]] = None,
                    ) -> Dict[str, Any]:
        """Write the run's trace artifact; returns the payload."""
        return write_chrome_trace(path, self.recorder.sorted_events(),
                                  context=context,
                                  dropped=self.recorder.total_dropped)
