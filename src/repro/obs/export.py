"""Chrome trace-event JSON export (loads directly in Perfetto).

The artifact (schema ``repro.obs/1``) is the Chrome trace-event *object
form* — ``{"traceEvents": [...], ...}`` — which both ``chrome://tracing``
and https://ui.perfetto.dev open as-is.  Extra top-level keys (the
schema marker, context) are permitted by the format and ignored by the
viewers.

Track layout
------------
Each clock domain renders as its own **process** so the two timelines
can never be confused:

* ``pid 1`` — *sim cycles*: ``ts`` is the simulated cycle number
  (displayed as µs; one cycle = one µs of trace time).
* ``pid 2`` — *wall clock*: ``ts`` is real microseconds since the
  recorder started.

Within a process, each event **category** gets its own named thread
track (``branch``, ``path_cache``, ``builder``, ``microthread``,
``occupancy``, ``run``, ``sweep``), emitted via standard ``M``
(metadata) events.  Instants use phase ``i``, spans phase ``X`` with a
``dur``, occupancy counters phase ``C``.

Every exported event also carries its ``domain`` and ``seq`` so
:func:`events_from_chrome` can round-trip an artifact back into
:class:`~repro.obs.events.ObsEvent` rows (used by shard merging and
``repro postmortem``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.events import (
    CYCLE_DOMAIN,
    PH_COUNTER,
    WALL_DOMAIN,
    ObsEvent,
    sort_events,
)
from repro.schemas import schema_string

#: Schema of the exported Chrome trace-event artifact.
OBS_SCHEMA = schema_string("repro.obs", 1)

#: Domain -> Chrome process id (one process track per clock domain).
DOMAIN_PIDS = {CYCLE_DOMAIN: 1, WALL_DOMAIN: 2}
DOMAIN_PROCESS_NAMES = {CYCLE_DOMAIN: "sim cycles",
                        WALL_DOMAIN: "wall clock"}

#: Category -> Chrome thread id within its domain's process.
CATEGORY_TIDS = {
    "branch": 1,
    "path_cache": 2,
    "builder": 3,
    "microthread": 4,
    "occupancy": 5,
    "run": 6,
    "sweep": 1,
}


def _metadata_events(domains: Iterable[str],
                     categories: Dict[str, set]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for domain in sorted(domains):
        pid = DOMAIN_PIDS[domain]
        out.append({"ph": "M", "pid": pid, "tid": 0,
                    "name": "process_name",
                    "args": {"name": DOMAIN_PROCESS_NAMES[domain]}})
        out.append({"ph": "M", "pid": pid, "tid": 0,
                    "name": "process_sort_index",
                    "args": {"sort_index": pid}})
        for cat in sorted(categories.get(domain, ())):
            out.append({"ph": "M", "pid": pid,
                        "tid": CATEGORY_TIDS.get(cat, 99),
                        "name": "thread_name", "args": {"name": cat}})
    return out


def _trace_event(event: ObsEvent) -> Dict[str, Any]:
    pid = DOMAIN_PIDS[event.domain]
    tid = CATEGORY_TIDS.get(event.cat, 99)
    row: Dict[str, Any] = {
        "name": event.name,
        "cat": event.cat,
        "ph": event.ph,
        "ts": event.ts,
        "pid": pid,
        "tid": tid,
        "domain": event.domain,
        "seq": event.seq,
    }
    if event.ph == "X":
        row["dur"] = event.dur
    if event.ph == PH_COUNTER:
        # Counter events render their args as stacked series values.
        row["args"] = {k: v for k, v in event.args.items()
                       if isinstance(v, (int, float))}
    else:
        row["args"] = dict(event.args)
    if event.ph == "i":
        row["s"] = "t"  # instant scope: thread
    return row


def to_chrome_trace(events: Iterable[ObsEvent],
                    context: Optional[Dict[str, Any]] = None,
                    dropped: int = 0) -> Dict[str, Any]:
    """Render events into one ``repro.obs/1`` Chrome trace object."""
    ordered = sort_events(events)
    domains = {event.domain for event in ordered}
    categories: Dict[str, set] = {}
    for event in ordered:
        categories.setdefault(event.domain, set()).add(event.cat)
    trace_events = _metadata_events(domains, categories)
    trace_events.extend(_trace_event(event) for event in ordered)
    return {
        "schema": OBS_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": trace_events,
        "otherData": dict(context or {}, events=len(ordered),
                          dropped=dropped),
    }


def write_chrome_trace(path: str, events: Iterable[ObsEvent],
                       context: Optional[Dict[str, Any]] = None,
                       dropped: int = 0) -> Dict[str, Any]:
    """Write the artifact; returns the payload that was written."""
    payload = to_chrome_trace(events, context=context, dropped=dropped)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    return payload


def events_from_chrome(payload: Dict[str, Any]) -> List[ObsEvent]:
    """Round-trip a ``repro.obs/1`` artifact back into event rows.

    Metadata (``M``) events are synthetic track labels, not
    observations, and are skipped.
    """
    if payload.get("schema") != OBS_SCHEMA:
        raise ValueError(f"not a {OBS_SCHEMA} artifact: "
                         f"schema={payload.get('schema')!r}")
    out: List[ObsEvent] = []
    for row in payload.get("traceEvents", []):
        if row.get("ph") == "M":
            continue
        out.append(ObsEvent(
            domain=row["domain"], ts=row["ts"], seq=row["seq"],
            name=row["name"], cat=row["cat"], ph=row.get("ph", "i"),
            dur=row.get("dur", 0.0), args=dict(row.get("args", {}))))
    return sort_events(out)
