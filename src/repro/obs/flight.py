"""The misprediction flight recorder (post-mortems for H2P branches).

Constantinou et al. ("The Non-Predictability of Mispredicted Branches
using Timing Information", PAPERS.md) make the case that the event
stream *around* a misprediction is the analysis substrate — aggregate
rates cannot say why one particular prediction failed.  The flight
recorder implements that: a small ring buffer taps every cycle-domain
event (stored or dropped by the main buffer), and whenever a
**hard-to-predict** path mispredicts, the ring is dumped together with
the machine's in-flight microthread state.

"Hard-to-predict" reuses :mod:`repro.analysis.h2p`'s regime taxonomy
verbatim: a path is H2P once its online mispredict rate exceeds the
difficult threshold over at least ``min_occurrences`` executions — the
same classification the arena applies offline, computed incrementally
here so the recorder can fire mid-run.

Each :class:`FlightDump` carries:

* the **trigger** — trace index, branch PC, cycle, the taken-branch
  path history, and the path's occurrence/mispredict counts,
* the last-N **events** from the ring (causally tagged: every
  microthread event names its terminating branch), and
* the **in-flight microthread state** at the trigger — per active
  instance its target, arrival cycle, and slack against the trigger —
  exactly what "was a repair in flight, and was it going to make it?"
  needs.

Dumps are bounded (``max_dumps``) but the ``h2p_mispredicts`` tally
sees every firing.  ``repro postmortem`` renders and diffs the written
``repro.obs.flight/1`` artifact, e.g. between an SSMT-on and an
SSMT-off run of the same workload.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.analysis.h2p import classify_counts
from repro.obs.events import ObsEvent
from repro.schemas import schema_string

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spawn import SpawnManager

#: Schema of the written flight-recorder artifact.
FLIGHT_SCHEMA = schema_string("repro.obs.flight", 1)


@dataclass
class FlightDump:
    """One post-mortem snapshot, taken at an H2P misprediction."""

    dump_id: int
    idx: int                    # trace index of the mispredicted branch
    pc: int
    cycle: int
    path: Tuple[int, ...]       # taken-branch history at the trigger
    occurrences: int
    mispredicts: int
    events: List[Dict[str, Any]] = field(default_factory=list)
    inflight: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.occurrences if self.occurrences else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "dump_id": self.dump_id,
            "idx": self.idx,
            "pc": self.pc,
            "cycle": self.cycle,
            "path": list(self.path),
            "occurrences": self.occurrences,
            "mispredicts": self.mispredicts,
            "mispredict_rate": round(self.mispredict_rate, 6),
            "events": list(self.events),
            "inflight": list(self.inflight),
        }


def _inflight_state(spawner: Optional["SpawnManager"],
                    cycle: int) -> List[Dict[str, Any]]:
    """Serializable view of every live microthread at the trigger."""
    if spawner is None:
        return []
    out: List[Dict[str, Any]] = []
    for instance in spawner.active:
        out.append({
            "term_pc": instance.thread.term_pc,
            "path_id": instance.thread.path_id,
            "spawn_idx": instance.spawn_idx,
            "target_seq": instance.target_seq,
            "spawn_cycle": instance.spawn_cycle,
            "arrival_cycle": instance.arrival_cycle,
            "aborted": instance.aborted,
            "suffix_progress": instance.suffix_progress,
            # negative = the Store_PCache had not landed by the trigger
            "slack_vs_trigger": cycle - instance.arrival_cycle,
        })
    return out


class FlightRecorder:
    """Online H2P classification + bounded ring of recent events."""

    def __init__(self, window: int = 64, max_dumps: int = 16,
                 easy_threshold: float = 0.01,
                 difficult_threshold: float = 0.10,
                 min_occurrences: int = 4):
        if window <= 0 or max_dumps <= 0:
            raise ValueError("flight window/dump capacity must be positive")
        self.window = window
        self.max_dumps = max_dumps
        self.easy_threshold = easy_threshold
        self.difficult_threshold = difficult_threshold
        self.min_occurrences = min_occurrences
        self.ring: Deque[ObsEvent] = deque(maxlen=window)
        self.dumps: List[FlightDump] = []
        #: every H2P misprediction, including ones past ``max_dumps``
        self.h2p_mispredicts = 0
        self.triggers_by_pc: Counter = Counter()
        self._counts: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}

    # -- the cycle-stream tap ---------------------------------------------

    def tap(self, event: ObsEvent) -> None:
        """Feed one cycle-domain event into the ring (recorder tap)."""
        self.ring.append(event)

    # -- classification + triggering --------------------------------------

    def regime(self, pc: int, path: Tuple[int, ...]) -> str:
        counts = self._counts.get((pc, path))
        if counts is None:
            return "transient"
        return classify_counts(counts[0], counts[1], self.easy_threshold,
                               self.difficult_threshold,
                               self.min_occurrences)

    def on_branch(self, idx: int, pc: int, path: Any,
                  mispredicted: bool, cycle: int,
                  spawner: Optional["SpawnManager"] = None,
                  path_fn: Optional[Any] = None,
                  ) -> Optional[FlightDump]:
        """Observe one terminating branch; returns a dump if it fired.

        The regime is evaluated *before* this observation is added, so
        a trigger reflects the path's history up to (not including) the
        mispredict that fired it — the same "frequently executed yet
        still wrong" reading as the offline profile.

        ``path`` is only a classification *key* — any hashable works,
        and the hot caller passes the tracker's integer path id to keep
        this O(1) per branch.  The full taken-branch history is needed
        only when a dump actually fires, so it arrives lazily through
        ``path_fn`` (falling back to ``path`` itself when it is the
        history tuple).
        """
        key = (pc, path)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0, 0]
        occurrences = counts[0]
        counts[0] = occurrences + 1
        if not mispredicted:
            # correctly-predicted fast path: count the occurrence only
            return None
        mispredicts = counts[1]
        counts[1] = mispredicts + 1
        # pre-observation regime, inlining classify_counts(...) == "h2p"
        # (the cold paths re-derive it through the shared rule)
        if not (occurrences >= self.min_occurrences
                and mispredicts > occurrences * self.difficult_threshold
                and mispredicts > occurrences * self.easy_threshold):
            return None
        self.h2p_mispredicts += 1
        self.triggers_by_pc[pc] += 1
        if len(self.dumps) >= self.max_dumps:
            return None
        history = tuple(path_fn()) if path_fn is not None else (
            tuple(path) if isinstance(path, (tuple, list)) else (path,))
        dump = FlightDump(
            dump_id=len(self.dumps),
            idx=idx, pc=pc, cycle=cycle, path=history,
            occurrences=counts[0], mispredicts=counts[1],
            events=[event.as_dict() for event in self.ring],
            inflight=_inflight_state(spawner, cycle),
        )
        self.dumps.append(dump)
        return dump

    # -- export ------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "h2p_mispredicts": self.h2p_mispredicts,
            "dumps_recorded": len(self.dumps),
            "unique_trigger_pcs": len(self.triggers_by_pc),
        }

    def payload(self, context: Optional[Dict[str, Any]] = None,
                ) -> Dict[str, Any]:
        return {
            "schema": FLIGHT_SCHEMA,
            "context": dict(context or {}),
            "window": self.window,
            "thresholds": {
                "easy": self.easy_threshold,
                "difficult": self.difficult_threshold,
                "min_occurrences": self.min_occurrences,
            },
            "h2p_mispredicts": self.h2p_mispredicts,
            "triggers_by_pc": {str(pc): count for pc, count
                               in sorted(self.triggers_by_pc.items())},
            "dumps": [dump.as_dict() for dump in self.dumps],
        }


def write_flight(path: str, recorder: FlightRecorder,
                 context: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
    """Write the ``repro.obs.flight/1`` artifact; returns the payload."""
    payload = recorder.payload(context=context)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_flight(path: str) -> Dict[str, Any]:
    """Load and validate a flight artifact."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(f"{path}: not a {FLIGHT_SCHEMA} artifact "
                         f"(schema={payload.get('schema')!r})")
    return payload


def diff_flight(reference: Dict[str, Any],
                candidate: Dict[str, Any]) -> Dict[str, Any]:
    """Diff two flight artifacts (e.g. SSMT-on vs SSMT-off).

    Triggers are matched by branch PC: ``repaired`` PCs fired in the
    reference but not the candidate (the mechanism fixed them),
    ``surviving`` fired in both, ``introduced`` only in the candidate.
    ``event_mix`` diffs the per-event-name histograms of the dumped
    windows — what the machine was doing around mispredictions in one
    run but not the other.
    """
    ref_pcs = {int(pc) for pc in reference.get("triggers_by_pc", {})}
    cand_pcs = {int(pc) for pc in candidate.get("triggers_by_pc", {})}

    def event_mix(payload: Dict[str, Any]) -> Counter:
        mix: Counter = Counter()
        for dump in payload.get("dumps", []):
            for event in dump.get("events", []):
                mix[event["name"]] += 1
        return mix

    ref_mix = event_mix(reference)
    cand_mix = event_mix(candidate)
    names = sorted(set(ref_mix) | set(cand_mix))
    return {
        "reference_h2p_mispredicts": reference.get("h2p_mispredicts", 0),
        "candidate_h2p_mispredicts": candidate.get("h2p_mispredicts", 0),
        "repaired_pcs": sorted(ref_pcs - cand_pcs),
        "surviving_pcs": sorted(ref_pcs & cand_pcs),
        "introduced_pcs": sorted(cand_pcs - ref_pcs),
        "event_mix": {name: {"reference": ref_mix.get(name, 0),
                             "candidate": cand_mix.get(name, 0)}
                      for name in names},
    }
