"""The dual-domain event model and its bounded recorder.

Every observation is one :class:`ObsEvent` in exactly one clock domain:

* :data:`CYCLE_DOMAIN` (``"cycle"``) — ``ts`` is a simulated cycle
  number.  Deterministic: two runs of the same simulation emit the same
  cycle-domain stream (``tests/test_obs_sweep.py`` property-checks this
  across serial, parallel, and cached sweep executions).
* :data:`WALL_DOMAIN` (``"wall"``) — ``ts`` is wall-clock microseconds
  since the recorder was created.  Inherently nondeterministic; the
  merge identity projection (:func:`repro.obs.sweepobs.timeline_identity`)
  excludes wall timestamps for exactly that reason.

``seq`` is a per-recorder monotonic sequence number, so the canonical
total order of any merged timeline is ``(domain, ts, seq)`` — cycle
events first (their order is semantic), wall events after.

The recorder is **bounded**: at most ``max_events`` events are stored,
with per-category drop counters that see everything (the same
stored + dropped accounting contract as the core
:class:`~repro.core.events.EventLog`).

:data:`EVENT_CATALOG` is the taxonomy — every event name the toolkit
emits, with its domain and category.  ``tools/check_docs.py`` asserts
each catalogued name is documented in ``docs/observability.md``, and
the recorder refuses names outside the catalogue so the taxonomy cannot
drift silently.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

#: Simulated-cycle clock domain (deterministic timestamps).
CYCLE_DOMAIN = "cycle"
#: Wall-clock domain (microseconds since recorder creation).
WALL_DOMAIN = "wall"

DOMAINS = (CYCLE_DOMAIN, WALL_DOMAIN)

#: name -> (domain, category).  The single source of truth for the
#: event taxonomy; docs and the recorder both validate against it.
EVENT_CATALOG: Dict[str, Tuple[str, str]] = {
    # -- cycle domain: branch outcomes ------------------------------------
    "mispredict": (CYCLE_DOMAIN, "branch"),
    "h2p_mispredict": (CYCLE_DOMAIN, "branch"),
    "prediction_consumed": (CYCLE_DOMAIN, "branch"),
    # -- cycle domain: Path Cache / builder -------------------------------
    "promote": (CYCLE_DOMAIN, "path_cache"),
    "demote": (CYCLE_DOMAIN, "path_cache"),
    "build": (CYCLE_DOMAIN, "builder"),
    "build_failed": (CYCLE_DOMAIN, "builder"),
    # -- cycle domain: microthread lifecycle ------------------------------
    "spawn": (CYCLE_DOMAIN, "microthread"),
    "spawn_rejected": (CYCLE_DOMAIN, "microthread"),
    "microthread_execute": (CYCLE_DOMAIN, "microthread"),
    "store_pcache": (CYCLE_DOMAIN, "microthread"),
    "microthread_abort": (CYCLE_DOMAIN, "microthread"),
    "microthread_complete": (CYCLE_DOMAIN, "microthread"),
    "microthread_span": (CYCLE_DOMAIN, "microthread"),
    # -- cycle domain: timing-model occupancy counters --------------------
    "active_contexts": (CYCLE_DOMAIN, "occupancy"),
    "prediction_cache_occupancy": (CYCLE_DOMAIN, "occupancy"),
    "run": (CYCLE_DOMAIN, "run"),
    # -- wall domain: sweep execution -------------------------------------
    "task_dispatch": (WALL_DOMAIN, "sweep"),
    "task_run": (WALL_DOMAIN, "sweep"),
    "cache_hit": (WALL_DOMAIN, "sweep"),
    "cache_miss": (WALL_DOMAIN, "sweep"),
    "heartbeat": (WALL_DOMAIN, "sweep"),
    "pool_rebuild": (WALL_DOMAIN, "sweep"),
    "stall": (WALL_DOMAIN, "sweep"),
    "task_failed": (WALL_DOMAIN, "sweep"),
}

#: Chrome trace-event phases the model uses.
PH_INSTANT = "i"
PH_COMPLETE = "X"
PH_COUNTER = "C"


class ObsEvent:
    """One structured event on one clock-domain timeline."""

    __slots__ = ("domain", "ts", "seq", "name", "cat", "ph", "dur", "args")

    def __init__(self, domain: str, ts: float, seq: int, name: str,
                 cat: str, ph: str = PH_INSTANT, dur: float = 0.0,
                 args: Optional[Dict[str, Any]] = None):
        self.domain = domain
        self.ts = ts
        self.seq = seq
        self.name = name
        self.cat = cat
        self.ph = ph
        self.dur = dur
        self.args = args if args is not None else {}

    def sort_key(self) -> Tuple[str, float, int]:
        """The canonical total order of a merged timeline."""
        return (self.domain, self.ts, self.seq)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "domain": self.domain,
            "ts": self.ts,
            "seq": self.seq,
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "args": dict(self.args),
        }
        if self.ph == PH_COMPLETE:
            out["dur"] = self.dur
        return out

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "ObsEvent":
        return cls(domain=row["domain"], ts=row["ts"], seq=row["seq"],
                   name=row["name"], cat=row["cat"],
                   ph=row.get("ph", PH_INSTANT), dur=row.get("dur", 0.0),
                   args=dict(row.get("args", {})))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ObsEvent({self.domain}@{self.ts} #{self.seq} "
                f"{self.name} {self.args})")


class EventRecorder:
    """Bounded dual-domain event sink with drop accounting.

    One recorder per traced run (or per sweep-side process).  Events are
    appended through :meth:`cycle` / :meth:`wall`; the flight recorder
    taps the cycle stream through an optional ``cycle_tap`` callback
    that sees *every* cycle event, stored or dropped, so a full main
    buffer can never blind a post-mortem.
    """

    def __init__(self, max_events: int = 200_000,
                 clock=time.monotonic):
        if max_events <= 0:
            raise ValueError("event capacity must be positive")
        self.events: Deque[ObsEvent] = deque(maxlen=max_events)
        self.max_events = max_events
        self.dropped: Counter = Counter()
        self._seq = 0
        self._clock = clock
        self._wall_base = clock()
        #: optional callable fed every cycle-domain event (flight tap)
        self.cycle_tap = None

    # -- emission ----------------------------------------------------------

    def _emit(self, event: ObsEvent) -> ObsEvent:
        if len(self.events) == self.max_events:
            self.dropped[self.events[0].cat] += 1
        self.events.append(event)
        return event

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def cycle(self, name: str, ts: int, ph: str = PH_INSTANT,
              dur: float = 0.0, **args: Any) -> ObsEvent:
        """Record one simulated-cycle event."""
        domain, cat = EVENT_CATALOG[name]
        if domain != CYCLE_DOMAIN:
            raise ValueError(f"{name!r} is a {domain}-domain event")
        event = ObsEvent(CYCLE_DOMAIN, ts, self._next_seq(), name, cat,
                         ph=ph, dur=dur, args=args)
        tap = self.cycle_tap
        if tap is not None:
            tap(event)
        return self._emit(event)

    def wall(self, name: str, ph: str = PH_INSTANT, dur: float = 0.0,
             ts: Optional[float] = None, **args: Any) -> ObsEvent:
        """Record one wall-clock event (timestamp in µs since start)."""
        domain, cat = EVENT_CATALOG[name]
        if domain != WALL_DOMAIN:
            raise ValueError(f"{name!r} is a {domain}-domain event")
        if ts is None:
            ts = (self._clock() - self._wall_base) * 1e6
        event = ObsEvent(WALL_DOMAIN, ts, self._next_seq(), name, cat,
                         ph=ph, dur=dur, args=args)
        return self._emit(event)

    # -- queries / export --------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def sorted_events(self) -> List[ObsEvent]:
        """Stored events in canonical ``(domain, ts, seq)`` order."""
        return sorted(self.events, key=ObsEvent.sort_key)

    def rows(self) -> List[Dict[str, Any]]:
        return [event.as_dict() for event in self.sorted_events()]

    def counts(self) -> Dict[str, int]:
        """Stored-event counts per event name."""
        tally: Counter = Counter(event.name for event in self.events)
        return dict(sorted(tally.items()))

    def as_dict(self) -> Dict[str, Any]:
        """Aggregate surface (registry-collector compatible)."""
        out: Dict[str, Any] = {"stored": len(self.events),
                               "dropped": self.total_dropped}
        for name, count in self.counts().items():
            out[f"count_{name}"] = count
        return out


def sort_events(events: Iterable[ObsEvent]) -> List[ObsEvent]:
    """Normalize any event collection into canonical timeline order."""
    return sorted(events, key=ObsEvent.sort_key)
