"""Sweep-side observability: trace shards, merging, and live progress.

Cross-process aggregation works by **sharding**: each traced worker
writes its own ``repro.obs/1`` artifact into the sweep's trace
directory, named by the task's content-addressed key
(``<task_key>.trace.json``).  Because the key already identifies the
simulation bit-exactly, shards compose with the result cache for free —
a cached sweep re-uses the shard a previous run wrote, and a re-run
overwrites with identical content.  :func:`merge_shards` folds any set
of shards into one timeline, normalised by the canonical
``(domain, ts, seq)`` order; ``tests/test_obs_sweep.py`` property-checks
that serial, parallel, and cached executions of the same grid merge to
event-identical timelines (via :func:`timeline_identity`, which
projects away the only legitimately nondeterministic coordinates: wall
timestamps and durations).

:class:`SweepObs` is the runner-side observer: it records the sweep's
own **wall-domain** events (dispatch, cache hit/miss, per-task run
spans, heartbeats, pool rebuilds, stalls) into an
:class:`~repro.obs.events.EventRecorder`, and in ``--live`` mode echoes
heartbeat progress lines — surfacing a stalled pool *while* it stalls
instead of after the timeout fires.
"""

from __future__ import annotations

import json
import os
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.obs.events import (
    CYCLE_DOMAIN,
    PH_COMPLETE,
    EventRecorder,
    ObsEvent,
)
from repro.obs.export import events_from_chrome, write_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.taskkey import SweepTask

#: Shard filename suffix inside a sweep trace directory.
SHARD_SUFFIX = ".trace.json"


# -- shard I/O --------------------------------------------------------------

def shard_path(trace_dir: str, key: str) -> str:
    """Where the worker shard for one task key lives."""
    return os.path.join(trace_dir, f"{key}{SHARD_SUFFIX}")


def write_shard(trace_dir: str, key: str, events: List[ObsEvent],
                context: Optional[Dict[str, Any]] = None,
                dropped: int = 0) -> str:
    """Write one task's shard; returns its path."""
    path = shard_path(trace_dir, key)
    write_chrome_trace(path, events,
                       context=dict(context or {}, task_key=key),
                       dropped=dropped)
    return path


def load_shard(trace_dir: str, key: str) -> List[ObsEvent]:
    """Events of one task's shard, in canonical order."""
    with open(shard_path(trace_dir, key), encoding="utf-8") as handle:
        return events_from_chrome(json.load(handle))


def load_shards(trace_dir: str) -> Dict[str, List[ObsEvent]]:
    """Every shard in a trace directory, keyed by task key."""
    shards: Dict[str, List[ObsEvent]] = {}
    for name in sorted(os.listdir(trace_dir)):
        if not name.endswith(SHARD_SUFFIX):
            continue
        key = name[:-len(SHARD_SUFFIX)]
        shards[key] = load_shard(trace_dir, key)
    return shards


# -- merging ----------------------------------------------------------------

def merge_shards(shards: Dict[str, List[ObsEvent]]) -> List[ObsEvent]:
    """Fold per-task shards into one timeline.

    Every event is re-tagged with a short ``task`` arg so merged tracks
    stay attributable, then the whole set is normalised into the
    canonical ``(domain, ts, seq)`` order — ties across shards break by
    task key, and sequence numbers are reassigned so the merged
    timeline is itself a valid single-recorder stream.
    """
    tagged: List[Tuple[str, ObsEvent]] = []
    for key in sorted(shards):
        for event in shards[key]:
            tagged.append((key, event))
    tagged.sort(key=lambda pair: (pair[1].domain, pair[1].ts, pair[0],
                                  pair[1].seq))
    merged: List[ObsEvent] = []
    for seq, (key, event) in enumerate(tagged):
        merged.append(ObsEvent(
            domain=event.domain, ts=event.ts, seq=seq,
            name=event.name, cat=event.cat, ph=event.ph, dur=event.dur,
            args=dict(event.args, task=key[:12])))
    return merged


def write_merged_trace(path: str, shards: Dict[str, List[ObsEvent]],
                       context: Optional[Dict[str, Any]] = None,
                       ) -> Dict[str, Any]:
    """Write the merged ``repro.obs/1`` artifact for a whole sweep."""
    return write_chrome_trace(path, merge_shards(shards),
                              context=dict(context or {},
                                           shards=len(shards)))


def timeline_identity(shards: Dict[str, List[ObsEvent]],
                      ) -> List[Tuple[Any, ...]]:
    """The deterministic projection of a sharded timeline.

    Two sweep executions are *event-identical* iff their identities are
    equal.  Cycle-domain events project completely (the simulation is
    deterministic, so name, cycle, duration, and args must all match);
    wall-domain events keep their name and per-shard emission order but
    drop timestamps and durations, which legitimately differ between
    runs.
    """
    identity: List[Tuple[Any, ...]] = []
    for key in sorted(shards):
        for event in sorted(shards[key], key=lambda e: e.seq):
            if event.domain == CYCLE_DOMAIN:
                identity.append((
                    key, event.seq, event.domain, event.name, event.ph,
                    event.ts, event.dur,
                    json.dumps(event.args, sort_keys=True)))
            else:
                identity.append((key, event.seq, event.domain, event.name,
                                 event.ph))
    return identity


# -- the runner-side observer ----------------------------------------------

class SweepObs:
    """Wall-domain observer for :class:`~repro.parallel.runner.SweepRunner`.

    Implements the runner's observer protocol (duck-typed; the parallel
    layer never imports this module).  All timestamps land in the
    recorder's wall domain; with ``live=True`` each heartbeat / stall /
    rebuild also echoes a human progress line.
    """

    def __init__(self, live: bool = False,
                 heartbeat_interval: float = 5.0,
                 max_events: int = 200_000,
                 echo: Callable[[str], None] = print):
        #: how often the runner should wake to report progress (seconds)
        self.heartbeat_interval = max(0.1, heartbeat_interval)
        self.live = live
        self.recorder = EventRecorder(max_events=max_events)
        self._echo = echo
        self._dispatch_ts: Dict[str, float] = {}
        self._done = 0
        self._failed = 0
        self._start = time.monotonic()

    def _say(self, line: str) -> None:
        if self.live:
            self._echo(f"sweep[live]: {line}")

    # -- runner protocol ---------------------------------------------------

    def on_cache_hit(self, task: "SweepTask") -> None:
        self.recorder.wall("cache_hit", key=task.key[:12], label=task.label)

    def on_cache_miss(self, task: "SweepTask") -> None:
        self.recorder.wall("cache_miss", key=task.key[:12],
                           label=task.label)

    def on_dispatch(self, task: "SweepTask") -> None:
        self._dispatch_ts[task.key] = time.monotonic()
        self.recorder.wall("task_dispatch", key=task.key[:12],
                           label=task.label)

    def on_task_done(self, task: "SweepTask") -> None:
        self._done += 1
        started = self._dispatch_ts.pop(task.key, None)
        now = time.monotonic()
        dur_s = now - started if started is not None else 0.0
        started_us = ((started if started is not None else now)
                      - self._start) * 1e6
        self.recorder.wall("task_run", ph=PH_COMPLETE, dur=dur_s * 1e6,
                           ts=started_us, key=task.key[:12],
                           label=task.label)
        self._say(f"done {task.label} ({dur_s:.2f}s)")

    def on_task_failed(self, task: "SweepTask", reason: str) -> None:
        self._failed += 1
        self._dispatch_ts.pop(task.key, None)
        self.recorder.wall("task_failed", key=task.key[:12],
                           label=task.label, reason=reason)
        self._say(f"FAILED {task.label}: {reason}")

    def on_heartbeat(self, done: int, total: int, inflight: int,
                     waited: float) -> None:
        self.recorder.wall("heartbeat", done=done, total=total,
                           inflight=inflight,
                           waited_s=round(waited, 3))
        elapsed = time.monotonic() - self._start
        stall = (f" (no completion for {waited:.1f}s)"
                 if waited >= 2 * self.heartbeat_interval else "")
        self._say(f"{done}/{total} done, {inflight} in flight, "
                  f"elapsed {elapsed:.1f}s{stall}")

    def on_stall(self, keys: List[str], timeout: float) -> None:
        self.recorder.wall("stall", cancelled=len(keys),
                           timeout_s=timeout)
        self._say(f"STALL: no completion within {timeout:.1f}s; "
                  f"cancelling {len(keys)} point(s)")

    def on_rebuild(self, count: int) -> None:
        self.recorder.wall("pool_rebuild", rebuilds=count)
        self._say(f"worker pool broke; rebuilding (#{count})")

    # -- export ------------------------------------------------------------

    def write_trace(self, path: str,
                    context: Optional[Dict[str, Any]] = None,
                    ) -> Dict[str, Any]:
        """Write the runner's own wall-domain trace artifact."""
        return write_chrome_trace(
            path, self.recorder.sorted_events(),
            context=dict(context or {}, done=self._done,
                         failed=self._failed),
            dropped=self.recorder.total_dropped)
