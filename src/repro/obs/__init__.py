"""repro.obs — dual-domain structured-event tracing (see docs/observability.md).

The observability layer above :mod:`repro.telemetry`: where telemetry
*aggregates* (counters, windowed samples, bounded spans), ``repro.obs``
records **individual events on a timeline**, in two clock domains:

* the **cycle domain** — simulated-cycle events from inside a run
  (mispredicts, Path Cache promote/demote, microthread
  build → spawn → execute → outcome, timing-model occupancy), and
* the **wall domain** — wall-clock events around runs (sweep task
  dispatch, cache hits/misses, worker heartbeats, pool rebuilds,
  stalls).

Both export as Chrome trace-event JSON (``repro.obs/1``) that loads
directly in Perfetto with one process track per domain.  On top of the
cycle stream sits the **misprediction flight recorder**: a bounded ring
that, on each hard-to-predict (H2P) misprediction, dumps the last-N
causally-tagged events for post-mortem analysis (``repro postmortem``).

This package is strictly opt-in: nothing on the default simulation or
sweep path imports it (``tests/test_obs.py`` proves that in a
subprocess), and an attached :class:`ObsSession` stays inside the same
≤10% overhead budget the telemetry layer honours.
"""

from repro.obs.events import (
    CYCLE_DOMAIN,
    EVENT_CATALOG,
    WALL_DOMAIN,
    EventRecorder,
    ObsEvent,
)
from repro.obs.export import (
    OBS_SCHEMA,
    events_from_chrome,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightDump,
    FlightRecorder,
    diff_flight,
    load_flight,
    write_flight,
)
from repro.obs.session import ObsSession, ObsThreadTracer
from repro.obs.sweepobs import (
    SweepObs,
    load_shards,
    merge_shards,
    timeline_identity,
    write_merged_trace,
    write_shard,
)

__all__ = [
    "CYCLE_DOMAIN",
    "WALL_DOMAIN",
    "EVENT_CATALOG",
    "ObsEvent",
    "EventRecorder",
    "OBS_SCHEMA",
    "to_chrome_trace",
    "write_chrome_trace",
    "events_from_chrome",
    "FLIGHT_SCHEMA",
    "FlightDump",
    "FlightRecorder",
    "diff_flight",
    "load_flight",
    "write_flight",
    "ObsSession",
    "ObsThreadTracer",
    "SweepObs",
    "load_shards",
    "merge_shards",
    "timeline_identity",
    "write_merged_trace",
    "write_shard",
]
