"""repro — Difficult-Path Branch Prediction Using Subordinate Microthreads.

A from-scratch Python reproduction of Chappell, Tseng, Yoaz & Patt
(ISCA 2002).  See README.md for the architecture overview, DESIGN.md for
the system inventory and EXPERIMENTS.md for paper-vs-measured results.

Top-level convenience imports cover the public API most users need; the
subpackages hold the full systems:

* :mod:`repro.isa` — the RISC-like instruction set
* :mod:`repro.workloads` — the synthetic 20-benchmark suite
* :mod:`repro.sim` — functional simulation / trace generation
* :mod:`repro.branch` — baseline branch predictor complex (Table 3)
* :mod:`repro.valuepred` — value/address predictors for pruning
* :mod:`repro.uarch` — the out-of-order timing model
* :mod:`repro.core` — the paper's contribution (Path Cache, Microthread
  Builder, pruning, Prediction Cache, SSMT machine)
* :mod:`repro.analysis` — experiment drivers and table/figure formatters
"""

__version__ = "1.0.0"

from repro.isa import Instruction, Opcode, Program, ProgramBuilder, assemble
from repro.sim import FunctionalSimulator, Trace, run_program
from repro.workloads import (
    BENCHMARK_NAMES,
    benchmark_spec,
    benchmark_trace,
    build_benchmark,
)

__all__ = [
    "__version__",
    "Instruction",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "assemble",
    "FunctionalSimulator",
    "Trace",
    "run_program",
    "BENCHMARK_NAMES",
    "benchmark_spec",
    "benchmark_trace",
    "build_benchmark",
]
