"""Single source of truth for versioned artifact schemas.

Every machine-readable artifact the toolkit writes carries a
``"schema": "<name>/<version>"`` marker.  Historically each module
declared its own string literal; this registry centralises them so that

* a schema string can never be emitted without being registered here
  (``repro lint`` rule LINT020 scans for stray ``repro.*/N`` literals),
* every registered schema has exactly one owning module and a place the
  docs can enumerate (rule LINT021), and
* consumers can discover the current version of any artifact family
  programmatically.

:data:`CODE_SCHEMA_VERSION` also lives here (re-exported by
:mod:`repro.parallel.taskkey`, its historical home): it versions the
*simulator semantics* that task keys hash over, and must be bumped
whenever those semantics change — the ``repro lint`` schema-drift gate
(rule LINT022) enforces the bump by fingerprinting every
payload-affecting module.

This module is intentionally a leaf: it imports nothing from
``repro.*`` so that any module (telemetry, parallel, perf, lint) can
import it without creating a cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

#: Bump on any change to simulation semantics or the point payload —
#: cached results from an older version must never be served as current.
#: The ``repro lint`` schema-drift gate cross-checks this against the
#: committed AST-fingerprint manifest (``lint-fingerprints.json``).
#:
#: History: 2 — sweep tasks gained the ``predictor`` identity field and
#: point payloads the matching ``predictor`` section (repro.zoo).
#: 3 — Prediction Cache deallocates invalidated entries on touch and
#: reclaims them first under capacity pressure (changes slot residency
#: and the ``prediction_cache`` stats section, which grew an
#: ``invalid_deallocations`` counter); sweep tasks gained the optional
#: ``sample`` identity field for sampled simulation (:mod:`repro.kernel`).
CODE_SCHEMA_VERSION = 3

#: Every versioned artifact schema: name -> version -> owning module.
#: The owning module is the one that emits the schema string (and
#: documents the payload layout in its docstring).
SCHEMA_REGISTRY: Dict[str, Dict[int, str]] = {
    "repro.telemetry": {1: "repro.telemetry.report"},
    "repro.bench": {1: "repro.telemetry.report"},
    "repro.sweep": {1: "repro.parallel.sweep"},
    "repro.sweep.point": {1: "repro.parallel.cache"},
    "repro.arena": {1: "repro.analysis.arena"},
    "repro.perf": {1: "repro.perf.harness"},
    "repro.lint": {1: "repro.lint.report"},
    "repro.lint.fingerprints": {1: "repro.lint.fingerprint"},
    "repro.lint.baseline": {1: "repro.lint.baseline"},
    "repro.obs": {1: "repro.obs.export"},
    "repro.obs.flight": {1: "repro.obs.flight"},
    "repro.serve.job": {1: "repro.serve.jobs"},
    "repro.service.bench": {1: "repro.serve.loadtest"},
}

#: Human-facing metadata per schema *name* (latest version): a one-line
#: description plus the top-level field table.  ``tools/gen_schema_docs.py``
#: renders this registry into ``docs/schemas.md``, and the freshness gate
#: in ``tools/check_docs.py`` fails CI whenever the generated page and
#: this table disagree — so a new schema (or a new field worth
#: documenting) lands here or the build goes red.  Every name in
#: :data:`SCHEMA_REGISTRY` must have an entry (enforced by
#: ``tests/test_schema_docs.py``).
SCHEMA_INFO: Dict[str, Dict[str, Any]] = {
    "repro.telemetry": {
        "description": ("One run's full telemetry export: config, "
                            "timing, metrics snapshot, interval "
                            "time-series and microthread lifecycle "
                            "spans."),
        "fields": {
            "benchmark": "workload name the run simulated",
            "instructions": "dynamic instructions retired",
            "config": "SSMTConfig fields of the run",
            "timing": "TimingResult.as_dict() summary (cycles, ipc, ...)",
            "metrics": "full MetricsRegistry snapshot, dotted names",
            "samples": "IntervalSampler rows, one per N retired "
                       "instructions",
            "spans": "ThreadTracer per-microthread lifecycle spans",
            "routines": "per-promotion build records (size, chain, "
                        "latency, failure reason)",
            "span_summary": "ThreadTracer aggregate counters",
        },
    },
    "repro.bench": {
        "description": ("Flat benchmark artifact (BENCH_*.json) for "
                            "the performance/regression trajectory."),
        "fields": {
            "bench": "benchmark family name (e.g. 'sweep', 'arena')",
            "context": "free-form provenance (instructions, suite, "
                       "machine)",
            "results": "per-label result rows, benchmark-defined shape",
        },
    },
    "repro.sweep": {
        "description": ("Merged sweep-level artifact: every point "
                            "payload plus per-label speed-up "
                            "aggregates."),
        "fields": {
            "context": "grid description + runner accounting",
            "points": "per-point payloads (repro.sweep.point/1, plus "
                      "'speedup' on mechanism points)",
            "aggregates": "per config label: mean/geomean speed-up and "
                          "per-benchmark map",
            "failures": "task_key -> failure reason for points with no "
                        "result",
        },
    },
    "repro.sweep.point": {
        "description": ("One simulated sweep point, as cached by the "
                            "content-addressed result store and "
                            "returned by workers."),
        "fields": {
            "task_key": "SHA-256 content address of the simulation "
                        "identity",
            "kind": "baseline | ssmt | oracle | potential",
            "label": "display label of the requesting grid column",
            "benchmark": "workload name",
            "instructions": "dynamic instructions simulated",
            "config": "SSMTConfig fields (ssmt points; else null)",
            "machine": "MachineConfig fields",
            "predictor": "zoo PredictorConfig, or null for the paper "
                         "hybrid",
            "timing": "TimingResult.as_dict() summary",
            "metrics": "engine structure statistics (ssmt points; else "
                       "null)",
            "sampled": "true when the result is a sampled-simulation "
                       "extrapolation (absent on exact runs)",
            "sample": "sampling accounting (interval, warmup, windows, "
                      "measured_fraction; sampled runs only)",
        },
    },
    "repro.arena": {
        "description": ("Predictor-arena study: SSMT headroom vs "
                            "baseline predictor strength with per-path "
                            "H2P regime analytics."),
        "fields": {
            "context": "grid description + runner accounting",
            "baselines": "per zoo-baseline label: PredictorConfig and "
                         "per-benchmark rows",
            "headroom": "per label: accuracy and geomean "
                        "ssmt/potential/oracle speed-ups",
            "h2p": "per label x benchmark: path-regime split "
                   "(easy/transient/h2p)",
            "calibration_targets": "per benchmark: strongest baseline "
                                   "and workload-generator targets",
        },
    },
    "repro.perf": {
        "description": ("Simulator self-profile: cProfile time "
                            "aggregated per subsystem, with the hottest "
                            "functions."),
        "fields": {
            "benchmark": "workload profiled",
            "instructions": "dynamic instructions simulated",
            "telemetry_attached": "whether a TelemetrySession was "
                                  "attached during profiling",
            "wall_seconds": "end-to-end wall time of the profiled run",
            "profiled_seconds": "total tottime attributed by cProfile",
            "instructions_per_second": "throughput over wall time",
            "subsystems": "per repro.* subsystem: seconds and fraction",
            "top_functions": "hottest functions (file:line, tottime, "
                             "cumtime)",
        },
    },
    "repro.lint": {
        "description": ("repro lint report: determinism / hot-path "
                            "/ schema-governance findings over the "
                            "codebase."),
        "fields": {
            "code_schema_version": "CODE_SCHEMA_VERSION the tree "
                                   "declares",
            "files_checked": "python files analysed",
            "counts": "error / warning / suppressed totals",
            "findings": "live findings (rule, severity, path, line, "
                        "symbol, message, hint)",
            "suppressed": "findings matched by the justified baseline",
        },
    },
    "repro.lint.fingerprints": {
        "description": ("AST-normalised fingerprint manifest of "
                            "every payload-affecting module (the "
                            "LINT022 schema-drift gate)."),
        "fields": {
            "code_schema_version": "CODE_SCHEMA_VERSION the manifest was "
                                   "written at",
            "fingerprints": "src-relative path -> SHA-256 of the "
                            "normalised AST",
        },
    },
    "repro.lint.baseline": {
        "description": ("Justified suppression baseline for repro "
                            "lint findings."),
        "fields": {
            "entries": "suppressions: rule, path, symbol, justification",
        },
    },
    "repro.obs": {
        "description": ("Dual-clock-domain event timeline in Chrome "
                            "trace-event form (Perfetto-loadable): "
                            "sim-cycles as pid 1, wall-clock as pid 2."),
        "fields": {
            "displayTimeUnit": "Chrome trace display unit ('ms')",
            "traceEvents": "trace events (metadata + "
                           "instant/span/counter rows)",
            "otherData": "context (benchmark, config) + event/dropped "
                         "accounting",
        },
    },
    "repro.obs.flight": {
        "description": ("Misprediction flight recorder: bounded "
                            "event windows dumped around every "
                            "hard-to-predict misprediction."),
        "fields": {
            "context": "run description (benchmark, config)",
            "window": "ring size per dump",
            "thresholds": "H2P classification knobs (easy, difficult, "
                          "min_occurrences)",
            "h2p_mispredicts": "total trigger count",
            "triggers_by_pc": "trigger count per terminating branch PC",
            "dumps": "post-mortem dumps: ring events + in-flight "
                     "microthread slack",
        },
    },
    "repro.serve.job": {
        "description": ("One journal line of the sweep service's "
                            "persistent job queue (JSONL; first line is "
                            "the header carrying this marker)."),
        "fields": {
            "ev": "record kind: header | submit | task | job",
            "job": "job id (content hash of the normalised grid spec)",
            "spec": "normalised grid spec (submit records)",
            "tasks": "task keys of the job's unique points (submit "
                     "records)",
            "tenant": "submitting tenant (submit records)",
            "key": "task key (task records)",
            "state": "queued | running | done | failed (task records); "
                     "running | done | failed (job records)",
            "reason": "failure reason (failed task records)",
        },
    },
    "repro.service.bench": {
        "description": ("repro loadtest artifact: cold-vs-warm "
                            "request-replay statistics against a "
                            "running sweep service."),
        "fields": {
            "context": "mix parameters (requests, overlap, concurrency, "
                       "tenants, seed, grid pool sizes) + server URL",
            "cold": "cold-pass stats: requests, dedup, jobs, latency "
                    "quantiles, store hit/miss deltas, hit_rate, "
                    "failed_jobs",
            "warm": "warm-pass stats over the union grids (same row "
                    "shape as cold; measures content-addressed reuse)",
            "identity": "byte-identity check of one served artifact vs "
                        "the local sweep pipeline (job, byte_identical, "
                        "points)",
        },
    },
}


def schema_string(name: str, version: int = 0) -> str:
    """The ``"<name>/<version>"`` marker for a registered schema.

    With ``version=0`` (the default) the newest registered version is
    used.  Asking for an unregistered name or version raises — emitting
    an unregistered schema is exactly the drift LINT020 exists to catch,
    so the runtime refuses it too.
    """
    versions = SCHEMA_REGISTRY.get(name)
    if not versions:
        raise KeyError(f"schema {name!r} is not in SCHEMA_REGISTRY")
    if version == 0:
        version = max(versions)
    elif version not in versions:
        raise KeyError(f"schema {name!r} has no version {version} "
                       f"(registered: {sorted(versions)})")
    return f"{name}/{version}"


def parse_schema_string(marker: str) -> Tuple[str, int]:
    """Split ``"<name>/<version>"``; raises ``ValueError`` on bad form."""
    name, _, raw = marker.rpartition("/")
    if not name or not raw.isdigit():
        raise ValueError(f"not a schema marker: {marker!r}")
    return name, int(raw)


def is_registered(marker: str) -> bool:
    """Whether a ``"<name>/<version>"`` marker is in the registry."""
    try:
        name, version = parse_schema_string(marker)
    except ValueError:
        return False
    return version in SCHEMA_REGISTRY.get(name, {})


def registered_markers() -> Iterator[str]:
    """Every registered ``"<name>/<version>"`` marker, sorted."""
    for name in sorted(SCHEMA_REGISTRY):
        for version in sorted(SCHEMA_REGISTRY[name]):
            yield f"{name}/{version}"


def owning_module(marker: str) -> str:
    """The module that owns (emits and documents) a schema marker."""
    name, version = parse_schema_string(marker)
    return SCHEMA_REGISTRY[name][version]
