"""Single source of truth for versioned artifact schemas.

Every machine-readable artifact the toolkit writes carries a
``"schema": "<name>/<version>"`` marker.  Historically each module
declared its own string literal; this registry centralises them so that

* a schema string can never be emitted without being registered here
  (``repro lint`` rule LINT020 scans for stray ``repro.*/N`` literals),
* every registered schema has exactly one owning module and a place the
  docs can enumerate (rule LINT021), and
* consumers can discover the current version of any artifact family
  programmatically.

:data:`CODE_SCHEMA_VERSION` also lives here (re-exported by
:mod:`repro.parallel.taskkey`, its historical home): it versions the
*simulator semantics* that task keys hash over, and must be bumped
whenever those semantics change — the ``repro lint`` schema-drift gate
(rule LINT022) enforces the bump by fingerprinting every
payload-affecting module.

This module is intentionally a leaf: it imports nothing from
``repro.*`` so that any module (telemetry, parallel, perf, lint) can
import it without creating a cycle.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

#: Bump on any change to simulation semantics or the point payload —
#: cached results from an older version must never be served as current.
#: The ``repro lint`` schema-drift gate cross-checks this against the
#: committed AST-fingerprint manifest (``lint-fingerprints.json``).
#:
#: History: 2 — sweep tasks gained the ``predictor`` identity field and
#: point payloads the matching ``predictor`` section (repro.zoo).
#: 3 — Prediction Cache deallocates invalidated entries on touch and
#: reclaims them first under capacity pressure (changes slot residency
#: and the ``prediction_cache`` stats section, which grew an
#: ``invalid_deallocations`` counter); sweep tasks gained the optional
#: ``sample`` identity field for sampled simulation (:mod:`repro.kernel`).
CODE_SCHEMA_VERSION = 3

#: Every versioned artifact schema: name -> version -> owning module.
#: The owning module is the one that emits the schema string (and
#: documents the payload layout in its docstring).
SCHEMA_REGISTRY: Dict[str, Dict[int, str]] = {
    "repro.telemetry": {1: "repro.telemetry.report"},
    "repro.bench": {1: "repro.telemetry.report"},
    "repro.sweep": {1: "repro.parallel.sweep"},
    "repro.sweep.point": {1: "repro.parallel.cache"},
    "repro.arena": {1: "repro.analysis.arena"},
    "repro.perf": {1: "repro.perf.harness"},
    "repro.lint": {1: "repro.lint.report"},
    "repro.lint.fingerprints": {1: "repro.lint.fingerprint"},
    "repro.lint.baseline": {1: "repro.lint.baseline"},
    "repro.obs": {1: "repro.obs.export"},
    "repro.obs.flight": {1: "repro.obs.flight"},
}


def schema_string(name: str, version: int = 0) -> str:
    """The ``"<name>/<version>"`` marker for a registered schema.

    With ``version=0`` (the default) the newest registered version is
    used.  Asking for an unregistered name or version raises — emitting
    an unregistered schema is exactly the drift LINT020 exists to catch,
    so the runtime refuses it too.
    """
    versions = SCHEMA_REGISTRY.get(name)
    if not versions:
        raise KeyError(f"schema {name!r} is not in SCHEMA_REGISTRY")
    if version == 0:
        version = max(versions)
    elif version not in versions:
        raise KeyError(f"schema {name!r} has no version {version} "
                       f"(registered: {sorted(versions)})")
    return f"{name}/{version}"


def parse_schema_string(marker: str) -> Tuple[str, int]:
    """Split ``"<name>/<version>"``; raises ``ValueError`` on bad form."""
    name, _, raw = marker.rpartition("/")
    if not name or not raw.isdigit():
        raise ValueError(f"not a schema marker: {marker!r}")
    return name, int(raw)


def is_registered(marker: str) -> bool:
    """Whether a ``"<name>/<version>"`` marker is in the registry."""
    try:
        name, version = parse_schema_string(marker)
    except ValueError:
        return False
    return version in SCHEMA_REGISTRY.get(name, {})


def registered_markers() -> Iterator[str]:
    """Every registered ``"<name>/<version>"`` marker, sorted."""
    for name in sorted(SCHEMA_REGISTRY):
        for version in sorted(SCHEMA_REGISTRY[name]):
            yield f"{name}/{version}"


def owning_module(marker: str) -> str:
    """The module that owns (emits and documents) a schema marker."""
    name, version = parse_schema_string(marker)
    return SCHEMA_REGISTRY[name][version]
