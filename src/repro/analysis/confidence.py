"""Confidence-based difficulty classification (comparison substrate).

The paper motivates difficult paths with path-based *confidence*
research (reference [10], Jacobsen/Rotenberg/Smith).  This analysis runs
a JRS miss-distance-counter estimator over a trace — indexed either by
branch PC or by PC hashed with the current ``Path_Id`` — and measures
the same coverage pair as Table 2: what fraction of mispredictions fall
in low-confidence instances, and what fraction of executions are flagged
low-confidence.

This is *instance-level* classification (each dynamic branch instance is
flagged at prediction time), complementing Table 2's *set-level*
classification; comparing the two shows how much of the coverage win
comes from the path information itself versus from the classifier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.analysis.events import ControlEvent
from repro.branch.confidence import ConfidenceEstimator
from repro.core.path import path_id_hash


@dataclass
class ConfidenceCoverage:
    """Coverage achieved by flagging low-confidence instances."""

    scheme: str                    # "jrs-pc" or "jrs-path(n)"
    mispredict_coverage: float     # mispredicts flagged / all mispredicts
    execution_coverage: float      # instances flagged / all instances
    flagged: int
    total: int


def confidence_coverage(
    events: Iterable[ControlEvent],
    n: int = 10,
    estimator_entries: int = 4096,
    threshold: int = 8,
    use_path: bool = True,
) -> ConfidenceCoverage:
    """Run a JRS estimator over the control-event stream.

    ``use_path`` selects path-hashed indexing (PC xor ``Path_Id``) versus
    plain PC indexing.
    """
    estimator = ConfidenceEstimator(entries=estimator_entries,
                                    threshold=threshold)
    history: deque = deque(maxlen=n)
    flagged = total = 0
    flagged_mispredicts = total_mispredicts = 0
    for event in events:
        if event.terminating:
            if use_path:
                index = event.pc ^ path_id_hash(tuple(history))
            else:
                index = event.pc
            low_confidence = not estimator.is_confident(index)
            if event.measured:
                total += 1
                total_mispredicts += event.mispredicted
                if low_confidence:
                    flagged += 1
                    flagged_mispredicts += event.mispredicted
            estimator.update(index, not event.mispredicted)
        if event.taken:
            history.append(event.pc)
    scheme = f"jrs-path({n})" if use_path else "jrs-pc"
    return ConfidenceCoverage(
        scheme=scheme,
        mispredict_coverage=(flagged_mispredicts / total_mispredicts
                             if total_mispredicts else 0.0),
        execution_coverage=flagged / total if total else 0.0,
        flagged=flagged,
        total=total,
    )


def compare_confidence_schemes(
    events: Iterable[ControlEvent],
    ns: Sequence[int] = (4, 10, 16),
) -> List[ConfidenceCoverage]:
    """PC-indexed JRS plus path-indexed JRS at each ``n``."""
    events = list(events)
    results = [confidence_coverage(events, use_path=False)]
    for n in ns:
        results.append(confidence_coverage(events, n=n, use_path=True))
    return results
