"""Path characterization (paper Table 1).

For a given path length ``n``, measures over a trace:

* the number of unique paths (exact path keys, oracle tracking),
* the mean scope size in instructions over unique paths, and
* the number of *difficult* paths for each threshold ``T``.

The paper's counts come from full SPEC runs; ours come from synthetic
traces orders of magnitude shorter, so absolute counts are smaller but
the relationships the paper highlights (growth with ``n``, stability of
the difficult set across ``T``, per-benchmark ordering) are preserved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.analysis.events import ControlEvent
from repro.core.path import PathKey


@dataclass
class PathCharacterization:
    """Table 1 row for one (benchmark, n)."""

    n: int
    unique_paths: int
    mean_scope: float
    difficult_paths: Dict[float, int]  # threshold -> count
    total_occurrences: int = 0

    def difficult_fraction(self, threshold: float) -> float:
        if not self.unique_paths:
            return 0.0
        return self.difficult_paths[threshold] / self.unique_paths


class _PathStat:
    __slots__ = ("occurrences", "mispredicts", "scope")

    def __init__(self, scope: int):
        self.occurrences = 0
        self.mispredicts = 0
        self.scope = scope


def characterize_paths(
    events: Iterable[ControlEvent],
    n: int,
    thresholds: Sequence[float] = (0.05, 0.10, 0.15),
) -> PathCharacterization:
    """Compute Table 1 statistics for path length ``n``.

    ``events`` is the control-event stream from
    :func:`repro.analysis.events.collect_control_events`; only measured
    (post-warm-up) terminating branches contribute to statistics, but the
    path history warms up over the full stream.
    """
    history: deque = deque(maxlen=n)  # (pc, idx)
    stats: Dict[PathKey, _PathStat] = {}
    total = 0
    for event in events:
        if event.terminating and event.measured and len(history) == n:
            key = PathKey(event.pc, tuple(pc for pc, _ in history))
            stat = stats.get(key)
            if stat is None:
                scope = event.idx - history[0][1]
                stat = stats[key] = _PathStat(scope)
            stat.occurrences += 1
            total += 1
            if event.mispredicted:
                stat.mispredicts += 1
        if event.taken:
            history.append((event.pc, event.idx))

    unique = len(stats)
    mean_scope = (
        sum(s.scope for s in stats.values()) / unique if unique else 0.0
    )
    difficult = {
        t: sum(1 for s in stats.values()
               if s.occurrences and s.mispredicts / s.occurrences > t)
        for t in thresholds
    }
    return PathCharacterization(
        n=n,
        unique_paths=unique,
        mean_scope=mean_scope,
        difficult_paths=difficult,
        total_occurrences=total,
    )
