"""Drivers for the paper's figures (speed-up and microthread studies).

Each function runs the relevant machine configurations over suite
benchmarks and returns plain data structures (dicts of floats) that the
benchmark harness prints and EXPERIMENTS.md records.  All drivers accept
``trace_length`` so tests can run them on short traces.

Every driver routes its simulations through
:class:`repro.parallel.SweepRunner`: pass ``jobs`` to fan the
(benchmark x configuration) grid across a process pool and ``cache_dir``
to reuse previously simulated points — results are identical either way
(the runner's task-key contract; see ``docs/telemetry.md``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.branch.unit import BranchPredictorComplex
from repro.core.oracle import PotentialConfig
from repro.core.ssmt import SSMTConfig
from repro.parallel import SweepRunner, SweepTask, point_ipc
from repro.sim.trace import Trace
from repro.uarch.config import TABLE3_BASELINE, MachineConfig
from repro.uarch.timing import OoOTimingModel, TimingResult
from repro.workloads.suite import DEFAULT_TRACE_LENGTH


def baseline_run(trace: Trace,
                 machine: MachineConfig = TABLE3_BASELINE) -> TimingResult:
    """The Table 3 baseline machine with the hardware hybrid predictor."""
    return OoOTimingModel(machine).run(trace, BranchPredictorComplex())


def _run_grid(tasks: List[SweepTask], jobs: Optional[int],
              cache_dir: Optional[str]) -> List[Dict[str, Any]]:
    """Execute a task grid; raise if any point failed."""
    outcome = SweepRunner(jobs=jobs, cache_dir=cache_dir).run(tasks)
    if outcome.failures:
        raise RuntimeError(
            f"experiment sweep failed for {outcome.failures} point(s): "
            f"{outcome.errors}")
    return [r for r in outcome.results if r is not None]


def intro_perfect_prediction(
    benchmarks: Sequence[str],
    trace_length: int = DEFAULT_TRACE_LENGTH,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, float]:
    """§1 claim: speed-up from eliminating all remaining mispredictions.

    Returns per-benchmark speed-up of oracle direction/target prediction
    over the baseline (the paper quotes ~2x on average).
    """
    tasks: List[SweepTask] = []
    for name in benchmarks:
        tasks.append(SweepTask(kind="baseline", benchmark=name,
                               instructions=trace_length))
        tasks.append(SweepTask(kind="oracle", benchmark=name,
                               instructions=trace_length))
    results = _run_grid(tasks, jobs, cache_dir)
    speedups: Dict[str, float] = {}
    for i, name in enumerate(benchmarks):
        base, perfect = results[2 * i], results[2 * i + 1]
        speedups[name] = point_ipc(perfect) / point_ipc(base)
    return speedups


def figure6_potential(
    benchmarks: Sequence[str],
    ns: Sequence[int] = (4, 10, 16),
    threshold: float = 0.10,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    path_cache_entries: int = 8192,
    training_interval: int = 32,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, Dict[int, float]]:
    """Figure 6: potential speed-up from perfectly predicting the
    terminating branches of promoted difficult paths.

    Returns ``{benchmark: {n: speedup}}``.
    """
    tasks: List[SweepTask] = []
    for name in benchmarks:
        tasks.append(SweepTask(kind="baseline", benchmark=name,
                               instructions=trace_length))
        for n in ns:
            tasks.append(SweepTask(
                kind="potential", benchmark=name,
                instructions=trace_length, label=f"n={n}",
                potential=PotentialConfig(
                    n=n,
                    difficulty_threshold=threshold,
                    path_cache_entries=path_cache_entries,
                    training_interval=training_interval,
                )))
    grid = _run_grid(tasks, jobs, cache_dir)
    results: Dict[str, Dict[int, float]] = {}
    stride = 1 + len(ns)
    for b, name in enumerate(benchmarks):
        base = point_ipc(grid[b * stride])
        results[name] = {
            n: point_ipc(grid[b * stride + 1 + j]) / base
            for j, n in enumerate(ns)
        }
    return results


@dataclass
class RealisticResult:
    """Figure 7 bars plus the engine statistics behind Figures 8-9.

    The per-configuration ``*_metrics`` dicts are the worker's
    serializable engine snapshot (``repro.parallel.engine_metrics``):
    ``{"path_cache": {...}, "builder": {...}, "spawn": {...},
    "prediction_cache": {...}, "microram": {...},
    "prediction_kinds": {...}, ...}`` — the same shape whether the point
    ran in-process, in a pool worker, or came from the result cache.
    """

    benchmark: str
    baseline_ipc: float
    speedup_no_pruning: float
    speedup_pruning: float
    speedup_overhead_only: float
    no_pruning_metrics: Dict[str, Any] = field(default_factory=dict)
    pruning_metrics: Dict[str, Any] = field(default_factory=dict)


def figure7_realistic(
    benchmarks: Sequence[str],
    n: int = 10,
    threshold: float = 0.10,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    build_latency: int = 100,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[RealisticResult]:
    """Figure 7: realistic speed-up with/without pruning and overhead-only.

    The returned metrics snapshots also carry the builder and timeliness
    statistics that Figures 8 and 9 report.
    """
    def config(**overrides: Any) -> SSMTConfig:
        return SSMTConfig(n=n, difficulty_threshold=threshold,
                          build_latency=build_latency, **overrides)

    variants = (
        ("no_pruning", config(pruning=False)),
        ("pruning", config(pruning=True)),
        ("overhead", config(pruning=False, use_predictions=False)),
    )
    tasks: List[SweepTask] = []
    for name in benchmarks:
        tasks.append(SweepTask(kind="baseline", benchmark=name,
                               instructions=trace_length))
        for label, cfg in variants:
            tasks.append(SweepTask(kind="ssmt", benchmark=name,
                                   instructions=trace_length,
                                   label=label, config=cfg))
    grid = _run_grid(tasks, jobs, cache_dir)
    results: List[RealisticResult] = []
    stride = 1 + len(variants)
    for b, name in enumerate(benchmarks):
        base, no_prune, prune, overhead = grid[b * stride:(b + 1) * stride]
        base_ipc = point_ipc(base)
        results.append(RealisticResult(
            benchmark=name,
            baseline_ipc=base_ipc,
            speedup_no_pruning=point_ipc(no_prune) / base_ipc,
            speedup_pruning=point_ipc(prune) / base_ipc,
            speedup_overhead_only=point_ipc(overhead) / base_ipc,
            no_pruning_metrics=no_prune["metrics"] or {},
            pruning_metrics=prune["metrics"] or {},
        ))
    return results


def figure8_routines(
    realistic: List[RealisticResult],
) -> Dict[str, Dict[str, float]]:
    """Figure 8: mean routine size and longest dependence chain, ±pruning.

    Consumes the metrics snapshots from :func:`figure7_realistic`.
    Returns ``{benchmark: {size_np, size_p, chain_np, chain_p}}``.
    """
    rows: Dict[str, Dict[str, float]] = {}
    for r in realistic:
        np_builder = r.no_pruning_metrics["builder"]
        p_builder = r.pruning_metrics["builder"]
        rows[r.benchmark] = {
            "size_no_pruning": np_builder["mean_routine_size"],
            "size_pruning": p_builder["mean_routine_size"],
            "chain_no_pruning": np_builder["mean_chain_length"],
            "chain_pruning": p_builder["mean_chain_length"],
        }
    return rows


def figure9_timeliness(
    realistic: List[RealisticResult],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 9: prediction arrival breakdown (early/late/useless), ±pruning.

    ``late`` aggregates the engine's late_agree/late_useful/late_harmful
    kinds.  Fractions are of predictions that reached their branch
    ("useless does not include predictions for branches never reached").
    """
    def breakdown(metrics: Dict[str, Any]) -> Dict[str, float]:
        kinds = metrics.get("prediction_kinds", {})
        early = kinds.get("early", 0)
        late = (kinds.get("late_agree", 0) + kinds.get("late_useful", 0)
                + kinds.get("late_harmful", 0))
        useless = kinds.get("useless", 0)
        total = early + late + useless
        if not total:
            return {"early": 0.0, "late": 0.0, "useless": 0.0, "total": 0}
        return {
            "early": early / total,
            "late": late / total,
            "useless": useless / total,
            "total": total,
        }

    return {
        r.benchmark: {
            "no_pruning": breakdown(r.no_pruning_metrics),
            "pruning": breakdown(r.pruning_metrics),
        }
        for r in realistic
    }


def geometric_mean_speedup(speedups: Dict[str, float]) -> float:
    """Geometric mean over a per-benchmark speed-up dict."""
    return statistics.geometric_mean(list(speedups.values()))


def mean_speedup_percent(speedups: Dict[str, float]) -> float:
    """Arithmetic mean gain in percent (the paper reports '8.4%')."""
    return 100.0 * (statistics.mean(list(speedups.values())) - 1.0)
