"""Drivers for the paper's figures (speed-up and microthread studies).

Each function runs the relevant machine configurations over suite
benchmarks and returns plain data structures (dicts of floats) that the
benchmark harness prints and EXPERIMENTS.md records.  All drivers accept
``trace_length`` so tests can run them on short traces.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.branch.unit import BranchPredictorComplex, oracle_complex
from repro.core.oracle import PotentialConfig, run_potential
from repro.core.ssmt import SSMTConfig, SSMTEngine, run_ssmt
from repro.sim.trace import Trace
from repro.uarch.config import MachineConfig, TABLE3_BASELINE
from repro.uarch.timing import OoOTimingModel, TimingResult
from repro.workloads import benchmark_trace
from repro.workloads.suite import DEFAULT_TRACE_LENGTH


def baseline_run(trace: Trace,
                 machine: MachineConfig = TABLE3_BASELINE) -> TimingResult:
    """The Table 3 baseline machine with the hardware hybrid predictor."""
    return OoOTimingModel(machine).run(trace, BranchPredictorComplex())


def intro_perfect_prediction(
    benchmarks: Sequence[str],
    trace_length: int = DEFAULT_TRACE_LENGTH,
) -> Dict[str, float]:
    """§1 claim: speed-up from eliminating all remaining mispredictions.

    Returns per-benchmark speed-up of oracle direction/target prediction
    over the baseline (the paper quotes ~2x on average).
    """
    speedups: Dict[str, float] = {}
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        base = baseline_run(trace)
        perfect = OoOTimingModel().run(trace, oracle_complex())
        speedups[name] = perfect.ipc / base.ipc
    return speedups


def figure6_potential(
    benchmarks: Sequence[str],
    ns: Sequence[int] = (4, 10, 16),
    threshold: float = 0.10,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    path_cache_entries: int = 8192,
    training_interval: int = 32,
) -> Dict[str, Dict[int, float]]:
    """Figure 6: potential speed-up from perfectly predicting the
    terminating branches of promoted difficult paths.

    Returns ``{benchmark: {n: speedup}}``.
    """
    results: Dict[str, Dict[int, float]] = {}
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        base = baseline_run(trace)
        per_n: Dict[int, float] = {}
        for n in ns:
            config = PotentialConfig(
                n=n,
                difficulty_threshold=threshold,
                path_cache_entries=path_cache_entries,
                training_interval=training_interval,
            )
            result, _ = run_potential(trace, config)
            per_n[n] = result.ipc / base.ipc
        results[name] = per_n
    return results


@dataclass
class RealisticResult:
    """Figure 7 bars plus the engine statistics behind Figures 8-9."""

    benchmark: str
    baseline_ipc: float
    speedup_no_pruning: float
    speedup_pruning: float
    speedup_overhead_only: float
    no_pruning_engine: SSMTEngine = None
    pruning_engine: SSMTEngine = None


def figure7_realistic(
    benchmarks: Sequence[str],
    n: int = 10,
    threshold: float = 0.10,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    build_latency: int = 100,
) -> List[RealisticResult]:
    """Figure 7: realistic speed-up with/without pruning and overhead-only.

    The returned engines also carry the builder and timeliness statistics
    that Figures 8 and 9 report.
    """
    results: List[RealisticResult] = []
    for name in benchmarks:
        trace = benchmark_trace(name, trace_length)
        base = baseline_run(trace)

        def config(**overrides) -> SSMTConfig:
            return SSMTConfig(n=n, difficulty_threshold=threshold,
                              build_latency=build_latency, **overrides)

        no_prune, engine_np = run_ssmt(trace, config(pruning=False))
        prune, engine_p = run_ssmt(trace, config(pruning=True))
        overhead, _ = run_ssmt(trace, config(pruning=False,
                                             use_predictions=False))
        results.append(RealisticResult(
            benchmark=name,
            baseline_ipc=base.ipc,
            speedup_no_pruning=no_prune.ipc / base.ipc,
            speedup_pruning=prune.ipc / base.ipc,
            speedup_overhead_only=overhead.ipc / base.ipc,
            no_pruning_engine=engine_np,
            pruning_engine=engine_p,
        ))
    return results


def figure8_routines(
    realistic: List[RealisticResult],
) -> Dict[str, Dict[str, float]]:
    """Figure 8: mean routine size and longest dependence chain, ±pruning.

    Consumes the engines from :func:`figure7_realistic`.
    Returns ``{benchmark: {size_np, size_p, chain_np, chain_p}}``.
    """
    rows: Dict[str, Dict[str, float]] = {}
    for r in realistic:
        np_stats = r.no_pruning_engine.builder.stats
        p_stats = r.pruning_engine.builder.stats
        rows[r.benchmark] = {
            "size_no_pruning": np_stats.mean_routine_size,
            "size_pruning": p_stats.mean_routine_size,
            "chain_no_pruning": np_stats.mean_chain_length,
            "chain_pruning": p_stats.mean_chain_length,
        }
    return rows


def figure9_timeliness(
    realistic: List[RealisticResult],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 9: prediction arrival breakdown (early/late/useless), ±pruning.

    ``late`` aggregates the engine's late_agree/late_useful/late_harmful
    kinds.  Fractions are of predictions that reached their branch
    ("useless does not include predictions for branches never reached").
    """
    def breakdown(engine: SSMTEngine) -> Dict[str, float]:
        kinds = engine.prediction_kind_counts
        early = kinds.get("early", 0)
        late = (kinds.get("late_agree", 0) + kinds.get("late_useful", 0)
                + kinds.get("late_harmful", 0))
        useless = kinds.get("useless", 0)
        total = early + late + useless
        if not total:
            return {"early": 0.0, "late": 0.0, "useless": 0.0, "total": 0}
        return {
            "early": early / total,
            "late": late / total,
            "useless": useless / total,
            "total": total,
        }

    return {
        r.benchmark: {
            "no_pruning": breakdown(r.no_pruning_engine),
            "pruning": breakdown(r.pruning_engine),
        }
        for r in realistic
    }


def geometric_mean_speedup(speedups: Dict[str, float]) -> float:
    """Geometric mean over a per-benchmark speed-up dict."""
    return statistics.geometric_mean(list(speedups.values()))


def mean_speedup_percent(speedups: Dict[str, float]) -> float:
    """Arithmetic mean gain in percent (the paper reports '8.4%')."""
    return 100.0 * (statistics.mean(list(speedups.values())) - 1.0)
