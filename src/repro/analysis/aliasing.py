"""Path_Id hash aliasing study (paper §4.3.3).

The Prediction Cache keys on ``(Path_Id, Seq_Num)`` and the paper argues
"aliasing is almost non-existent" because both components must match.
The Path Cache, however, indexes and (in real hardware) partially tags
by ``Path_Id`` alone, so distinct paths hashing to the same id *could*
corrupt each other's difficulty statistics.

:func:`path_id_aliasing` measures it: over a trace, how many distinct
exact paths share each hashed id at a given width, and what fraction of
dynamic occurrences land on an aliased id.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.events import ControlEvent
from repro.core.path import PathKey, path_id_hash


@dataclass
class AliasingResult:
    """Aliasing at one hash width."""

    bits: int
    unique_paths: int
    used_ids: int
    aliased_ids: int            # ids claimed by >1 distinct path
    aliased_occurrences: int    # dynamic occurrences landing on such ids
    total_occurrences: int

    @property
    def path_alias_rate(self) -> float:
        """Fraction of distinct paths sharing an id with another path."""
        if not self.unique_paths:
            return 0.0
        return 1.0 - self.used_ids / self.unique_paths \
            if self.used_ids < self.unique_paths else 0.0

    @property
    def occurrence_alias_rate(self) -> float:
        if not self.total_occurrences:
            return 0.0
        return self.aliased_occurrences / self.total_occurrences


def path_id_aliasing(
    events: Iterable[ControlEvent],
    n: int = 10,
    bits_list: Sequence[int] = (12, 16, 20, 24),
) -> List[AliasingResult]:
    """Measure Path_Id collisions over a control-event stream.

    A collision is two *different* exact paths (``PathKey``) hashing to
    the same ``(id, terminating pc)`` pair — what would conflate Path
    Cache statistics.
    """
    events = list(events)
    history: deque = deque(maxlen=n)
    occurrences: Dict[PathKey, int] = defaultdict(int)
    for event in events:
        if event.terminating and event.measured and len(history) == n:
            key = PathKey(event.pc, tuple(history))
            occurrences[key] += 1
        if event.taken:
            history.append(event.pc)

    results: List[AliasingResult] = []
    total = sum(occurrences.values())
    for bits in bits_list:
        ids: Dict[Tuple[int, int], List[PathKey]] = defaultdict(list)
        for key in occurrences:
            hashed = (path_id_hash(key.branches, bits), key.term_pc)
            ids[hashed].append(key)
        aliased_ids = {h for h, keys in ids.items() if len(keys) > 1}
        aliased_occurrences = sum(
            occurrences[key]
            for h in aliased_ids
            for key in ids[h]
        )
        results.append(AliasingResult(
            bits=bits,
            unique_paths=len(occurrences),
            used_ids=len(ids),
            aliased_ids=len(aliased_ids),
            aliased_occurrences=aliased_occurrences,
            total_occurrences=total,
        ))
    return results
