"""Experiment drivers and report formatting.

Every table and figure of the paper's evaluation has a driver here:

* Table 1 — :func:`repro.analysis.characterize.characterize_paths`
* Table 2 — :func:`repro.analysis.coverage.coverage_analysis`
* Figure 6 — :func:`repro.analysis.experiments.figure6_potential`
* Figure 7 — :func:`repro.analysis.experiments.figure7_realistic`
* Figure 8 — :func:`repro.analysis.experiments.figure8_routines`
* Figure 9 — :func:`repro.analysis.experiments.figure9_timeliness`
* §1 intro claim — :func:`repro.analysis.experiments.intro_perfect_prediction`

Beyond the paper, :mod:`repro.analysis.arena` re-runs the figure
pipeline once per zoo baseline predictor (the SSMT-headroom-vs-baseline-
strength study) and :mod:`repro.analysis.h2p` classifies per-path
prediction regimes (Lin & Tarsa-style H2P analytics).

:mod:`repro.analysis.report` renders the results as aligned text tables,
which is what the benchmark harness prints.
"""

from repro.analysis.events import ControlEvent, collect_control_events
from repro.analysis.characterize import PathCharacterization, characterize_paths
from repro.analysis.coverage import CoverageResult, coverage_analysis
from repro.analysis.experiments import (
    figure6_potential,
    figure7_realistic,
    figure8_routines,
    figure9_timeliness,
    intro_perfect_prediction,
)
from repro.analysis.arena import ARENA_SCHEMA, arena_tasks, run_arena
from repro.analysis.h2p import (
    PathRegimeProfile,
    calibration_target,
    compare_profiles,
    profile_paths,
)
from repro.analysis.report import format_table
from repro.analysis.confidence import (
    ConfidenceCoverage,
    compare_confidence_schemes,
    confidence_coverage,
)
from repro.analysis.sweeps import (
    SweepPoint,
    sweep_machine_width,
    sweep_report,
    sweep_ssmt_knob,
)
from repro.analysis.charts import bar_chart, grouped_bar_chart, timeliness_stack
from repro.analysis.timeline import (
    TimelinePoint,
    ipc_timeline,
    sparkline,
    speedup_timeline,
)

__all__ = [
    "ControlEvent",
    "collect_control_events",
    "PathCharacterization",
    "characterize_paths",
    "CoverageResult",
    "coverage_analysis",
    "figure6_potential",
    "figure7_realistic",
    "figure8_routines",
    "figure9_timeliness",
    "intro_perfect_prediction",
    "ARENA_SCHEMA",
    "arena_tasks",
    "run_arena",
    "PathRegimeProfile",
    "calibration_target",
    "compare_profiles",
    "profile_paths",
    "format_table",
    "ConfidenceCoverage",
    "compare_confidence_schemes",
    "confidence_coverage",
    "SweepPoint",
    "sweep_machine_width",
    "sweep_report",
    "sweep_ssmt_knob",
    "bar_chart",
    "grouped_bar_chart",
    "timeliness_stack",
    "TimelinePoint",
    "ipc_timeline",
    "sparkline",
    "speedup_timeline",
]
