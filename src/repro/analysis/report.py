"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned, pipe-separated text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)
