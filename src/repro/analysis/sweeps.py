"""Configuration sensitivity sweeps.

The paper notes it "simulated many other configurations that we cannot
report due to space limitations" (§5.2).  These helpers sweep one knob
of the mechanism (or of the machine) at a time over a benchmark set and
report mean speed-up per setting, so a user can reproduce that design
space exploration.

All sweeps execute through :class:`repro.parallel.SweepRunner`: pass
``jobs`` (or set ``$REPRO_JOBS``) to fan points across a process pool,
and ``cache_dir`` to skip points a previous sweep already simulated.
Results are identical regardless of jobs/caching (the runner's task-key
contract; see ``docs/telemetry.md``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.ssmt import SSMTConfig
from repro.parallel import SweepRunner, SweepTask, point_ipc
from repro.uarch.config import TABLE3_BASELINE, MachineConfig


@dataclass
class SweepPoint:
    """Result at one setting of the swept knob."""

    setting: object
    per_benchmark: Dict[str, float]

    @property
    def mean_speedup(self) -> float:
        return statistics.mean(self.per_benchmark.values())

    @property
    def geomean_speedup(self) -> float:
        return statistics.geometric_mean(list(self.per_benchmark.values()))


def sweep_ssmt_knob(
    knob: str,
    settings: Sequence[object],
    benchmarks: Sequence[str],
    trace_length: int,
    base_config: Optional[SSMTConfig] = None,
    machine: MachineConfig = TABLE3_BASELINE,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[SweepPoint]:
    """Sweep one :class:`SSMTConfig` field across ``settings``.

    Example::

        sweep_ssmt_knob("n", [4, 10, 16], ("gcc", "comp"), 100_000)
    """
    base_config = base_config or SSMTConfig()
    if not hasattr(base_config, knob):
        raise ValueError(f"SSMTConfig has no knob {knob!r}")
    tasks: List[SweepTask] = [
        SweepTask(kind="baseline", benchmark=name,
                  instructions=trace_length, machine=machine)
        for name in benchmarks
    ]
    for setting in settings:
        config = replace(base_config, **{knob: setting})
        for name in benchmarks:
            tasks.append(SweepTask(kind="ssmt", benchmark=name,
                                   instructions=trace_length,
                                   label=f"{knob}={setting}",
                                   config=config, machine=machine))
    outcome = SweepRunner(jobs=jobs, cache_dir=cache_dir).run(tasks)
    if outcome.failures:
        raise RuntimeError(f"knob sweep failed: {outcome.errors}")
    results = outcome.results
    n_bench = len(benchmarks)
    baselines = {name: point_ipc(results[i])
                 for i, name in enumerate(benchmarks)}
    points: List[SweepPoint] = []
    for s, setting in enumerate(settings):
        offset = n_bench * (s + 1)
        per_benchmark = {
            name: point_ipc(results[offset + i]) / baselines[name]
            for i, name in enumerate(benchmarks)
        }
        points.append(SweepPoint(setting, per_benchmark))
    return points


def sweep_machine_width(
    widths: Sequence[int],
    benchmarks: Sequence[str],
    trace_length: int,
    config: Optional[SSMTConfig] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[SweepPoint]:
    """How does the mechanism's gain scale with machine width?

    The paper argues wide machines both need the mechanism more (larger
    penalties relative to work) and feed it better (spare execution
    capacity).  Each width uses its own baseline.
    """
    config = config or SSMTConfig()
    tasks: List[SweepTask] = []
    for width in widths:
        machine = TABLE3_BASELINE.scaled(
            fetch_width=width, issue_width=width, retire_width=width)
        for name in benchmarks:
            tasks.append(SweepTask(kind="baseline", benchmark=name,
                                   instructions=trace_length,
                                   label=f"baseline|w={width}",
                                   machine=machine))
            tasks.append(SweepTask(kind="ssmt", benchmark=name,
                                   instructions=trace_length,
                                   label=f"ssmt|w={width}",
                                   config=config, machine=machine))
    outcome = SweepRunner(jobs=jobs, cache_dir=cache_dir).run(tasks)
    if outcome.failures:
        raise RuntimeError(f"width sweep failed: {outcome.errors}")
    results = outcome.results
    points: List[SweepPoint] = []
    i = 0
    for width in widths:
        per_benchmark: Dict[str, float] = {}
        for name in benchmarks:
            base, ssmt = results[i], results[i + 1]
            per_benchmark[name] = point_ipc(ssmt) / point_ipc(base)
            i += 2
        points.append(SweepPoint(width, per_benchmark))
    return points


def sweep_report(points: List[SweepPoint], knob: str) -> str:
    """Render sweep results as a small text table."""
    from repro.analysis.report import format_table

    rows = [[p.setting, round(p.mean_speedup, 3), round(p.geomean_speedup, 3)]
            for p in points]
    return format_table([knob, "mean speed-up", "geomean"], rows,
                        title=f"Sensitivity to {knob}")
