"""Configuration sensitivity sweeps.

The paper notes it "simulated many other configurations that we cannot
report due to space limitations" (§5.2).  These helpers sweep one knob
of the mechanism (or of the machine) at a time over a benchmark set and
report mean speed-up per setting, so a user can reproduce that design
space exploration.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import baseline_run
from repro.branch.unit import BranchPredictorComplex
from repro.core.ssmt import SSMTConfig, run_ssmt
from repro.uarch.config import TABLE3_BASELINE, MachineConfig
from repro.uarch.timing import OoOTimingModel
from repro.workloads import benchmark_trace


@dataclass
class SweepPoint:
    """Result at one setting of the swept knob."""

    setting: object
    per_benchmark: Dict[str, float]

    @property
    def mean_speedup(self) -> float:
        return statistics.mean(self.per_benchmark.values())

    @property
    def geomean_speedup(self) -> float:
        return statistics.geometric_mean(list(self.per_benchmark.values()))


def sweep_ssmt_knob(
    knob: str,
    settings: Sequence[object],
    benchmarks: Sequence[str],
    trace_length: int,
    base_config: Optional[SSMTConfig] = None,
    machine: MachineConfig = TABLE3_BASELINE,
) -> List[SweepPoint]:
    """Sweep one :class:`SSMTConfig` field across ``settings``.

    Example::

        sweep_ssmt_knob("n", [4, 10, 16], ("gcc", "comp"), 100_000)
    """
    base_config = base_config or SSMTConfig()
    if not hasattr(base_config, knob):
        raise ValueError(f"SSMTConfig has no knob {knob!r}")
    baselines = {
        name: baseline_run(benchmark_trace(name, trace_length)).ipc
        for name in benchmarks
    }
    points: List[SweepPoint] = []
    for setting in settings:
        per_benchmark: Dict[str, float] = {}
        for name in benchmarks:
            trace = benchmark_trace(name, trace_length)
            config = replace(base_config, **{knob: setting})
            result, _ = run_ssmt(trace, config, machine=machine)
            per_benchmark[name] = result.ipc / baselines[name]
        points.append(SweepPoint(setting, per_benchmark))
    return points


def sweep_machine_width(
    widths: Sequence[int],
    benchmarks: Sequence[str],
    trace_length: int,
    config: Optional[SSMTConfig] = None,
) -> List[SweepPoint]:
    """How does the mechanism's gain scale with machine width?

    The paper argues wide machines both need the mechanism more (larger
    penalties relative to work) and feed it better (spare execution
    capacity).  Each width uses its own baseline.
    """
    config = config or SSMTConfig()
    points: List[SweepPoint] = []
    for width in widths:
        machine = TABLE3_BASELINE.scaled(
            fetch_width=width, issue_width=width, retire_width=width)
        per_benchmark: Dict[str, float] = {}
        for name in benchmarks:
            trace = benchmark_trace(name, trace_length)
            base = OoOTimingModel(machine).run(trace,
                                               BranchPredictorComplex())
            result, _ = run_ssmt(trace, config, machine=machine)
            per_benchmark[name] = result.ipc / base.ipc
        points.append(SweepPoint(width, per_benchmark))
    return points


def sweep_report(points: List[SweepPoint], knob: str) -> str:
    """Render sweep results as a small text table."""
    from repro.analysis.report import format_table

    rows = [[p.setting, round(p.mean_speedup, 3), round(p.geomean_speedup, 3)]
            for p in points]
    return format_table([knob, "mean speed-up", "geomean"], rows,
                        title=f"Sensitivity to {knob}")
