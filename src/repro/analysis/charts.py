"""Text bar charts for figure-style output.

The paper presents Figures 6-9 as grouped bar charts; these helpers
render the same shapes in a terminal so examples and the CLI can show
them without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: glyph cycle for grouped series
_GLYPHS = ("█", "▓", "░", "▒")


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    title: str = "",
    baseline: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of (label, value) pairs.

    ``baseline`` draws values relative to a reference (e.g. 1.0 for
    speed-ups): bars start at the baseline and grow right for gains,
    with losses marked by shorter bars and a negative annotation.
    """
    if not items:
        return title
    values = [value for _, value in items]
    low = min(values + ([baseline] if baseline is not None else []))
    high = max(values + ([baseline] if baseline is not None else []))
    span = (high - low) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        filled = int(round(width * (value - low) / span))
        bar = _GLYPHS[0] * filled
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)}| "
                     + fmt.format(value))
    if baseline is not None:
        marker = int(round(width * (baseline - low) / span))
        ruler = [" "] * (width + 2)
        ruler[min(marker + 1, width + 1)] = "^"
        lines.append(" " * label_width + " " + "".join(ruler)
                     + f" baseline={fmt.format(baseline)}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    width: int = 40,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Grouped bars: ``{group: {series: value}}`` (one row per series).

    Mirrors the paper's per-benchmark grouped figures: each group is a
    benchmark, each series a configuration.
    """
    if not groups:
        return title
    all_values = [v for series in groups.values() for v in series.values()]
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    series_names: List[str] = []
    for series in groups.values():
        for name in series:
            if name not in series_names:
                series_names.append(name)
    label_width = max(len(g) for g in groups)
    series_width = max(len(s) for s in series_names)
    lines = [title] if title else []
    legend = "  ".join(f"{_GLYPHS[i % len(_GLYPHS)]}={name}"
                       for i, name in enumerate(series_names))
    lines.append(legend)
    for group, series in groups.items():
        for i, name in enumerate(series_names):
            if name not in series:
                continue
            value = series[name]
            filled = int(round(width * (value - low) / span))
            glyph = _GLYPHS[i % len(_GLYPHS)]
            prefix = group.rjust(label_width) if i == 0 else " " * label_width
            lines.append(f"{prefix} {name.rjust(series_width)} "
                         f"|{(glyph * filled).ljust(width)}| "
                         + fmt.format(value))
    return "\n".join(lines)


def timeliness_stack(
    breakdowns: Dict[str, Dict[str, float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Stacked early/late/useless bars (the shape of paper Figure 9)."""
    lines = [title] if title else []
    lines.append(f"legend: {_GLYPHS[0]}=early {_GLYPHS[1]}=late "
                 f"{_GLYPHS[2]}=useless")
    label_width = max((len(k) for k in breakdowns), default=0)
    for name, parts in breakdowns.items():
        early = int(round(width * parts.get("early", 0.0)))
        late = int(round(width * parts.get("late", 0.0)))
        useless = max(0, width - early - late) \
            if parts.get("useless", 0.0) > 0 else 0
        bar = (_GLYPHS[0] * early + _GLYPHS[1] * late
               + _GLYPHS[2] * useless).ljust(width)
        lines.append(
            f"{name.rjust(label_width)} |{bar}| "
            f"e={100 * parts.get('early', 0):.0f}% "
            f"l={100 * parts.get('late', 0):.0f}% "
            f"u={100 * parts.get('useless', 0):.0f}%")
    return "\n".join(lines)
