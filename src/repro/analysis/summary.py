"""Full experiment report generation (markdown).

``generate_report`` runs every experiment the benchmark harness covers
and renders a markdown document with measured values next to the
paper's published ones — the machinery behind ``python -m repro report``
and the recorded ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from repro.analysis import paper_data
from repro.analysis.characterize import characterize_paths
from repro.analysis.coverage import coverage_analysis
from repro.analysis.events import collect_control_events
from repro.analysis.experiments import (
    figure6_potential,
    figure7_realistic,
    figure8_routines,
    figure9_timeliness,
    intro_perfect_prediction,
)
from repro.workloads import BENCHMARK_NAMES, benchmark_trace


def _md_table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(fmt(c) for c in row) + " |" for row in rows]
    return "\n".join(lines)


def generate_report(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: int = 200_000,
) -> str:
    """Run all experiments and return the markdown report."""
    benchmarks = tuple(benchmarks) if benchmarks else BENCHMARK_NAMES
    sections: List[str] = [
        "# Experiment report (generated)",
        f"\nBenchmarks: {', '.join(benchmarks)}; trace length "
        f"{trace_length} instructions per benchmark.\n",
    ]

    # -- Tables 1 & 2 -----------------------------------------------------
    events_by_bench = {
        name: collect_control_events(benchmark_trace(name, trace_length))
        for name in benchmarks
    }

    rows = []
    for name, events in events_by_bench.items():
        row = [name]
        for n in (4, 10, 16):
            c = characterize_paths(events, n)
            row += [c.unique_paths, round(c.mean_scope, 1),
                    c.difficult_paths[0.10]]
        rows.append(row)
    sections.append("## Table 1 — paths, scope, difficult paths (T=.10)\n")
    sections.append(_md_table(
        ["bench", "n4 paths", "n4 scope", "n4 diff",
         "n10 paths", "n10 scope", "n10 diff",
         "n16 paths", "n16 scope", "n16 diff"], rows))
    sections.append(
        f"\nPaper suite averages: paths "
        f"{paper_data.TABLE1_AVG_PATHS}, scope "
        f"{paper_data.TABLE1_AVG_SCOPE}, difficult@T=.10 "
        f"{paper_data.TABLE1_AVG_DIFFICULT_T10}.\n")

    rows = []
    for name, events in events_by_bench.items():
        results = coverage_analysis(events, ns=(4, 10, 16),
                                    thresholds=(0.10,))
        row = [name]
        for scheme in ("branch", "path(4)", "path(10)", "path(16)"):
            r = next(x for x in results if x.scheme == scheme)
            row += [round(100 * r.mispredict_coverage, 1),
                    round(100 * r.execution_coverage, 1)]
        rows.append(row)
    sections.append("## Table 2 — coverage at T=.10 (mis%, exe%)\n")
    sections.append(_md_table(
        ["bench", "br mis", "br exe", "p4 mis", "p4 exe",
         "p10 mis", "p10 exe", "p16 mis", "p16 exe"], rows))
    sections.append(
        f"\nPaper suite averages at T=.10: "
        f"{paper_data.TABLE2_AVERAGE_T10}.\n")

    # -- intro claim --------------------------------------------------------
    speedups = intro_perfect_prediction(benchmarks, trace_length)
    geo = statistics.geometric_mean(list(speedups.values()))
    sections.append("## §1 claim — perfect-prediction headroom\n")
    sections.append(_md_table(
        ["bench", "speed-up"],
        [[k, round(v, 3)] for k, v in speedups.items()]
        + [["GEOMEAN", round(geo, 3)]]))
    sections.append(f"\nPaper: ~{paper_data.INTRO_PERFECT_SPEEDUP}x.\n")

    # -- Figure 6 -----------------------------------------------------------
    fig6 = figure6_potential(benchmarks, trace_length=trace_length)
    sections.append("## Figure 6 — potential speed-up (T=.10)\n")
    sections.append(_md_table(
        ["bench", "n=4", "n=10", "n=16"],
        [[k, round(v[4], 3), round(v[10], 3), round(v[16], 3)]
         for k, v in fig6.items()]))

    # -- Figures 7-9 ---------------------------------------------------------
    realistic = figure7_realistic(benchmarks, trace_length=trace_length)
    mean_gain = 100 * (statistics.mean(
        r.speedup_pruning for r in realistic) - 1)
    sections.append("\n## Figure 7 — realistic speed-up (n=10, T=.10)\n")
    sections.append(_md_table(
        ["bench", "base IPC", "no-pruning", "pruning", "overhead-only"],
        [[r.benchmark, round(r.baseline_ipc, 2),
          round(r.speedup_no_pruning, 3), round(r.speedup_pruning, 3),
          round(r.speedup_overhead_only, 3)] for r in realistic]))
    sections.append(
        f"\nMeasured mean gain {mean_gain:.1f}% vs paper "
        f"{paper_data.FIG7_MEAN_GAIN_PERCENT}%.\n")

    fig8 = figure8_routines(realistic)
    sections.append("## Figure 8 — routine size & dependence chain\n")
    sections.append(_md_table(
        ["bench", "size np", "size p", "chain np", "chain p"],
        [[k, round(v["size_no_pruning"], 2), round(v["size_pruning"], 2),
          round(v["chain_no_pruning"], 2), round(v["chain_pruning"], 2)]
         for k, v in fig8.items()]))

    fig9 = figure9_timeliness(realistic)
    sections.append("\n## Figure 9 — prediction timeliness\n")
    sections.append(_md_table(
        ["bench", "np early%", "np late%", "np useless%",
         "p early%", "p late%", "p useless%"],
        [[k,
          round(100 * v["no_pruning"]["early"], 1),
          round(100 * v["no_pruning"]["late"], 1),
          round(100 * v["no_pruning"]["useless"], 1),
          round(100 * v["pruning"]["early"], 1),
          round(100 * v["pruning"]["late"], 1),
          round(100 * v["pruning"]["useless"], 1)]
         for k, v in fig9.items()]))

    sections.append("\n## Shape checks\n")
    for check in paper_data.SHAPE_CHECKS:
        sections.append(f"* **{check.name}** — {check.description}")

    return "\n".join(sections) + "\n"
