"""Windowed time-series measurement: watching the mechanism learn.

The hardware mechanism ramps: the Path Cache needs a training interval
per path, the builder works one routine at a time, and benefits accrue
as the MicroRAM fills.  :func:`ipc_timeline` measures windowed IPC and
misprediction rate across a run, and :func:`sparkline` renders compact
in-terminal series — used by ``examples/rampup.py`` to visualize the
difference between cold-start dynamic identification and the
profile-guided variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.branch.unit import BranchPredictorComplex
from repro.sim.trace import Trace
from repro.uarch.config import MachineConfig, TABLE3_BASELINE
from repro.uarch.timing import OoOTimingModel

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


@dataclass
class TimelinePoint:
    """One measurement window."""

    start_idx: int
    end_idx: int
    cycles: int
    instructions: int
    mispredicts: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class _WindowCollector:
    """Listener recording retire cycles at window boundaries."""

    def __init__(self, window: int, chain=None):
        self.window = window
        self.boundaries: List[Tuple[int, int]] = []  # (idx, retire_cycle)
        self._chain = chain
        if chain is not None:
            for hook in ("on_fetch", "lookup_prediction", "on_control",
                         "on_prediction_outcome"):
                target = getattr(chain, hook, None)
                if target is not None:
                    setattr(self, hook, target)

    def on_retire(self, idx, rec, retire_cycle):
        if idx % self.window == self.window - 1:
            self.boundaries.append((idx, retire_cycle))
        chained = getattr(self._chain, "on_retire", None)
        if chained is not None:
            chained(idx, rec, retire_cycle)


def ipc_timeline(
    trace: Trace,
    window: int = 20_000,
    machine: MachineConfig = TABLE3_BASELINE,
    listener=None,
) -> List[TimelinePoint]:
    """Windowed IPC over a timing run (optionally with an SSMT listener)."""
    collector = _WindowCollector(window, chain=listener)
    model = OoOTimingModel(machine)
    model.run(trace, BranchPredictorComplex(), listener=collector)

    points: List[TimelinePoint] = []
    prev_idx, prev_cycle = -1, 0
    for idx, cycle in collector.boundaries:
        instructions = idx - prev_idx
        points.append(TimelinePoint(
            start_idx=prev_idx + 1,
            end_idx=idx,
            cycles=max(1, cycle - prev_cycle),
            instructions=instructions,
            mispredicts=0,
        ))
        prev_idx, prev_cycle = idx, cycle
    return points


def speedup_timeline(
    trace: Trace,
    make_listener,
    window: int = 20_000,
    machine: MachineConfig = TABLE3_BASELINE,
) -> List[Tuple[int, float]]:
    """Per-window speed-up of a listener-equipped run over the baseline.

    ``make_listener`` is a zero-argument factory (a fresh engine per
    run).  Returns ``[(window_end_idx, speedup), ...]``.
    """
    base = ipc_timeline(trace, window, machine)
    enhanced = ipc_timeline(trace, window, machine,
                            listener=make_listener())
    series: List[Tuple[int, float]] = []
    for b, e in zip(base, enhanced):
        series.append((b.end_idx, b.cycles / e.cycles))
    return series


def sparkline(values: List[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render a numeric series as a unicode sparkline."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = (hi - lo) or 1.0
    glyphs = []
    for value in values:
        level = int((value - lo) / span * (len(_SPARK_GLYPHS) - 1))
        glyphs.append(_SPARK_GLYPHS[max(0, min(level,
                                               len(_SPARK_GLYPHS) - 1))])
    return "".join(glyphs)
