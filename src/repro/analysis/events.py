"""Compact control-flow event streams for the path analyses.

Tables 1 and 2 need several passes over the same trace with different
path lengths ``n``.  Running the branch predictor once and keeping only
the control transfers (with their misprediction flags) makes the per-``n``
passes cheap.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.unit import BranchPredictorComplex
from repro.sim.trace import Trace


class ControlEvent:
    """One dynamic control transfer.

    ``terminating`` marks conditional/indirect branches (the kinds that
    can terminate a difficult path); ``measured`` marks events past the
    warm-up boundary.
    """

    __slots__ = ("idx", "pc", "taken", "terminating", "mispredicted",
                 "measured")

    def __init__(self, idx: int, pc: int, taken: bool, terminating: bool,
                 mispredicted: bool, measured: bool):
        self.idx = idx
        self.pc = pc
        self.taken = taken
        self.terminating = terminating
        self.mispredicted = mispredicted
        self.measured = measured


def collect_control_events(
    trace: Trace,
    warmup: Optional[int] = None,
    predictor: Optional[BranchPredictorComplex] = None,
) -> List[ControlEvent]:
    """Run the hardware predictor over ``trace`` and keep control events.

    ``warmup`` (instruction count) marks the measurement boundary; the
    predictor trains throughout, but events before the boundary carry
    ``measured=False`` so analyses can skip cold-start noise.  Default
    warm-up is a quarter of the trace.
    """
    if warmup is None:
        warmup = len(trace) // 4
    unit = predictor if predictor is not None else BranchPredictorComplex()
    events: List[ControlEvent] = []
    append = events.append
    for idx, rec in enumerate(trace.records):
        if not rec.inst.is_control:
            continue
        outcome = unit.process(rec)
        append(ControlEvent(
            idx=idx,
            pc=rec.pc,
            taken=rec.taken,
            terminating=rec.inst.is_path_terminating,
            mispredicted=outcome.mispredicted,
            measured=idx >= warmup,
        ))
    return events
