"""Misprediction / execution coverage (paper Table 2).

Compares classifying by *difficult branches* (static terminating-branch
PCs whose aggregate misprediction rate exceeds ``T``) against *difficult
paths* for several path lengths.  Coverage is the fraction of all
mispredictions (respectively, dynamic terminating-branch executions)
attributable to the difficult set.

The paper's headline: paths raise misprediction coverage while lowering
execution coverage — difficult branches have many easy paths, and easy
branches hide a few difficult paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.analysis.events import ControlEvent
from repro.core.path import PathKey


@dataclass
class CoverageResult:
    """Coverage of one classification scheme at one threshold."""

    scheme: str            # "branch" or "path(n)"
    threshold: float
    mispredict_coverage: float
    execution_coverage: float
    difficult_count: int
    total_mispredicts: int
    total_executions: int


class _Stat:
    __slots__ = ("executions", "mispredicts")

    def __init__(self):
        self.executions = 0
        self.mispredicts = 0


def _coverage(stats: Dict, threshold: float, scheme: str) -> CoverageResult:
    total_exec = sum(s.executions for s in stats.values())
    total_mis = sum(s.mispredicts for s in stats.values())
    difficult = [
        s for s in stats.values()
        if s.executions and s.mispredicts / s.executions > threshold
    ]
    mis_cov = (sum(s.mispredicts for s in difficult) / total_mis
               if total_mis else 0.0)
    exe_cov = (sum(s.executions for s in difficult) / total_exec
               if total_exec else 0.0)
    return CoverageResult(
        scheme=scheme,
        threshold=threshold,
        mispredict_coverage=mis_cov,
        execution_coverage=exe_cov,
        difficult_count=len(difficult),
        total_mispredicts=total_mis,
        total_executions=total_exec,
    )


def coverage_analysis(
    events: Iterable[ControlEvent],
    ns: Sequence[int] = (4, 10, 16),
    thresholds: Sequence[float] = (0.05, 0.10, 0.15),
) -> List[CoverageResult]:
    """Table 2: branch-based and path-based coverages.

    Returns one :class:`CoverageResult` per (scheme, threshold), where
    schemes are ``"branch"`` plus ``"path(n)"`` for each ``n``.
    """
    events = list(events)

    branch_stats: Dict[int, _Stat] = {}
    for event in events:
        if event.terminating and event.measured:
            stat = branch_stats.setdefault(event.pc, _Stat())
            stat.executions += 1
            stat.mispredicts += event.mispredicted

    results: List[CoverageResult] = []
    for t in thresholds:
        results.append(_coverage(branch_stats, t, "branch"))

    for n in ns:
        history: deque = deque(maxlen=n)
        path_stats: Dict[PathKey, _Stat] = {}
        for event in events:
            if event.terminating and event.measured and len(history) == n:
                key = PathKey(event.pc, tuple(pc for pc, _ in history))
                stat = path_stats.setdefault(key, _Stat())
                stat.executions += 1
                stat.mispredicts += event.mispredicted
            if event.taken:
                history.append((event.pc, event.idx))
        for t in thresholds:
            results.append(_coverage(path_stats, t, f"path({n})"))
    return results
