"""The predictor arena: SSMT headroom vs. baseline predictor strength.

The paper's evaluation measures subordinate-microthread speed-ups over
one hardware baseline: the 2002 gshare/PAs hybrid.  The obvious threat
to validity, twenty years on, is that a stronger baseline leaves fewer
mispredictions for microthreads to eliminate.  The arena quantifies
exactly that: it re-runs the figure-6/7/9 pipeline once per registered
zoo baseline (:data:`repro.branch.zoo.ARENA_BASELINES` — the paper
hybrid, TAGE-lite, a hashed perceptron, and an H2P-augmented TAGE) and
emits one versioned artifact relating baseline strength to remaining
SSMT headroom, plus per-path H2P analytics (:mod:`repro.analysis.h2p`)
showing *which* path regimes each predictor eliminates and what a
representative workload generator should calibrate against.

Every simulation is a :class:`~repro.parallel.SweepTask` routed through
the cached :class:`~repro.parallel.SweepRunner`, so ``--jobs`` fans the
(baseline x benchmark x kind) grid across a process pool and a cache
directory makes re-runs incremental; by the task-key contract the
artifact (outside ``context``) is bit-identical across serial, parallel
and cached executions.

Arena artifact schema (``repro.arena/1``)::

    {
      "schema": "repro.arena/1",
      "context": {...},              # grid description + runner accounting
      "baselines": {                 # per zoo baseline label
        "<label>": {
          "predictor": {...},        # the PredictorConfig, serialised
          "per_benchmark": {
            "<bench>": {"accuracy", "baseline_ipc", "ssmt_speedup",
                         "potential_speedup", "oracle_speedup",
                         "timeliness": {early, late, useless, total}},
          },
        },
      },
      "headroom": {                  # the study, one row per baseline
        "<label>": {"mean_accuracy", "geomean_ssmt_speedup",
                     "geomean_potential_speedup",
                     "geomean_oracle_headroom"},
      },
      "h2p": {                       # per-path analytics (h2p module)
        "<label>": {"<bench>": {profile summary + "vs_reference"}},
      },
      "calibration_targets": {"<bench>": {...}},   # generator feedback
    }
"""

from __future__ import annotations

import json
import statistics
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.events import collect_control_events
from repro.analysis.h2p import (
    PathRegimeProfile,
    calibration_target,
    compare_profiles,
    profile_paths,
)
from repro.core.oracle import PotentialConfig
from repro.core.ssmt import SSMTConfig
from repro.parallel import SweepRunner, SweepTask, point_ipc
from repro.schemas import schema_string
from repro.workloads import benchmark_trace

#: Schema of the arena artifact.
ARENA_SCHEMA = schema_string("repro.arena", 1)

#: Path length for the per-path H2P analytics (the paper's default n).
DEFAULT_PATH_N = 10

#: Baseline whose H2P profile the others are diffed against.
DEFAULT_REFERENCE = "hybrid"

_KINDS_PER_BASELINE = 3  # baseline, ssmt, potential


def _resolve_baselines(
    baselines: Union[None, Sequence[str], Dict[str, Any]],
) -> Dict[str, Any]:
    """Normalise a label list / config dict to ``{label: config}``."""
    from repro.branch.zoo import ARENA_BASELINES

    if baselines is None:
        return dict(ARENA_BASELINES)
    if isinstance(baselines, dict):
        return dict(baselines)
    resolved: Dict[str, Any] = {}
    for label in baselines:
        if label not in ARENA_BASELINES:
            raise ValueError(
                f"unknown arena baseline {label!r}; registered: "
                + ", ".join(sorted(ARENA_BASELINES)))
        resolved[label] = ARENA_BASELINES[label]
    return resolved


def arena_tasks(
    labels: Sequence[str],
    baselines: Dict[str, Any],
    benchmarks: Sequence[str],
    instructions: int,
    ssmt_config: SSMTConfig,
    potential_config: PotentialConfig,
    kernel: str = "scalar",
    sample: Optional[Any] = None,
) -> List[SweepTask]:
    """The arena grid: one shared oracle per benchmark, then a
    baseline/ssmt/potential triple per (zoo baseline, benchmark).

    ``kernel``/``sample`` apply to the baseline/ssmt points only —
    oracle and potential runs always use the scalar reference loop.
    """
    tasks: List[SweepTask] = [
        SweepTask(kind="oracle", benchmark=name, instructions=instructions,
                  label="oracle")
        for name in benchmarks
    ]
    for label in labels:
        predictor = baselines[label]
        for name in benchmarks:
            tasks.append(SweepTask(
                kind="baseline", benchmark=name, instructions=instructions,
                label=f"{label}|baseline", predictor=predictor,
                kernel=kernel, sample=sample))
            tasks.append(SweepTask(
                kind="ssmt", benchmark=name, instructions=instructions,
                label=f"{label}|ssmt", config=ssmt_config,
                predictor=predictor, kernel=kernel, sample=sample))
            tasks.append(SweepTask(
                kind="potential", benchmark=name, instructions=instructions,
                label=f"{label}|potential", potential=potential_config,
                predictor=predictor))
    return tasks


def _accuracy(point: Dict[str, Any]) -> float:
    """Direction/target accuracy of a baseline point from its counts."""
    timing = point["timing"]
    branches = (timing["conditional_branches"]
                + timing["indirect_branches"])
    if not branches:
        return 0.0
    return 1.0 - timing["effective_mispredicts"] / branches


def _timeliness(metrics: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Figure 9's arrival breakdown from an ssmt point's metrics."""
    kinds = (metrics or {}).get("prediction_kinds", {})
    early = kinds.get("early", 0)
    late = (kinds.get("late_agree", 0) + kinds.get("late_useful", 0)
            + kinds.get("late_harmful", 0))
    useless = kinds.get("useless", 0)
    total = early + late + useless
    if not total:
        return {"early": 0.0, "late": 0.0, "useless": 0.0, "total": 0}
    return {
        "early": round(early / total, 6),
        "late": round(late / total, 6),
        "useless": round(useless / total, 6),
        "total": total,
    }


def run_arena(
    benchmarks: Sequence[str],
    instructions: int,
    baselines: Union[None, Sequence[str], Dict[str, Any]] = None,
    reference: str = DEFAULT_REFERENCE,
    n: int = 10,
    threshold: float = 0.10,
    path_n: int = DEFAULT_PATH_N,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = True,
    kernel: str = "scalar",
    sample: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run the arena and return the ``repro.arena/1`` artifact.

    ``baselines`` defaults to every registered arena baseline; a
    sequence of labels selects a subset, a ``{label: PredictorConfig}``
    dict supplies custom configurations.  Runner accounting (jobs,
    cache hits, elapsed) lands only under ``context`` so the rest of the
    artifact is bit-identical across serial/parallel/cached runs.
    ``kernel``/``sample`` select the retire-loop kernel and optional
    sampled simulation for the baseline/ssmt points (see
    :mod:`repro.kernel`).
    """
    resolved = _resolve_baselines(baselines)
    if not resolved:
        raise ValueError("run_arena needs at least one baseline")
    labels = sorted(resolved)
    reference = reference if reference in resolved else labels[0]

    ssmt_config = SSMTConfig(n=n, difficulty_threshold=threshold)
    potential_config = PotentialConfig(n=n, difficulty_threshold=threshold)
    tasks = arena_tasks(labels, resolved, benchmarks, instructions,
                        ssmt_config, potential_config,
                        kernel=kernel, sample=sample)
    outcome = SweepRunner(jobs=jobs, cache_dir=cache_dir,
                          resume=resume).run(tasks)
    if outcome.failures:
        raise RuntimeError(
            f"arena sweep failed for {outcome.failures} point(s): "
            f"{outcome.errors}")
    results = [r for r in outcome.results if r is not None]

    # Results are order-aligned with the task grid: oracles first, then
    # per-label (baseline, ssmt, potential) triples per benchmark.
    bench_count = len(benchmarks)
    oracle_ipc = {name: point_ipc(results[i])
                  for i, name in enumerate(benchmarks)}
    per_label: Dict[str, Dict[str, Any]] = {}
    for li, label in enumerate(labels):
        offset = bench_count + li * bench_count * _KINDS_PER_BASELINE
        per_benchmark: Dict[str, Any] = {}
        for bi, name in enumerate(benchmarks):
            base = results[offset + bi * _KINDS_PER_BASELINE]
            ssmt = results[offset + bi * _KINDS_PER_BASELINE + 1]
            potential = results[offset + bi * _KINDS_PER_BASELINE + 2]
            base_ipc = point_ipc(base)
            per_benchmark[name] = {
                "accuracy": round(_accuracy(base), 6),
                "baseline_ipc": round(base_ipc, 6),
                "ssmt_speedup": round(point_ipc(ssmt) / base_ipc, 6),
                "potential_speedup": round(
                    point_ipc(potential) / base_ipc, 6),
                "oracle_speedup": round(oracle_ipc[name] / base_ipc, 6),
                "timeliness": _timeliness(ssmt["metrics"]),
            }
        per_label[label] = {
            "predictor": asdict(resolved[label]),
            "per_benchmark": per_benchmark,
        }

    headroom: Dict[str, Any] = {}
    for label in labels:
        rows = per_label[label]["per_benchmark"].values()
        headroom[label] = {
            "mean_accuracy": round(statistics.mean(
                r["accuracy"] for r in rows), 6),
            "geomean_ssmt_speedup": round(statistics.geometric_mean(
                [r["ssmt_speedup"] for r in rows]), 6),
            "geomean_potential_speedup": round(statistics.geometric_mean(
                [r["potential_speedup"] for r in rows]), 6),
            "geomean_oracle_headroom": round(statistics.geometric_mean(
                [r["oracle_speedup"] for r in rows]), 6),
        }

    # Per-path H2P analytics: one in-process branch-unit pass per
    # (baseline, benchmark) — cheap next to the timing simulations.
    from repro.branch.zoo import make_complex

    profiles: Dict[str, Dict[str, PathRegimeProfile]] = {}
    for label in labels:
        profiles[label] = {}
        for name in benchmarks:
            events = collect_control_events(
                benchmark_trace(name, instructions),
                predictor=make_complex(resolved[label]))
            profiles[label][name] = profile_paths(events, n=path_n)

    h2p: Dict[str, Any] = {}
    for label in labels:
        h2p[label] = {}
        for name in benchmarks:
            summary = profiles[label][name].as_dict()
            if label != reference:
                summary["vs_reference"] = compare_profiles(
                    profiles[reference][name], profiles[label][name])
            h2p[label][name] = summary

    calibration = {
        name: calibration_target(
            {label: profiles[label][name] for label in labels})
        for name in benchmarks
    }

    artifact = {
        "schema": ARENA_SCHEMA,
        "context": {
            "benchmarks": list(benchmarks),
            "instructions": instructions,
            "baselines": labels,
            "reference": reference,
            "n": n,
            "threshold": threshold,
            "path_n": path_n,
            "points": len(tasks),
            "jobs": outcome.jobs,
            "simulated": outcome.simulated,
            "cache_hits": outcome.cache_hits,
            "deduped": outcome.deduped,
            "retries": outcome.retries,
            "elapsed": round(outcome.elapsed, 3),
        },
        "baselines": per_label,
        "headroom": headroom,
        "h2p": h2p,
        "calibration_targets": calibration,
    }
    # Same normalisation as the worker payloads: fresh and cached runs
    # serialise identically.
    normalised: Dict[str, Any] = json.loads(
        json.dumps(artifact, sort_keys=True))
    return normalised
