"""The paper's published numbers, transcribed for side-by-side comparison.

Sources: Chappell et al., "Difficult-Path Branch Prediction Using
Subordinate Microthreads", ISCA 2002 — Table 1, Table 2 (T=0.10 slice),
and the quantitative claims in the text.  Benchmarks are keyed by the
same names the synthetic suite uses.

These values came from full SPECint95/2000 reference runs on the
authors' simulator; the reproduction's absolute values differ (traces
are orders of magnitude shorter, the substrate is synthetic), so
comparisons should be made on *shape*: orderings, growth directions and
ratios.  :func:`shape_checks` encodes those shapes as predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Table 1 — unique paths and mean scope per benchmark, for n=4/10/16.
#: Values: {bench: {n: (unique_paths, mean_scope)}}.
TABLE1_PATHS_SCOPE: Dict[str, Dict[int, Tuple[int, float]]] = {
    "comp":       {4: (1332, 49.38),    10: (3320, 123.77),    16: (8205, 195.64)},
    "gcc":        {4: (131967, 37.14),  10: (428613, 89.18),   16: (886147, 137.82)},
    "go":         {4: (113825, 51.16),  10: (681239, 113.49),  16: (1697537, 171.80)},
    "ijpeg":      {4: (7679, 62.98),    10: (30624, 153.64),   16: (94023, 228.17)},
    "li":         {4: (4095, 36.16),    10: (8933, 88.13),     16: (16602, 142.26)},
    "m88ksim":    {4: (5342, 41.20),    10: (12397, 99.60),    16: (23460, 164.51)},
    "perl":       {4: (11003, 39.75),   10: (26572, 91.98),    16: (47152, 137.67)},
    "vortex":     {4: (36951, 48.12),   10: (76350, 114.28),   16: (119339, 178.32)},
    "bzip2_2k":   {4: (23585, 216.94),  10: (836082, 551.77),  16: (4455846, 541.59)},
    "crafty_2k":  {4: (59559, 83.76),   10: (361879, 214.84),  16: (942334, 351.84)},
    "eon_2k":     {4: (15986, 44.77),   10: (32789, 102.88),   16: (48633, 160.16)},
    "gap_2k":     {4: (28760, 52.17),   10: (84630, 131.52),   16: (165838, 217.80)},
    "gcc_2k":     {4: (203334, 55.63),  10: (671250, 132.41),  16: (1191885, 205.37)},
    "gzip_2k":    {4: (21942, 100.94),  10: (472396, 267.46),  16: (1973159, 412.21)},
    "mcf_2k":     {4: (7707, 46.05),    10: (65498, 118.08),   16: (232125, 165.48)},
    "parser_2k":  {4: (22174, 49.65),   10: (105758, 119.59),  16: (374747, 181.99)},
    "perlbmk_2k": {4: (12608, 47.38),   10: (22337, 112.44),   16: (28475, 175.75)},
    "twolf_2k":   {4: (24280, 62.46),   10: (91321, 162.95),   16: (240853, 251.63)},
    "vortex_2k":  {4: (57718, 65.13),   10: (130800, 148.84),  16: (208697, 229.24)},
    "vpr_2k":     {4: (34589, 111.11),  10: (1330809, 348.34), 16: (4895234, 550.59)},
}

#: Table 1 — difficult path counts at T=0.10 per n (suite averages).
TABLE1_AVG_DIFFICULT_T10: Dict[int, int] = {4: 12686, 10: 66396, 16: 166125}
TABLE1_AVG_PATHS: Dict[int, int] = {4: 41222, 10: 273680, 16: 882515}
TABLE1_AVG_SCOPE: Dict[int, float] = {4: 65.09, 10: 164.26, 16: 239.99}

#: Table 2 at T=0.10 — suite-average coverages per scheme:
#: (mispredict_coverage_percent, execution_coverage_percent).
TABLE2_AVERAGE_T10: Dict[str, Tuple[float, float]] = {
    "branch": (71.6, 15.0),
    "path(4)": (79.0, 13.0),
    "path(10)": (84.3, 11.6),
    "path(16)": (87.4, 10.4),
}

#: Table 2 at T=0.10 — per-benchmark branch vs path(16) coverages.
TABLE2_T10_BRANCH_VS_PATH16: Dict[str, Tuple[float, float, float, float]] = {
    # bench: (branch mis%, branch exe%, path16 mis%, path16 exe%)
    "comp": (94.6, 16.5, 94.9, 13.2),
    "gcc": (63.6, 17.6, 81.4, 14.1),
    "go": (85.2, 49.0, 90.0, 31.3),
    "perl": (68.4, 4.2, 94.1, 3.7),
    "eon_2k": (65.4, 4.0, 78.3, 3.5),
    "mcf_2k": (47.7, 9.8, 73.6, 7.2),
    "vpr_2k": (90.9, 24.4, 98.4, 13.3),
}

# -- headline claims -----------------------------------------------------------

#: §Abstract/§5.3: average and maximum realistic speed-up.
FIG7_MEAN_GAIN_PERCENT = 8.4
FIG7_MAX_GAIN_PERCENT = 42.0

#: §1: perfect prediction of remaining mispredictions gives ~2x.
INTRO_PERFECT_SPEEDUP = 2.0

#: §4.1: allocate-on-mispredict ignores ~45% of possible allocations.
PATH_CACHE_ALLOCATIONS_AVOIDED_PERCENT = 45.0

#: §4.3.2: spawn abort rates.
PRE_ALLOCATION_ABORT_PERCENT = 67.0
ACTIVE_ABORT_PERCENT = 66.0

#: §5.1/§5.2 experiment parameters.
PATH_CACHE_ENTRIES = 8192
TRAINING_INTERVAL = 32
MICRORAM_ENTRIES = 8192
PREDICTION_CACHE_ENTRIES = 128
PRB_ENTRIES = 512
BUILD_LATENCY_CYCLES = 100
FIG7_N = 10
FIG7_THRESHOLD = 0.10


@dataclass
class ShapeCheck:
    """A qualitative relationship the reproduction should preserve."""

    name: str
    description: str


SHAPE_CHECKS = (
    ShapeCheck(
        "paths-grow-with-n",
        "Table 1: unique path counts rise steeply from n=4 to n=16 "
        "(paper averages 41K -> 882K).",
    ),
    ShapeCheck(
        "scope-grows-with-n",
        "Table 1: mean scope grows with n (paper averages 65 -> 240 "
        "instructions).",
    ),
    ShapeCheck(
        "difficult-stable-across-T",
        "Table 1: the difficult-path count changes little between "
        "T=.05 and T=.15.",
    ),
    ShapeCheck(
        "paths-beat-branches",
        "Table 2: path classification raises misprediction coverage "
        "(71.6% -> 87.4% at T=.10) while lowering execution coverage "
        "(15.0% -> 10.4%).",
    ),
    ShapeCheck(
        "perfect-prediction-2x",
        "§1: eliminating remaining mispredictions on the 16-wide "
        "baseline roughly doubles performance.",
    ),
    ShapeCheck(
        "realistic-mean-gain",
        "Figure 7: the full mechanism averages ~8.4% with pruning >= "
        "no-pruning and overhead-only near 1.0.",
    ),
    ShapeCheck(
        "pruning-shortens-chains",
        "Figure 8: pruning shortens the mean longest dependence chain.",
    ),
    ShapeCheck(
        "late-dominates",
        "Figure 9: most consumed predictions arrive after the branch is "
        "fetched, even with pruning.",
    ),
)


def paper_table1_row(bench: str, n: int) -> Tuple[int, float]:
    """(unique paths, mean scope) the paper reports for (bench, n)."""
    return TABLE1_PATHS_SCOPE[bench][n]
