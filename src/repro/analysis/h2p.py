"""Per-path hard-to-predict (H2P) analytics for the predictor arena.

Lin & Tarsa ("Branch Prediction Is Not a Solved Problem", IISWC 2019)
showed that a modern TAGE-class predictor's remaining mispredictions
concentrate in a small set of *hard-to-predict* static entities that are
executed often yet stay inaccurate.  This module applies that taxonomy
at the paper's granularity — the difficult **path** (terminating branch
plus its ``n`` prior taken branches) — so the arena can ask, per zoo
baseline: which path regimes does this predictor eliminate, and which
survive even the strongest baseline (the population SSMT microthreads
must target)?

Every measured path lands in exactly one regime:

* ``easy`` — mispredict rate at or below ``easy_threshold``: the
  predictor has effectively solved it,
* ``h2p`` — rate above ``difficult_threshold`` **and** at least
  ``min_occurrences`` executions: frequently executed yet still wrong,
  the Lin & Tarsa hard branch generalised to a path, and
* ``transient`` — everything between: moderately mispredicted, or too
  rarely executed for the rate to mean much (cold/short-lived paths).

:func:`compare_profiles` diffs two predictors' H2P sets (killed /
surviving / introduced paths); :func:`calibration_target` turns a set of
per-baseline profiles into workload-generator targets — the difficult
fraction a synthetic benchmark should produce to stay representative
against modern baselines, fed back into workload calibration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, Set, Tuple

from repro.analysis.events import ControlEvent
from repro.core.path import PathKey

#: The regimes every measured path is classified into.
REGIMES = ("easy", "transient", "h2p")


@dataclass
class PathRegimeProfile:
    """One predictor's per-path accuracy regimes over one benchmark.

    ``paths`` maps each measured path to ``(occurrences, mispredicts)``;
    ``regimes`` counts unique paths per regime and
    ``mispredicts_by_regime`` attributes the measured mispredictions to
    the regime of the path they occurred on.
    """

    n: int
    easy_threshold: float
    difficult_threshold: float
    min_occurrences: int
    accuracy: float  #: measured terminating-branch prediction accuracy
    paths: Dict[PathKey, Tuple[int, int]]
    regimes: Dict[str, int]
    mispredicts_by_regime: Dict[str, int]

    def regime_of(self, key: PathKey) -> str:
        """The regime of one measured path."""
        occurrences, mispredicts = self.paths[key]
        return _classify(occurrences, mispredicts, self.easy_threshold,
                         self.difficult_threshold, self.min_occurrences)

    def h2p_paths(self) -> Set[PathKey]:
        """The paths this predictor leaves hard-to-predict."""
        return {key for key in self.paths if self.regime_of(key) == "h2p"}

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (path keys are not serialised)."""
        return {
            "n": self.n,
            "accuracy": round(self.accuracy, 6),
            "unique_paths": len(self.paths),
            "regimes": dict(self.regimes),
            "mispredicts_by_regime": dict(self.mispredicts_by_regime),
        }


def classify_counts(occurrences: int, mispredicts: int,
                    easy_threshold: float, difficult_threshold: float,
                    min_occurrences: int) -> str:
    """Regime of one path's raw counts (see module docstring).

    This is the single classification rule for the whole toolkit: the
    offline arena profiles above and the online misprediction flight
    recorder (:mod:`repro.obs.flight`) both call it, so "H2P" means the
    same thing in an arena report and in a post-mortem dump.
    """
    rate = mispredicts / occurrences if occurrences else 0.0
    if rate <= easy_threshold:
        return "easy"
    if rate > difficult_threshold and occurrences >= min_occurrences:
        return "h2p"
    return "transient"


#: Internal alias kept for the profile code below.
_classify = classify_counts


def profile_paths(
    events: Iterable[ControlEvent],
    n: int = 10,
    easy_threshold: float = 0.01,
    difficult_threshold: float = 0.10,
    min_occurrences: int = 4,
) -> PathRegimeProfile:
    """Classify every measured path of a control-event stream.

    ``events`` comes from
    :func:`repro.analysis.events.collect_control_events` run with the
    predictor under study; path history warms up over the full stream
    but only measured (post-warm-up) terminating branches contribute,
    mirroring :func:`repro.analysis.characterize.characterize_paths`.
    """
    history: Deque[Tuple[int, int]] = deque(maxlen=n)
    paths: Dict[PathKey, Tuple[int, int]] = {}
    branches = 0
    mispredicted = 0
    for event in events:
        if event.terminating and event.measured:
            branches += 1
            if event.mispredicted:
                mispredicted += 1
            if len(history) == n:
                key = PathKey(event.pc, tuple(pc for pc, _ in history))
                occurrences, mispredicts = paths.get(key, (0, 0))
                paths[key] = (occurrences + 1,
                              mispredicts + (1 if event.mispredicted else 0))
        if event.taken:
            history.append((event.pc, event.idx))

    regimes = {regime: 0 for regime in REGIMES}
    by_regime = {regime: 0 for regime in REGIMES}
    for occurrences, mispredicts in paths.values():
        regime = _classify(occurrences, mispredicts, easy_threshold,
                           difficult_threshold, min_occurrences)
        regimes[regime] += 1
        by_regime[regime] += mispredicts
    return PathRegimeProfile(
        n=n,
        easy_threshold=easy_threshold,
        difficult_threshold=difficult_threshold,
        min_occurrences=min_occurrences,
        accuracy=1.0 - (mispredicted / branches) if branches else 0.0,
        paths=paths,
        regimes=regimes,
        mispredicts_by_regime=by_regime,
    )


def compare_profiles(reference: PathRegimeProfile,
                     candidate: PathRegimeProfile) -> Dict[str, Any]:
    """Diff two predictors' H2P path sets over the same benchmark.

    ``killed`` paths are H2P under the reference but not the candidate
    (the regimes the candidate eliminates), ``surviving`` stay H2P under
    both, ``introduced`` are H2P only under the candidate.
    ``killed_mispredict_share`` weights the kill set by the reference
    mispredictions it accounts for — eliminating two noisy paths matters
    less than eliminating one hot one.
    """
    ref_h2p = reference.h2p_paths()
    cand_h2p = candidate.h2p_paths()
    killed = ref_h2p - cand_h2p
    ref_h2p_mispredicts = sum(reference.paths[k][1] for k in ref_h2p)
    killed_mispredicts = sum(reference.paths[k][1] for k in killed)
    return {
        "reference_h2p": len(ref_h2p),
        "killed": len(killed),
        "surviving": len(ref_h2p & cand_h2p),
        "introduced": len(cand_h2p - ref_h2p),
        "killed_mispredict_share": round(
            killed_mispredicts / ref_h2p_mispredicts, 6)
        if ref_h2p_mispredicts else 0.0,
    }


def calibration_target(
    profiles: Dict[str, PathRegimeProfile],
) -> Dict[str, Any]:
    """Workload-generator targets from per-baseline profiles of one
    benchmark.

    The strongest baseline (fewest surviving H2P paths; ties broken by
    label for determinism) defines what the synthetic workload should
    calibrate against: ``target_h2p_fraction`` is the share of unique
    paths a representative workload should leave hard even for that
    predictor, and ``target_accuracy`` the branch accuracy it should
    allow.  A generator tuned only against the 2002 hybrid overstates
    difficulty; these targets keep it honest against modern baselines.
    """
    if not profiles:
        raise ValueError("calibration_target needs at least one profile")
    strongest = min(sorted(profiles),
                    key=lambda label: profiles[label].regimes["h2p"])
    best = profiles[strongest]
    unique = len(best.paths)
    return {
        "strongest_baseline": strongest,
        "target_accuracy": round(best.accuracy, 6),
        "surviving_h2p_paths": best.regimes["h2p"],
        "target_h2p_fraction": round(best.regimes["h2p"] / unique, 6)
        if unique else 0.0,
        "per_baseline_h2p": {label: profiles[label].regimes["h2p"]
                             for label in sorted(profiles)},
    }
