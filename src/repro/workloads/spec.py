"""Workload specification dataclasses.

A :class:`WorkloadSpec` describes a benchmark's static shape (functions,
sites, scope sizes) and behaviour mix; the generator samples concrete
:class:`SiteSpec` instances from it with a seeded RNG, so every build of a
named benchmark is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple


class SiteKind(Enum):
    """Branch-behaviour classes a site can exhibit."""

    BIASED = "biased"          # heavily one-sided, easy for the hybrid
    PATTERN = "pattern"        # periodic in the iteration counter
    LOOP = "loop"              # inner loop, constant or data-driven trip
    DATA = "data"              # predicate on a random-array load (difficult)
    PATHDEP = "pathdep"        # easy on one incoming path, difficult on another
    CORRELATED = "correlated"  # repeats an earlier data branch's comparison
    INDIRECT = "indirect"      # jump table indexed by a random-array load
    STOREDEP = "storedep"      # DATA with in-scope store interference


@dataclass
class SiteSpec:
    """One concrete branch site (sampled from a :class:`WorkloadSpec`)."""

    kind: SiteKind
    index: int
    hops: int = 2                 # taken control transfers producer->consumer
    filler: int = 6               # ALU instructions per hop block
    array_size: int = 4096        # power of two, words
    threshold: int = 50           # predicate constant (values are 0..99)
    stride: int = 1               # index stride through the data array
    phase: int = 0
    pattern_period: int = 64      # PATTERN: period in iterations (power of 2)
    trip_count: int = 4           # LOOP: constant trip count
    data_trip: bool = False       # LOOP: trip count loaded from data
    trip_max: int = 8             # LOOP: data-driven trip in 1..trip_max
    noise_prob: float = 0.3       # probability of a noise branch per hop
    n_targets: int = 4            # INDIRECT: jump table size
    store_period: int = 8         # STOREDEP: store every k-th iteration
    split_threshold: int = 50     # PATHDEP: selector threshold


@dataclass
class WorkloadSpec:
    """Shape and behaviour mix of a synthetic benchmark."""

    name: str
    seed: int = 0
    n_functions: int = 4
    sites_per_function: int = 6
    #: behaviour mix; weights are relative, not required to sum to 1
    mix: Dict[SiteKind, float] = field(default_factory=lambda: {
        SiteKind.BIASED: 3.0,
        SiteKind.PATTERN: 2.0,
        SiteKind.LOOP: 2.0,
        SiteKind.DATA: 2.0,
        SiteKind.PATHDEP: 1.0,
    })
    hop_range: Tuple[int, int] = (1, 4)
    filler_range: Tuple[int, int] = (3, 10)
    array_size: int = 4096
    #: DATA/PATHDEP predicate thresholds are drawn from this range; values
    #: near 50 give ~50% taken rates (maximally difficult).
    threshold_range: Tuple[int, int] = (30, 70)
    bias_threshold_range: Tuple[int, int] = (88, 97)
    pattern_periods: Tuple[int, ...] = (4, 8, 64, 128)
    loop_trip_range: Tuple[int, int] = (3, 8)
    data_trip_fraction: float = 0.5
    noise_prob: float = 0.3
    data_entropy: float = 1.0     # 1.0 = uniform values; <1 skews low
    store_period: int = 8
    #: probability that a hop becomes a call to a shared helper function.
    #: Shared code is what makes spawn points fire on wrong paths (and
    #: the pre-allocation Path_History check earn its keep) — real
    #: programs share library code across many control-flow contexts.
    shared_helper_prob: float = 0.25
    n_shared_helpers: int = 4

    def validate(self) -> None:
        if self.n_functions <= 0 or self.sites_per_function <= 0:
            raise ValueError("need at least one function and one site")
        if not self.mix:
            raise ValueError("empty behaviour mix")
        if any(w < 0 for w in self.mix.values()):
            raise ValueError("mix weights must be non-negative")
        if sum(self.mix.values()) <= 0:
            raise ValueError("mix weights must not all be zero")
        if self.array_size & (self.array_size - 1):
            raise ValueError("array_size must be a power of two")
        for period in self.pattern_periods:
            if period & (period - 1):
                raise ValueError("pattern periods must be powers of two")
