"""The 20-benchmark synthetic suite.

Names match the paper's Tables 1-2 (SPECint95 + SPECint2000).  Each
profile is calibrated to echo the paper's qualitative per-benchmark
character — e.g. ``gcc``/``go`` are branchy with many difficult paths,
``eon_2k``/``vortex`` are well-behaved, ``bzip2_2k``/``vpr_2k`` have very
large path scopes, ``mcf_2k`` is memory-bound (prefetch side-effects),
``perlbmk_2k`` has a tiny difficult-branch execution coverage.

Absolute path counts cannot match the paper (traces are orders of
magnitude shorter); the *shape* across n, T and benchmarks is the target.
"""

from __future__ import annotations

import collections
from typing import Dict, Tuple

from repro.isa.program import Program
from repro.sim.functional import run_program
from repro.sim.trace import Trace
from repro.workloads.generator import generate_program
from repro.workloads.spec import SiteKind, WorkloadSpec

#: Default dynamic instruction budget for suite traces.  Program bodies
#: are ~500-3000 static instructions, so this yields a few hundred
#: main-loop iterations — enough to train predictors and the Path Cache
#: past warm-up (analyses skip a warm-up prefix; see
#: :data:`DEFAULT_WARMUP_FRACTION`).
DEFAULT_TRACE_LENGTH = 400_000

#: Fraction of the trace analyses treat as warm-up by default.
DEFAULT_WARMUP_FRACTION = 0.25

K = SiteKind


def _spec(name, seed, funcs, sites, mix, hop=(1, 4), filler=(3, 10),
          thresholds=(30, 70), entropy=1.0, array=1024, noise=0.3,
          data_trip_fraction=0.5, loop_trips=(3, 8)) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        seed=seed,
        n_functions=funcs,
        sites_per_function=sites,
        mix=mix,
        hop_range=hop,
        filler_range=filler,
        threshold_range=thresholds,
        data_entropy=entropy,
        array_size=array,
        noise_prob=noise,
        data_trip_fraction=data_trip_fraction,
        loop_trip_range=loop_trips,
    )


_SPECS: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    _SPECS[spec.name] = spec


# ---- SPECint95 --------------------------------------------------------------

_register(_spec(
    "comp", 95001, funcs=2, sites=4,
    mix={K.DATA: 3, K.LOOP: 2, K.BIASED: 2, K.PATTERN: 1},
    hop=(1, 3), filler=(4, 10),
))
_register(_spec(
    "gcc", 95002, funcs=8, sites=8,
    mix={K.BIASED: 3, K.PATTERN: 2, K.DATA: 2, K.PATHDEP: 2, K.LOOP: 1,
         K.CORRELATED: 1, K.INDIRECT: 0.5},
    hop=(1, 3), filler=(2, 8),
))
_register(_spec(
    "go", 95003, funcs=7, sites=8,
    mix={K.DATA: 4, K.PATHDEP: 2, K.PATTERN: 2, K.BIASED: 2, K.LOOP: 1},
    hop=(1, 4), filler=(3, 10), thresholds=(40, 60),
))
_register(_spec(
    "ijpeg", 95004, funcs=4, sites=6,
    mix={K.LOOP: 4, K.BIASED: 3, K.DATA: 1.5, K.PATTERN: 1},
    hop=(1, 4), filler=(4, 12), data_trip_fraction=0.3,
))
_register(_spec(
    "li", 95005, funcs=3, sites=5,
    mix={K.BIASED: 3, K.CORRELATED: 2, K.PATTERN: 2, K.DATA: 1, K.PATHDEP: 1},
    hop=(1, 3), filler=(2, 7),
))
_register(_spec(
    "m88ksim", 95006, funcs=4, sites=6,
    mix={K.BIASED: 6, K.PATTERN: 3, K.LOOP: 2, K.DATA: 0.6},
    hop=(1, 3), filler=(3, 8), entropy=0.5,
))
_register(_spec(
    "perl", 95007, funcs=4, sites=7,
    mix={K.BIASED: 4, K.PATHDEP: 3, K.PATTERN: 2, K.CORRELATED: 1,
         K.INDIRECT: 0.7, K.DATA: 0.5},
    hop=(1, 3), filler=(2, 8),
))
_register(_spec(
    "vortex", 95008, funcs=6, sites=7,
    mix={K.BIASED: 8, K.PATTERN: 2, K.LOOP: 1.5, K.DATA: 0.6, K.PATHDEP: 0.5},
    hop=(1, 3), filler=(3, 9), entropy=0.6,
))

# ---- SPECint2000 ------------------------------------------------------------

_register(_spec(
    "bzip2_2k", 20001, funcs=4, sites=5,
    mix={K.DATA: 3, K.LOOP: 2, K.BIASED: 2, K.PATTERN: 1, K.STOREDEP: 1},
    hop=(3, 8), filler=(12, 30), array=8192,
))
_register(_spec(
    "crafty_2k", 20002, funcs=6, sites=7,
    mix={K.BIASED: 3, K.DATA: 2.5, K.PATTERN: 2, K.PATHDEP: 1.5,
         K.LOOP: 1, K.CORRELATED: 1},
    hop=(2, 5), filler=(4, 12),
))
_register(_spec(
    "eon_2k", 20003, funcs=4, sites=6,
    mix={K.BIASED: 8, K.PATTERN: 3, K.LOOP: 2, K.DATA: 0.4},
    hop=(1, 3), filler=(3, 9), entropy=0.45, data_trip_fraction=0.1,
))
_register(_spec(
    "gap_2k", 20004, funcs=5, sites=6,
    mix={K.BIASED: 4, K.LOOP: 2, K.DATA: 1.5, K.PATTERN: 1.5, K.PATHDEP: 1},
    hop=(1, 4), filler=(3, 10),
))
_register(_spec(
    "gcc_2k", 20005, funcs=9, sites=8,
    mix={K.BIASED: 3, K.PATTERN: 2, K.DATA: 2, K.PATHDEP: 2, K.LOOP: 1,
         K.CORRELATED: 1, K.INDIRECT: 0.6},
    hop=(1, 4), filler=(3, 9),
))
_register(_spec(
    "gzip_2k", 20006, funcs=4, sites=5,
    mix={K.DATA: 3, K.BIASED: 2.5, K.LOOP: 2, K.PATTERN: 1},
    hop=(2, 6), filler=(8, 20), array=8192,
))
_register(_spec(
    "mcf_2k", 20007, funcs=3, sites=5,
    mix={K.DATA: 2.5, K.PATHDEP: 2, K.BIASED: 3, K.LOOP: 1, K.PATTERN: 1},
    hop=(1, 3), filler=(3, 9), array=65536,
))
_register(_spec(
    "parser_2k", 20008, funcs=5, sites=7,
    mix={K.BIASED: 3, K.CORRELATED: 2, K.DATA: 2, K.PATTERN: 2,
         K.PATHDEP: 1.5, K.LOOP: 1},
    hop=(1, 4), filler=(3, 10),
))
_register(_spec(
    "perlbmk_2k", 20009, funcs=5, sites=7,
    mix={K.BIASED: 10, K.PATTERN: 2, K.LOOP: 1.5, K.DATA: 0.35},
    hop=(1, 3), filler=(3, 9), entropy=0.4, data_trip_fraction=0.05,
))
_register(_spec(
    "twolf_2k", 20010, funcs=5, sites=6,
    mix={K.DATA: 3, K.BIASED: 3, K.PATTERN: 2, K.PATHDEP: 1.5, K.LOOP: 1},
    hop=(2, 5), filler=(5, 14),
))
_register(_spec(
    "vortex_2k", 20011, funcs=6, sites=7,
    mix={K.BIASED: 7, K.PATTERN: 2, K.LOOP: 1.5, K.DATA: 0.8, K.PATHDEP: 0.5},
    hop=(2, 4), filler=(4, 12), entropy=0.6,
))
_register(_spec(
    "vpr_2k", 20012, funcs=4, sites=5,
    mix={K.DATA: 4, K.PATHDEP: 2, K.LOOP: 1.5, K.BIASED: 1.5, K.STOREDEP: 1},
    hop=(3, 8), filler=(14, 34), array=8192,
))

BENCHMARK_NAMES: Tuple[str, ...] = tuple(_SPECS.keys())

_TRACE_CACHE: "collections.OrderedDict[Tuple[str, int], Trace]" = None
_PROGRAM_CACHE: Dict[str, Program] = {}
#: Traces are tens of MB each; keep only a few resident.
_TRACE_CACHE_MAX = 3


def benchmark_spec(name: str) -> WorkloadSpec:
    """Return the :class:`WorkloadSpec` for a named suite benchmark."""
    if name not in _SPECS:
        raise KeyError(f"unknown benchmark {name!r}; see BENCHMARK_NAMES")
    return _SPECS[name]


def build_benchmark(name: str) -> Program:
    """Generate (and cache) the program for a named benchmark."""
    if name not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[name] = generate_program(benchmark_spec(name))
    return _PROGRAM_CACHE[name]


def benchmark_trace(name: str,
                    max_instructions: int = DEFAULT_TRACE_LENGTH) -> Trace:
    """Run (and LRU-cache) a benchmark's retirement trace."""
    global _TRACE_CACHE
    if _TRACE_CACHE is None:
        _TRACE_CACHE = collections.OrderedDict()
    key = (name, max_instructions)
    if key in _TRACE_CACHE:
        _TRACE_CACHE.move_to_end(key)
        return _TRACE_CACHE[key]
    trace = run_program(build_benchmark(name), max_instructions=max_instructions)
    _TRACE_CACHE[key] = trace
    while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop cached traces and programs (used by tests)."""
    if _TRACE_CACHE is not None:
        _TRACE_CACHE.clear()
    _PROGRAM_CACHE.clear()
