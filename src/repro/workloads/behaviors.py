"""Per-behaviour site emitters.

Each function emits one *site*: (optional) producer code, hop blocks that
separate producer from consumer with taken control transfers, and the
terminating branch.  The emitters tag terminating branches with the
behaviour name so analyses can attribute mispredictions to behaviours.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.workloads.generator import GenContext, R_ITER
from repro.workloads.spec import SiteKind, SiteSpec

#: Instructions per jump-table case block (INDIRECT sites).
CASE_BLOCK_LEN = 4


def emit_site(ctx: GenContext, site: SiteSpec) -> None:
    """Dispatch to the emitter for ``site.kind``."""
    _EMITTERS[site.kind](ctx, site)


def _emit_biased(ctx: GenContext, site: SiteSpec) -> None:
    """Near-always-taken counter-based branch: easy for the hybrid.

    ``v = (iter + phase) & 1023`` compared against a threshold near 1024,
    so the branch goes one way for hundreds of consecutive instances and
    the 2-bit counters stay saturated (~0.5% misprediction).
    """
    b = ctx.builder
    value = ctx.scratch()
    b.emit(Opcode.ADDI, rd=value, rs1=R_ITER, imm=site.phase)
    b.emit(Opcode.ANDI, rd=value, rs1=value, imm=1023)
    ctx.emit_hops(site)
    threshold = 1024 - 8 - (site.phase % 32)
    ctx.emit_consumer(value, threshold, tag=f"biased{site.index}")


def _emit_pattern(ctx: GenContext, site: SiteSpec) -> None:
    """Branch periodic in the iteration counter.

    Small periods are captured by the PAs local history; large periods
    (64, 128) exceed it and become microthread targets that are also
    value-predictable (stride) - prime pruning candidates.
    """
    b = ctx.builder
    phase_reg = ctx.scratch()
    b.emit(Opcode.ANDI, rd=phase_reg, rs1=R_ITER, imm=site.pattern_period - 1)
    ctx.emit_hops(site)
    ctx.emit_consumer(phase_reg, site.pattern_period // 2,
                      tag=f"pattern{site.index}")


def _emit_loop(ctx: GenContext, site: SiteSpec) -> None:
    """Inner loop; the back edge is the terminating branch.

    With ``data_trip`` the trip count comes from a random array, so the
    exit is mispredicted nearly every instance; a microthread can
    pre-compute it (the trip load is in scope), exercising pruning of the
    loop-carried counter chain.
    """
    b = ctx.builder
    counter = ctx.scratch()
    trip = ctx.scratch()
    b.li(counter, 0)
    if site.data_trip:
        idx = ctx.emit_index(site)
        base = ctx.alloc_value_array(site.array_size)
        loaded = ctx.emit_load(base, idx)
        b.emit(Opcode.ANDI, rd=trip, rs1=loaded, imm=site.trip_max - 1)
        b.addi(trip, trip, 1)
    else:
        b.li(trip, site.trip_count)
    head = b.fresh_label()
    b.bind(head)
    ctx.emit_filler(max(2, site.filler // 2))
    b.addi(counter, counter, 1)
    b.branch(Opcode.BLT, counter, trip, head, tag=f"loop{site.index}")


def _emit_data(ctx: GenContext, site: SiteSpec) -> None:
    """Predicate on a uniform-random load: the paper's core target.

    The hardware predictor cannot learn it, but the whole predicate
    data-flow (index, address, load, compare) sits inside the path scope,
    so the Microthread Builder can extract and pre-execute it.
    """
    idx = ctx.emit_index(site)
    base = ctx.alloc_value_array(site.array_size)
    value = ctx.emit_load(base, idx)
    ctx.publish_value(value, site.threshold)
    ctx.emit_hops(site)
    ctx.emit_consumer(value, site.threshold, tag=f"data{site.index}")


def _emit_pathdep(ctx: GenContext, site: SiteSpec) -> None:
    """Easy on one incoming path, difficult on another.

    A selector branch steers to a side that either sets the tested value
    to a constant (easy path, ~75-85% of instances) or loads it from a
    random array (difficult path); both converge on one shared
    terminating branch.  Because the easy path dominates, the branch's
    *aggregate* misprediction rate sits below typical difficulty
    thresholds while the minority path mispredicts heavily — the regime
    that makes *path* classification win over *branch* classification
    (paper §3.2.1).
    """
    b = ctx.builder
    sel_idx = ctx.emit_index(site)
    sel_base = ctx.alloc_value_array(site.array_size)
    selector = ctx.emit_load(sel_base, sel_idx)
    value = ctx.scratch()
    bound = ctx.scratch()
    easy_side = b.fresh_label()
    join = b.fresh_label()
    b.li(bound, site.split_threshold)
    b.branch(Opcode.BLT, selector, bound, easy_side,
             tag=f"pathsel{site.index}")
    # difficult side: value is a fresh random load
    data_base = ctx.alloc_value_array(site.array_size)
    hard_idx = ctx.scratch()
    b.emit(Opcode.XOR, rd=hard_idx, rs1=sel_idx, rs2=selector)
    b.emit(Opcode.ANDI, rd=hard_idx, rs1=hard_idx, imm=site.array_size - 1)
    addr_base = ctx.scratch()
    b.li(addr_base, data_base)
    addr = ctx.scratch()
    b.emit(Opcode.ADD, rd=addr, rs1=addr_base, rs2=hard_idx)
    b.ld(value, addr, 0)
    b.jmp(join)
    # easy side: value is a constant comfortably below the threshold
    b.bind(easy_side)
    b.li(value, max(0, site.threshold - 25))
    b.bind(join)
    ctx.publish_value(value, site.threshold)
    ctx.emit_hops(site)
    ctx.emit_consumer(value, site.threshold, tag=f"pathdep{site.index}")


def _emit_correlated(ctx: GenContext, site: SiteSpec) -> None:
    """Repeats an earlier site's comparison on its published value.

    Global history can exploit the correlation only when the dynamic
    branch distance is short and stable; microthreads just recompute the
    compare from the live-in register.
    """
    published = ctx.pick_published()
    if published is None:
        _emit_pattern(ctx, site)
        return
    reg, threshold = published
    ctx.emit_hops(site)
    ctx.emit_consumer(reg, threshold, tag=f"corr{site.index}")


def _emit_indirect(ctx: GenContext, site: SiteSpec) -> None:
    """Jump table indexed by a random load: indirect difficult branch."""
    b = ctx.builder
    idx = ctx.emit_index(site)
    base = ctx.alloc_value_array(site.array_size)
    value = ctx.emit_load(base, idx)
    way = ctx.scratch()
    b.emit(Opcode.ANDI, rd=way, rs1=value, imm=site.n_targets - 1)
    ctx.emit_hops(site)
    case_labels = [b.fresh_label() for _ in range(site.n_targets)]
    join = b.fresh_label()
    table_base = ctx.scratch()
    b.emit(Opcode.LI, rd=table_base, imm=case_labels[0])
    block_len = ctx.scratch()
    b.li(block_len, CASE_BLOCK_LEN)
    offset = ctx.scratch()
    b.emit(Opcode.MUL, rd=offset, rs1=way, rs2=block_len)
    target = ctx.scratch()
    b.emit(Opcode.ADD, rd=target, rs1=table_base, rs2=offset)
    b.emit(Opcode.JR, rs1=target, tag=f"indirect{site.index}")
    for label in case_labels:
        b.bind(label)
        ctx.emit_filler(CASE_BLOCK_LEN - 1)
        b.jmp(join)
    b.bind(join)


def _emit_storedep(ctx: GenContext, site: SiteSpec) -> None:
    """DATA site whose array is conditionally stored to inside the scope.

    Every ``store_period``-th iteration a store to the loaded address
    precedes the load, exercising the builder's memory-dependence
    speculation and rebuild-on-violation (paper §4.2.4).
    """
    b = ctx.builder
    idx = ctx.emit_index(site)
    base = ctx.alloc_value_array(site.array_size)
    addr = ctx.emit_array_address(base, idx)
    # conditional store: every store_period-th iteration
    gate = ctx.scratch()
    b.emit(Opcode.ANDI, rd=gate, rs1=R_ITER, imm=site.store_period - 1)
    no_store = b.fresh_label()
    b.branch(Opcode.BNE, gate, 0, no_store)
    stored = ctx.scratch()
    b.emit(Opcode.ANDI, rd=stored, rs1=R_ITER, imm=63)
    b.st(stored, addr, 0)
    b.bind(no_store)
    value = ctx.scratch()
    b.ld(value, addr, 0)
    ctx.emit_hops(site)
    ctx.emit_consumer(value, site.threshold, tag=f"storedep{site.index}")


_EMITTERS = {
    SiteKind.BIASED: _emit_biased,
    SiteKind.PATTERN: _emit_pattern,
    SiteKind.LOOP: _emit_loop,
    SiteKind.DATA: _emit_data,
    SiteKind.PATHDEP: _emit_pathdep,
    SiteKind.CORRELATED: _emit_correlated,
    SiteKind.INDIRECT: _emit_indirect,
    SiteKind.STOREDEP: _emit_storedep,
}
