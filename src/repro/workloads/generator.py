"""Program synthesis from a :class:`~repro.workloads.spec.WorkloadSpec`.

The generated program has the shape::

    main:       li   iter, 0
    main_loop:  call f0
                ...
                call f{k-1}
                addi iter, iter, 1
                jmp  main_loop

    f0:         <site> <site> ... ret

Each *site* is a small code region ending in a branch with one of the
behaviours in :class:`~repro.workloads.spec.SiteKind`.  Sites are emitted
by :mod:`repro.workloads.behaviors`.

Register conventions for generated code:

========  =====================================================
``r1``    main-loop iteration counter
``r4-15`` per-site scratch (reset between sites)
``r16-17`` noise-branch scratch (shared)
``r18-19`` filler accumulators (dead values, shared)
``r20-23`` persistent value registers (CORRELATED sites read them)
========  =====================================================
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Tuple

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.workloads.spec import SiteKind, SiteSpec, WorkloadSpec

R_ITER = 1
SCRATCH_FIRST, SCRATCH_LAST = 4, 15
R_NOISE_A, R_NOISE_B = 16, 17
R_FILL_A, R_FILL_B = 18, 19
PERSISTENT_REGS = (20, 21, 22, 23)
R_LOCAL = 24  #: base of the current site's local (high-locality) array
R_SAVED_RA = 25  #: spill slot for ra around nested helper calls

#: Words in each site's local array; small enough to be L1-resident.
LOCAL_ARRAY_WORDS = 128


class GenContext:
    """Carries the builder, RNG and shared state across site emitters."""

    def __init__(self, builder: ProgramBuilder, rng: random.Random,
                 spec: WorkloadSpec):
        self.builder = builder
        self.rng = rng
        self.spec = spec
        self._scratch_next = SCRATCH_FIRST
        self._persist_next = 0
        #: (register, threshold) pairs published by DATA/PATHDEP producers
        self.persistent: List[Tuple[int, int]] = []
        self._fill_state = 0
        self._local_offset = 0
        self._local_allocated = False
        #: labels of shared helper functions callable from hop regions
        self.helper_labels: List[str] = []

    # -- registers ---------------------------------------------------------

    def reset_scratch(self) -> None:
        self._scratch_next = SCRATCH_FIRST

    def begin_site(self) -> None:
        """Per-site setup: fresh scratch pool and a local filler array."""
        self.reset_scratch()
        base = self.builder.alloc(
            LOCAL_ARRAY_WORDS,
            [self.rng.randrange(64) for _ in range(LOCAL_ARRAY_WORDS)],
        )
        self.builder.li(R_LOCAL, base)
        self._local_allocated = True

    def scratch(self) -> int:
        if self._scratch_next > SCRATCH_LAST:
            raise RuntimeError("site ran out of scratch registers")
        reg = self._scratch_next
        self._scratch_next += 1
        return reg

    def publish_value(self, reg_value_source: int, threshold: int) -> None:
        """Copy a produced value into a persistent register for later
        CORRELATED sites."""
        dest = PERSISTENT_REGS[self._persist_next % len(PERSISTENT_REGS)]
        self._persist_next += 1
        self.builder.mov(dest, reg_value_source)
        self.persistent.append((dest, threshold))
        if len(self.persistent) > len(PERSISTENT_REGS):
            del self.persistent[0]

    def pick_published(self) -> Optional[Tuple[int, int]]:
        if not self.persistent:
            return None
        return self.persistent[-1]

    # -- common code fragments ----------------------------------------------

    def emit_filler(self, count: int) -> None:
        """Background work: short independent ALU/load segments.

        Each 8-instruction segment starts with an ``li`` (no inputs), so
        segments do not chain into one serial dependence across the whole
        program — the out-of-order core can overlap them, as it would
        overlap the independent expressions of real integer code.  Roughly
        a quarter of filler instructions are high-locality loads on the
        site's local array, plus occasional stores.
        """
        b = self.builder
        for _ in range(count):
            kind = self._fill_state % 8
            self._fill_state += 1
            if kind == 0:
                b.li(R_FILL_A, 17 + (self._fill_state & 63))
            elif kind == 1:
                b.addi(R_FILL_A, R_FILL_A, 3)
            elif kind in (2, 5) and self._local_allocated:
                self._local_offset = (self._local_offset + 1) % LOCAL_ARRAY_WORDS
                b.ld(R_FILL_B, R_LOCAL, self._local_offset)
            elif kind == 3:
                b.emit(Opcode.ADD, rd=R_FILL_A, rs1=R_FILL_A, rs2=R_FILL_B)
            elif kind == 4:
                b.emit(Opcode.SRLI, rd=R_FILL_A, rs1=R_FILL_A, imm=1)
            elif kind == 6:
                b.emit(Opcode.XOR, rd=R_FILL_A, rs1=R_FILL_A, rs2=R_FILL_B)
            elif kind == 7 and self._local_allocated and self._fill_state % 32 == 7:
                b.st(R_FILL_A, R_LOCAL, (self._local_offset + 11) % LOCAL_ARRAY_WORDS)
            else:
                b.addi(R_FILL_B, R_FILL_A, 5)

    def emit_noise_branch(self) -> None:
        """A short, mostly-predictable branch that adds path diversity."""
        b = self.builder
        period = self.rng.choice((2, 4, 8))
        b.emit(Opcode.ANDI, rd=R_NOISE_A, rs1=R_ITER, imm=period - 1)
        b.li(R_NOISE_B, self.rng.randrange(period))
        skip = b.fresh_label()
        b.branch(Opcode.BNE, R_NOISE_A, R_NOISE_B, skip)
        self.emit_filler(2)
        b.bind(skip)

    def emit_hops(self, site: SiteSpec) -> None:
        """Separate producer from consumer by taken control transfers.

        Some hops become calls into shared helper functions: code reached
        from many different paths, like real programs' library routines.
        Spawn points that land inside helpers fire on every caller's
        path, which is what the pre-allocation Path_History filter and
        the abort mechanism exist to contain (paper §4.3.2).
        """
        b = self.builder
        for _ in range(site.hops):
            self.emit_filler(site.filler)
            if self.rng.random() < site.noise_prob:
                self.emit_noise_branch()
            if (self.helper_labels
                    and self.rng.random() < self.spec.shared_helper_prob):
                from repro.isa.registers import REG_RA

                b.mov(R_SAVED_RA, REG_RA)  # nested call clobbers ra
                b.call(self.rng.choice(self.helper_labels))
                b.mov(REG_RA, R_SAVED_RA)
            else:
                label = b.fresh_label()
                b.jmp(label)
                b.bind(label)

    def emit_index(self, site: SiteSpec) -> int:
        """idx = (iter * stride + phase) & (array_size - 1)"""
        b = self.builder
        idx = self.scratch()
        if site.stride == 1:
            b.mov(idx, R_ITER)
        else:
            stride_reg = self.scratch()
            b.li(stride_reg, site.stride)
            b.emit(Opcode.MUL, rd=idx, rs1=R_ITER, rs2=stride_reg)
        if site.phase:
            b.addi(idx, idx, site.phase)
        b.emit(Opcode.ANDI, rd=idx, rs1=idx, imm=site.array_size - 1)
        return idx

    def emit_array_address(self, base: int, idx_reg: int) -> int:
        b = self.builder
        base_reg = self.scratch()
        b.li(base_reg, base)
        addr = self.scratch()
        b.emit(Opcode.ADD, rd=addr, rs1=base_reg, rs2=idx_reg)
        return addr

    def emit_load(self, base: int, idx_reg: int) -> int:
        addr = self.emit_array_address(base, idx_reg)
        value = self.scratch()
        self.builder.ld(value, addr, 0)
        return value

    def alloc_value_array(self, size: int) -> int:
        """Array of pseudo-random values in [0, 100), skewed by entropy."""
        entropy = max(self.spec.data_entropy, 1e-3)
        values = [
            min(99, int(100.0 * (self.rng.random() ** (1.0 / entropy))))
            for _ in range(size)
        ]
        return self.builder.alloc(size, values)

    def emit_consumer(self, value_reg: int, threshold: int, tag: str) -> None:
        """The site's terminating conditional branch: taken iff v < K."""
        b = self.builder
        bound = self.scratch()
        b.li(bound, threshold)
        taken_side = b.fresh_label()
        join = b.fresh_label()
        b.branch(Opcode.BLT, value_reg, bound, taken_side, tag=tag)
        self.emit_filler(2)
        b.jmp(join)
        b.bind(taken_side)
        self.emit_filler(2)
        b.bind(join)


def _sample_site(spec: WorkloadSpec, rng: random.Random, index: int) -> SiteSpec:
    kinds = list(spec.mix.keys())
    weights = [spec.mix[k] for k in kinds]
    kind = rng.choices(kinds, weights=weights, k=1)[0]
    site = SiteSpec(
        kind=kind,
        index=index,
        hops=rng.randint(*spec.hop_range),
        filler=rng.randint(*spec.filler_range),
        array_size=spec.array_size,
        threshold=rng.randint(*spec.threshold_range),
        stride=rng.choice((1, 1, 3, 5)),
        phase=rng.randrange(64),
        pattern_period=rng.choice(spec.pattern_periods),
        trip_count=rng.randint(*spec.loop_trip_range),
        data_trip=rng.random() < spec.data_trip_fraction,
        trip_max=max(2, spec.loop_trip_range[1]),
        noise_prob=spec.noise_prob,
        store_period=spec.store_period,
        split_threshold=rng.randint(75, 88),
    )
    if kind == SiteKind.BIASED:
        site.threshold = rng.randint(*spec.bias_threshold_range)
    return site


def generate_program(spec: WorkloadSpec) -> Program:
    """Synthesize the benchmark program described by ``spec``."""
    from repro.workloads import behaviors

    spec.validate()
    seed = spec.seed ^ zlib.crc32(spec.name.encode())
    rng = random.Random(seed)
    builder = ProgramBuilder(name=spec.name)
    ctx = GenContext(builder, rng, spec)

    function_labels = [f"f{i}" for i in range(spec.n_functions)]

    # main
    builder.label("main")
    builder.li(R_ITER, 0)
    builder.li(R_FILL_A, 1)
    builder.li(R_FILL_B, 2)
    builder.label("main_loop")
    for label in function_labels:
        builder.call(label)
    builder.addi(R_ITER, R_ITER, 1)
    builder.jmp("main_loop")

    # shared helper functions (callable from any site's hop region)
    helper_labels = [f"lib{i}" for i in range(spec.n_shared_helpers)]
    ctx.helper_labels = helper_labels

    # functions
    site_index = 0
    for label in function_labels:
        builder.label(label)
        for _ in range(spec.sites_per_function):
            site = _sample_site(spec, rng, site_index)
            site_index += 1
            ctx.begin_site()
            behaviors.emit_site(ctx, site)
        builder.ret()

    # helper bodies: shared background work reached from many paths
    for label in helper_labels:
        builder.label(label)
        ctx.begin_site()
        ctx.emit_filler(rng.randint(4, 10))
        builder.ret()

    return builder.build(entry=0)
