"""Synthetic workload suite.

The paper evaluates on SPECint95 + SPECint2000 compiled for Alpha EV6.
Those binaries (and a machine to trace them) are not available here, so
this package synthesizes programs whose *dynamic control-flow and
data-flow structure* reproduces the regimes the mechanism cares about:

* easy (biased / short-pattern) branches,
* loop-exit branches with constant and data-dependent trip counts,
* data-dependent branches whose predicate is pre-computable from loads
  inside the path scope (the microthread target of the paper),
* branches that are easy on some control-flow paths and difficult on
  others (the paper's motivation for *path*-based classification),
* long-range correlated branches,
* indirect jumps through data-dependent jump tables, and
* in-scope store/load interference that exercises the builder's memory
  dependence speculation.

Twenty named benchmarks (same names as the paper's Tables 1-2) are
defined in :mod:`repro.workloads.suite` with per-benchmark behaviour
mixes, scope sizes and data entropy.
"""

from repro.workloads.spec import SiteKind, SiteSpec, WorkloadSpec
from repro.workloads.generator import GenContext, generate_program
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    benchmark_spec,
    build_benchmark,
    benchmark_trace,
    clear_trace_cache,
)
from repro.workloads.kernels import KERNEL_NAMES, build_kernel

__all__ = [
    "SiteKind",
    "SiteSpec",
    "WorkloadSpec",
    "GenContext",
    "generate_program",
    "BENCHMARK_NAMES",
    "benchmark_spec",
    "build_benchmark",
    "benchmark_trace",
    "clear_trace_cache",
    "KERNEL_NAMES",
    "build_kernel",
]
