"""Hand-written assembly kernels.

The synthetic suite drives the headline experiments; these kernels are
small *real* programs — pointer chasing, binary search, bytecode
dispatch, partitioning, a table-driven state machine — whose difficult
branches arise the way they do in real integer code.  They complement
the generator in tests and examples, and give users templates for
writing their own workloads against the public API.

All kernels loop until the simulator's instruction budget expires, like
the suite benchmarks.  Data is generated with a fixed seed so runs are
deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from repro.isa.assembler import assemble
from repro.isa.program import Program

_SEED = 20020525  # ISCA 2002


def _values(count: int, bound: int, seed_offset: int = 0) -> str:
    rng = random.Random(_SEED + seed_offset)
    return " ".join(str(rng.randrange(bound)) for _ in range(count))


def linked_list(nodes: int = 256) -> Program:
    """Pointer-chase a shuffled singly linked list, branching on values.

    Each node is two words: ``[value, next_pointer]``.  The traversal
    order is a random permutation, so node loads miss caches and the
    value test is data-dependent — the mcf-like regime where microthread
    prefetching helps beyond branch prediction.
    """
    rng = random.Random(_SEED)
    order = list(range(nodes))
    rng.shuffle(order)
    base_hint = 0x10000  # data segment base (first .data allocation)
    cells = []
    for i in range(nodes):
        position = order.index(i)
        successor = order[(position + 1) % nodes]
        cells += [rng.randrange(100), base_hint + 2 * successor]
    data = " ".join(str(v) for v in cells)
    head = base_hint + 2 * order[0]
    return assemble(f"""
    .data list {2 * nodes} {data}
        li r1, 0
    outer:
        li r2, {head}
        li r3, 0
        li r4, {nodes}
    walk:
        ld r5, 0(r2)        ; node value
        slli r8, r1, 1      ; mix in the lap counter so the test does not
        addi r8, r8, 1      ; repeat with the list's period
        mul r5, r5, r8
        andi r5, r5, 127
        li r6, 64
        blt r5, r6, small
        addi r3, r3, 1
    small:
        ld r2, 1(r2)        ; follow next pointer
        addi r4, r4, -1
        li r7, 0
        blt r7, r4, walk
        addi r1, r1, 1
        jmp outer
    """, name="linked_list")


def binary_search(size_log2: int = 10, queries: int = 64) -> Program:
    """Binary search with pseudo-random keys.

    Every probe's direction branch is a fresh data-dependent comparison;
    the whole probe chain is in the search loop's scope, so microthreads
    can run ahead down the tree.
    """
    size = 1 << size_log2
    sorted_values = " ".join(str(2 * i + 1) for i in range(size))
    keys = _values(queries, 2 * size, seed_offset=1)
    return assemble(f"""
    .data table {size} {sorted_values}
    .data keys {queries} {keys}
        li r1, 0
    outer:
        andi r2, r1, {queries - 1}
        li r3, &keys
        add r3, r3, r2
        ld r4, 0(r3)        ; the key to find
        li r5, 0            ; lo
        li r6, {size}       ; hi
    probe:
        add r7, r5, r6
        srli r7, r7, 1      ; mid
        li r8, &table
        add r8, r8, r7
        ld r9, 0(r8)
        blt r4, r9, go_left ; data-dependent direction
        addi r5, r7, 1
        jmp check
    go_left:
        mov r6, r7
    check:
        blt r5, r6, probe
        addi r1, r1, 1
        jmp outer
    """, name="binary_search")


def interpreter(program_len: int = 4096) -> Program:
    """A bytecode interpreter: the classic indirect-branch workload.

    Four opcodes dispatched through a jump table.  The virtual PC walks
    the bytecode in LCG order (period ~2^61), so dispatch contexts do
    not repeat within the predictor's reach and the target cache cannot
    memorise the sequence — while a microthread can still pre-compute
    the exact target from the LCG register chain and the bytecode load.
    """
    bytecode = _values(program_len, 4, seed_offset=2)
    return assemble(f"""
    .data bytecode {program_len} {bytecode}
        li r1, 0            ; retired-op counter
        li r10, 0           ; accumulator
        li r11, 12345       ; LCG state (the VM's 'input stream')
    fetch:
        li r12, 1103515245
        mul r11, r11, r12
        addi r11, r11, 12345
        srli r2, r11, 8
        andi r2, r2, {program_len - 1}
        li r3, &bytecode
        add r3, r3, r2
        ld r4, 0(r3)        ; opcode 0..3
        li r5, op0
        li r6, 3            ; each op block is 3 instructions
        mul r7, r4, r6
        add r5, r5, r7
        jr r5               ; dispatch (indirect)
    op0:
        addi r10, r10, 7
        addi r1, r1, 1
        jmp fetch
    op1:
        addi r10, r10, -3
        addi r1, r1, 1
        jmp fetch
    op2:
        slli r10, r10, 1
        addi r1, r1, 1
        jmp fetch
    op3:
        xori r10, r10, 21
        addi r1, r1, 1
        jmp fetch
    """, name="interpreter")


def partition(size: int = 512) -> Program:
    """Quicksort-style partition pass: ~50% taken comparison branches.

    Each outer iteration re-partitions the array around a moving pivot;
    the comparison branch is the difficult one.
    """
    values = _values(size, 1000, seed_offset=3)
    return assemble(f"""
    .data arr {size} {values}
        li r1, 0
    outer:
        andi r9, r1, 255
        li r10, 997
        mul r9, r9, r10
        andi r9, r9, 1023   ; pivot in 0..1023
        li r2, 0            ; index
        li r3, 0            ; count below pivot
    scan:
        li r4, &arr
        add r4, r4, r2
        ld r5, 0(r4)
        bge r5, r9, keep    ; ~50/50 comparison
        addi r3, r3, 1
        st r5, 0(r4)
    keep:
        addi r2, r2, 1
        li r6, {size}
        blt r2, r6, scan
        addi r1, r1, 1
        jmp outer
    """, name="partition")


def state_machine(n_states: int = 8, stream_len: int = 512) -> Program:
    """Table-driven finite state machine over a random input stream.

    The accept/reject branch depends on the current state, which depends
    on the whole input history — hard for history predictors, exactly
    computable from the transition-table loads.
    """
    rng = random.Random(_SEED + 4)
    table = " ".join(
        str(rng.randrange(n_states))
        for _ in range(n_states * 2)
    )
    stream = _values(stream_len, 2, seed_offset=5)
    return assemble(f"""
    .data transitions {n_states * 2} {table}
    .data stream {stream_len} {stream}
        li r1, 0            ; stream position
        li r2, 0            ; state
    step:
        andi r3, r1, {stream_len - 1}
        li r4, &stream
        add r4, r4, r3
        ld r5, 0(r4)        ; input bit
        slli r6, r2, 1
        add r6, r6, r5
        li r7, &transitions
        add r7, r7, r6
        ld r2, 0(r7)        ; next state
        li r8, {n_states // 2}
        blt r2, r8, low_state  ; difficult: state-dependent
        addi r9, r9, 1
    low_state:
        addi r1, r1, 1
        jmp step
    """, name="state_machine")


def histogram(buckets: int = 16, size: int = 1024) -> Program:
    """Bucketed histogram: store-heavy with data-dependent store targets.

    Exercises store/load interplay in the PRB and the timing model's
    memory dependence handling.
    """
    values = _values(size, buckets * 8, seed_offset=6)
    return assemble(f"""
    .data samples {size} {values}
    .data counts {buckets}
        li r1, 0
    outer:
        andi r2, r1, {size - 1}
        li r3, &samples
        add r3, r3, r2
        ld r4, 0(r3)
        srli r5, r4, 3      ; bucket = sample / 8
        li r6, &counts
        add r6, r6, r5
        ld r7, 0(r6)
        addi r7, r7, 1
        st r7, 0(r6)        ; read-modify-write
        li r8, 64
        blt r4, r8, lowhalf ; data-dependent
        addi r9, r9, 1
    lowhalf:
        addi r1, r1, 1
        jmp outer
    """, name="histogram")


def crc(size: int = 1024) -> Program:
    """Bitwise CRC over a message buffer.

    The inner per-bit branch tests the running remainder's top bit —
    a value that depends on the entire message prefix.  History
    predictors see near-random outcomes; a microthread pre-computes the
    next bit test from the remainder register live-in.
    """
    message = _values(size, 256, seed_offset=7)
    return assemble(f"""
    .data msg {size} {message}
        li r1, 0            ; message index
        li r10, 65535       ; running remainder (16-bit)
    outer:
        andi r2, r1, {size - 1}
        li r3, &msg
        add r3, r3, r2
        ld r4, 0(r3)        ; next byte
        xor r10, r10, r4
        li r5, 0            ; bit counter
    bitloop:
        andi r6, r10, 1
        li r7, 0
        beq r6, r7, even    ; the data-dependent branch
        srli r10, r10, 1
        li r8, 40961        ; 0xA001, reflected CRC-16 polynomial
        xor r10, r10, r8
        jmp next
    even:
        srli r10, r10, 1
    next:
        addi r5, r5, 1
        li r9, 8
        blt r5, r9, bitloop
        addi r1, r1, 1
        jmp outer
    """, name="crc")


def string_search(text_len: int = 2048, pattern_len: int = 4) -> Program:
    """Naive substring search: mismatch branches fire at data-dependent
    offsets, and the outer/inner loop structure creates rich paths."""
    rng = random.Random(_SEED + 8)
    alphabet = 4
    text = [rng.randrange(alphabet) for _ in range(text_len)]
    pattern = [rng.randrange(alphabet) for _ in range(pattern_len)]
    return assemble(f"""
    .data text {text_len} {' '.join(str(v) for v in text)}
    .data pattern {pattern_len} {' '.join(str(v) for v in pattern)}
        li r1, 0            ; search position
        li r11, 0           ; match counter
    outer:
        andi r2, r1, {text_len - pattern_len - 1}
        li r3, 0            ; offset into pattern
    compare:
        li r4, &text
        add r4, r4, r2
        add r4, r4, r3
        ld r5, 0(r4)
        li r6, &pattern
        add r6, r6, r3
        ld r7, 0(r6)
        bne r5, r7, mismatch   ; data-dependent mismatch point
        addi r3, r3, 1
        li r8, {pattern_len}
        blt r3, r8, compare
        addi r11, r11, 1       ; full match
    mismatch:
        addi r1, r1, 1
        jmp outer
    """, name="string_search")


KERNELS: Dict[str, Callable[[], Program]] = {
    "linked_list": linked_list,
    "binary_search": binary_search,
    "interpreter": interpreter,
    "partition": partition,
    "state_machine": state_machine,
    "histogram": histogram,
    "crc": crc,
    "string_search": string_search,
}

KERNEL_NAMES: Tuple[str, ...] = tuple(KERNELS)


def build_kernel(name: str) -> Program:
    """Build a named kernel program."""
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; see KERNEL_NAMES")
    return KERNELS[name]()
