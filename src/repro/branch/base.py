"""Direction-predictor interface and shared counter-table machinery."""

from __future__ import annotations

from array import array


def _check_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


class SaturatingCounterTable:
    """A table of n-bit saturating up/down counters.

    Counters start at the weak boundary between taken and not-taken
    (``2**(bits-1)``), i.e. weakly taken.

    The counters live in a flat :class:`array.array` of machine integers
    — one contiguous buffer instead of a Python list of boxed ints.  A
    128K-entry gshare table drops from ~1 MB of pointers (plus shared
    int objects) to 128 KB of bytes, and indexing avoids the per-element
    object dereference on the predict/update hot path.  Counter values
    up to 7 bits fit the signed-byte typecode; wider counters (never
    used by the paper's configurations, but supported) fall back to
    8-byte elements.
    """

    def __init__(self, entries: int, bits: int = 2):
        _check_power_of_two(entries, "entries")
        if bits < 1:
            raise ValueError("counter width must be >= 1")
        self.entries = entries
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        self.mask = entries - 1
        typecode = "b" if bits <= 7 else "q"
        self.table = array(typecode, [self.threshold]) * entries

    def predict(self, index: int) -> bool:
        return self.table[index & self.mask] >= self.threshold

    def counter(self, index: int) -> int:
        return self.table[index & self.mask]

    def update(self, index: int, taken: bool) -> None:
        index &= self.mask
        table = self.table
        value = table[index]
        if taken:
            if value < self.max_value:
                table[index] = value + 1
        elif value > 0:
            table[index] = value - 1


class DirectionPredictor:
    """Interface for conditional-branch direction predictors."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused predict-then-train for the one-query-per-retire hot path.

        Must be bit-identical (prediction *and* internal state) to
        ``predict(pc)`` followed by ``update(pc, taken)``; subclasses
        override it only to avoid recomputing shared table indices.
        ``tests/test_perf.py`` property-checks the equivalence.
        """
        prediction = self.predict(pc)
        self.update(pc, taken)
        return prediction


class AlwaysTakenPredictor(DirectionPredictor):
    """Degenerate predictor used in tests and as an overhead floor."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class OraclePredictor(DirectionPredictor):
    """Perfect direction prediction (used for the intro's 2x headroom claim).

    The caller primes the next outcome before asking for a prediction;
    :class:`~repro.branch.unit.BranchPredictorComplex` does this when
    constructed in oracle mode.
    """

    def __init__(self):
        self._next_outcome = False

    def prime(self, taken: bool) -> None:
        self._next_outcome = taken

    def predict(self, pc: int) -> bool:
        return self._next_outcome

    def update(self, pc: int, taken: bool) -> None:
        pass
