"""Branch target buffer.

Caches the taken-path target of direct control transfers so the front-end
can redirect fetch without decoding the instruction.  The paper's baseline
has a 4K-entry BTB; a taken branch that misses the BTB costs a small
decode-redirect bubble in the timing model.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.base import _check_power_of_two


class BranchTargetBuffer:
    """Direct-mapped, tagged target buffer."""

    def __init__(self, entries: int = 4096):
        _check_power_of_two(entries, "entries")
        self.entries = entries
        self.mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc``, or ``None`` on a miss."""
        slot = pc & self.mask
        if self._tags[slot] == pc:
            self.hits += 1
            return self._targets[slot]
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        slot = pc & self.mask
        self._tags[slot] = pc
        self._targets[slot] = target
