"""The full front-end branch prediction complex.

Bundles the direction hybrid, BTB, return address stack and indirect
target cache behind one ``process()`` call per dynamic control transfer,
used both by the timing model and by the difficult-path profiler.

``process`` performs predict-then-update in retirement order, which for a
trace-driven model is equivalent to an in-order machine with retire-time
predictor training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.branch.base import DirectionPredictor, OraclePredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.hybrid import HybridPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.target_cache import TargetCache
from repro.isa.instructions import Opcode
from repro.sim.trace import DynamicInstruction


@dataclass
class BranchOutcome:
    """Result of predicting one dynamic control transfer."""

    predicted_taken: bool
    predicted_target: int
    actual_taken: bool
    actual_target: int
    mispredicted: bool
    btb_miss: bool = False

    @property
    def correct(self) -> bool:
        return not self.mispredicted


class BranchPredictorComplex:
    """Direction + target prediction for every control-transfer kind."""

    def __init__(
        self,
        direction: Optional[DirectionPredictor] = None,
        btb: Optional[BranchTargetBuffer] = None,
        ras: Optional[ReturnAddressStack] = None,
        target_cache: Optional[TargetCache] = None,
    ):
        self.direction = direction if direction is not None else HybridPredictor()
        self.btb = btb if btb is not None else BranchTargetBuffer()
        self.ras = ras if ras is not None else ReturnAddressStack()
        self.target_cache = target_cache if target_cache is not None else TargetCache()
        self._oracle = isinstance(self.direction, OraclePredictor)
        # Statistics
        self.conditional_count = 0
        self.conditional_mispredicts = 0
        self.indirect_count = 0
        self.indirect_mispredicts = 0
        self.return_count = 0
        self.return_mispredicts = 0
        self.unconditional_count = 0

    # -- main entry point -------------------------------------------------

    def process(self, rec: DynamicInstruction) -> BranchOutcome:
        """Predict ``rec``, then train on its actual outcome."""
        op = rec.opcode
        if rec.inst.is_conditional_branch:
            return self._process_conditional(rec)
        if op == Opcode.JMP:
            return self._process_direct(rec, push_ras=False)
        if op == Opcode.CALL:
            return self._process_direct(rec, push_ras=True)
        if op == Opcode.RET:
            return self._process_return(rec)
        if op == Opcode.JR:
            return self._process_indirect(rec)
        raise ValueError(f"not a control transfer: {rec!r}")

    # -- per-kind handling -------------------------------------------------

    def _process_conditional(self, rec: DynamicInstruction) -> BranchOutcome:
        self.conditional_count += 1
        pc = rec.pc
        if self._oracle:
            self.direction.prime(rec.taken)
        # Fused predict+train: the direction predictor trains on the
        # retiring outcome either way, and it shares no state with the
        # BTB, so folding the update into the predict call (one index
        # computation instead of two) is observationally identical.
        predicted_taken = self.direction.predict_and_update(pc, rec.taken)
        btb_miss = False
        if predicted_taken:
            predicted_target = self.btb.lookup(pc)
            if predicted_target is None:
                # Target recovered at decode from the instruction word.
                predicted_target = rec.inst.target
                btb_miss = True
        else:
            predicted_target = pc + 1
        mispredicted = predicted_taken != rec.taken
        if mispredicted:
            self.conditional_mispredicts += 1
        if rec.taken:
            self.btb.update(pc, rec.next_pc)
        return BranchOutcome(
            predicted_taken, predicted_target, rec.taken, rec.next_pc,
            mispredicted, btb_miss,
        )

    def _process_direct(self, rec: DynamicInstruction, push_ras: bool) -> BranchOutcome:
        self.unconditional_count += 1
        predicted_target = self.btb.lookup(rec.pc)
        btb_miss = predicted_target is None
        if btb_miss:
            predicted_target = rec.next_pc
        self.btb.update(rec.pc, rec.next_pc)
        if push_ras:
            self.ras.push(rec.pc + 1)
        return BranchOutcome(True, predicted_target, True, rec.next_pc,
                             mispredicted=False, btb_miss=btb_miss)

    def _process_return(self, rec: DynamicInstruction) -> BranchOutcome:
        self.return_count += 1
        predicted_target = self.ras.pop()
        # The cache trains on every return; its prediction only matters
        # on a RAS underflow (the lookup reads pre-update state, so
        # always fusing is state-identical to the predict-on-miss form).
        cached = self.target_cache.predict_and_update(rec.pc, rec.next_pc)
        if predicted_target is None:
            predicted_target = cached
        mispredicted = predicted_target != rec.next_pc
        if mispredicted:
            self.return_mispredicts += 1
        return BranchOutcome(True, predicted_target, True, rec.next_pc, mispredicted)

    def _process_indirect(self, rec: DynamicInstruction) -> BranchOutcome:
        self.indirect_count += 1
        cached = self.target_cache.predict_and_update(rec.pc, rec.next_pc)
        predicted_target = rec.next_pc if self._oracle else cached
        mispredicted = predicted_target != rec.next_pc
        if mispredicted:
            self.indirect_mispredicts += 1
        return BranchOutcome(True, predicted_target, True, rec.next_pc, mispredicted)

    # -- reporting ----------------------------------------------------------

    @property
    def total_predicted(self) -> int:
        return (self.conditional_count + self.indirect_count
                + self.return_count + self.unconditional_count)

    @property
    def total_mispredicts(self) -> int:
        return (self.conditional_mispredicts + self.indirect_mispredicts
                + self.return_mispredicts)

    def accuracy(self) -> float:
        """Direction accuracy over conditional branches."""
        if self.conditional_count == 0:
            return 1.0
        return 1.0 - self.conditional_mispredicts / self.conditional_count

    def as_dict(self) -> dict:
        """Predictor counters (telemetry collector surface)."""
        return {
            "conditional_count": self.conditional_count,
            "conditional_mispredicts": self.conditional_mispredicts,
            "indirect_count": self.indirect_count,
            "indirect_mispredicts": self.indirect_mispredicts,
            "return_count": self.return_count,
            "return_mispredicts": self.return_mispredicts,
            "unconditional_count": self.unconditional_count,
            "total_predicted": self.total_predicted,
            "total_mispredicts": self.total_mispredicts,
            "accuracy": round(self.accuracy(), 6),
        }


def default_complex() -> BranchPredictorComplex:
    """The paper's Table 3 baseline predictor complex."""
    return BranchPredictorComplex()


def oracle_complex() -> BranchPredictorComplex:
    """Perfect direction and indirect-target prediction."""
    return BranchPredictorComplex(direction=OraclePredictor())
