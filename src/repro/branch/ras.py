"""Return address stack (32 entries in the paper's baseline).

Pushed by calls, popped by returns.  On overflow the oldest entry is
dropped (circular); on underflow the prediction is a miss.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Circular call/return stack."""

    def __init__(self, entries: int = 32):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._stack: List[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        if len(self._stack) == self.entries:
            del self._stack[0]
            self.overflows += 1
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        """Pop and return the predicted return address (None if empty)."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
