"""gshare/PAs hybrid with a selector (the paper's baseline direction
predictor: "128K-entry gshare/PAs hybrid with 64K-entry hybrid selector").

The selector is a table of 2-bit counters indexed by PC xor global
history; high counter values favour the gshare component.  Both
components always train; the selector trains only when they disagree.
"""

from __future__ import annotations

from repro.branch.base import DirectionPredictor, SaturatingCounterTable
from repro.branch.gshare import GsharePredictor
from repro.branch.pas import PAsPredictor


class HybridPredictor(DirectionPredictor):
    """McFarling-style combining predictor over gshare and PAs."""

    def __init__(
        self,
        gshare: GsharePredictor = None,
        pas: PAsPredictor = None,
        selector_entries: int = 64 * 1024,
    ):
        self.gshare = gshare if gshare is not None else GsharePredictor()
        self.pas = pas if pas is not None else PAsPredictor()
        self.selector = SaturatingCounterTable(selector_entries)
        self.used_gshare_count = 0
        self.used_pas_count = 0

    def _selector_index(self, pc: int) -> int:
        # PC-indexed (not history-hashed) so per-branch component choice
        # converges quickly; the paper only fixes the selector's size.
        return pc & self.selector.mask

    def predict(self, pc: int) -> bool:
        gshare_pred = self.gshare.predict(pc)
        pas_pred = self.pas.predict(pc)
        if self.selector.predict(self._selector_index(pc)):
            self.used_gshare_count += 1
            return gshare_pred
        self.used_pas_count += 1
        return pas_pred

    def update(self, pc: int, taken: bool) -> None:
        gshare_pred = self.gshare.predict(pc)
        pas_pred = self.pas.predict(pc)
        if gshare_pred != pas_pred:
            # Train the selector toward whichever component was right.
            self.selector.update(self._selector_index(pc), gshare_pred == taken)
        self.gshare.update(pc, taken)
        self.pas.update(pc, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused predict+train for the once-per-branch hot path.

        The split ``predict``/``update`` pair computes each component's
        table index and prediction twice (``update`` re-predicts both
        components to train the selector).  Both components' state only
        changes after all reads, so computing everything once is
        bit-identical — prediction, component/selector state and the
        ``used_*`` counters all match the split sequence.
        """
        gshare = self.gshare
        pas = self.pas
        g_table = gshare.table
        g_index = (pc ^ gshare.history) & g_table.mask
        gshare_pred = g_table.predict(g_index)
        p_pht = pas.pht
        p_index = pas._pht_index(pc)
        pas_pred = p_pht.predict(p_index)
        selector_index = pc & self.selector.mask
        if self.selector.predict(selector_index):
            self.used_gshare_count += 1
            prediction = gshare_pred
        else:
            self.used_pas_count += 1
            prediction = pas_pred
        if gshare_pred != pas_pred:
            self.selector.update(selector_index, gshare_pred == taken)
        g_table.update(g_index, taken)
        gshare.history = ((gshare.history << 1) | (1 if taken else 0)) \
            & gshare.history_mask
        p_pht.update(p_index, taken)
        slot = pc & (pas.history_entries - 1)
        pas.bht[slot] = ((pas.bht[slot] << 1) | (1 if taken else 0)) \
            & pas.history_mask
        return prediction
