"""JRS branch-confidence estimation (Jacobsen, Rotenberg & Smith, 1996).

The paper's difficult-path idea builds on path-based confidence work
(its reference [10]): "Path-based confidence mechanisms have demonstrated
that the predictability of a branch is correlated to the control-flow
path leading up to it."  This module provides the classic estimator —
a table of *miss distance counters* (resetting counters that count
correct predictions since the last mispredict) — both PC-indexed and
path-indexed, so analyses can compare confidence-based difficulty
classification against the Path Cache's misprediction-rate intervals.
"""

from __future__ import annotations

from typing import List

from repro.branch.base import _check_power_of_two


class ConfidenceEstimator:
    """Miss distance counters: high count == high confidence.

    ``update(index, correct)`` increments (saturating) on a correct
    prediction and resets to zero on a mispredict.  A branch instance is
    *high confidence* when its counter is at or above ``threshold``.
    """

    def __init__(self, entries: int = 4096, max_count: int = 15,
                 threshold: int = 8):
        _check_power_of_two(entries, "entries")
        if not 0 < threshold <= max_count:
            raise ValueError("need 0 < threshold <= max_count")
        self.entries = entries
        self.mask = entries - 1
        self.max_count = max_count
        self.threshold = threshold
        self._counters: List[int] = [0] * entries
        self.high_confidence_queries = 0
        self.low_confidence_queries = 0

    def is_confident(self, index: int) -> bool:
        confident = self._counters[index & self.mask] >= self.threshold
        if confident:
            self.high_confidence_queries += 1
        else:
            self.low_confidence_queries += 1
        return confident

    def counter(self, index: int) -> int:
        return self._counters[index & self.mask]

    def update(self, index: int, correct: bool) -> None:
        slot = index & self.mask
        if correct:
            if self._counters[slot] < self.max_count:
                self._counters[slot] += 1
        else:
            self._counters[slot] = 0

    @property
    def low_confidence_fraction(self) -> float:
        total = self.high_confidence_queries + self.low_confidence_queries
        return self.low_confidence_queries / total if total else 0.0

    def as_dict(self) -> dict:
        """Query counters (telemetry collector surface)."""
        return {
            "high_confidence_queries": self.high_confidence_queries,
            "low_confidence_queries": self.low_confidence_queries,
            "low_confidence_fraction": round(
                self.low_confidence_fraction, 6),
        }
