"""Target cache for indirect branches (64K entries in the baseline).

A tagless table indexed by PC xor global history holding the last
observed target for that (branch, history) context — the classic
Chang/Hao/Patt target cache.
"""

from __future__ import annotations

from typing import List

from repro.branch.base import _check_power_of_two


class TargetCache:
    """History-indexed last-target predictor for indirect branches."""

    def __init__(self, entries: int = 64 * 1024, history_bits: int = 16):
        _check_power_of_two(entries, "entries")
        self.entries = entries
        self.mask = entries - 1
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        self._targets: List[int] = [0] * entries

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.mask

    def predict(self, pc: int) -> int:
        return self._targets[self._index(pc)]

    def update(self, pc: int, target: int) -> None:
        self._targets[self._index(pc)] = target
        # Fold target bits into the path history so successive indirect
        # branches see distinct contexts.
        self.history = ((self.history << 2) ^ target) & self.history_mask

    def predict_and_update(self, pc: int, target: int) -> int:
        """Fused lookup + train: one index computation per retired
        branch.  Bit-identical to predict() followed by update() — the
        lookup reads pre-update state, and the history fold happens
        after both sides of the shared index are consumed."""
        index = (pc ^ self.history) & self.mask
        targets = self._targets
        predicted = targets[index]
        targets[index] = target
        self.history = ((self.history << 2) ^ target) & self.history_mask
        return predicted
