"""Bimodal (per-PC two-bit counter) predictor.

Not part of the paper's baseline, but used in tests and as an ablation
point for the predictor complex.
"""

from __future__ import annotations

from repro.branch.base import DirectionPredictor, SaturatingCounterTable


class BimodalPredictor(DirectionPredictor):
    """Classic Smith predictor: a PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2):
        self.table = SaturatingCounterTable(entries, counter_bits)

    def predict(self, pc: int) -> bool:
        return self.table.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(pc, taken)
