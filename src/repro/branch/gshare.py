"""gshare global-history predictor (McFarling).

The pattern history table is indexed by the XOR of the branch PC and the
global branch-history register.  The paper's baseline uses a 128K-entry
gshare component inside the hybrid.
"""

from __future__ import annotations

from repro.branch.base import DirectionPredictor, SaturatingCounterTable


class GsharePredictor(DirectionPredictor):
    """PC xor global-history indexed table of saturating counters."""

    def __init__(self, entries: int = 128 * 1024, history_bits: int = 17,
                 counter_bits: int = 2):
        self.table = SaturatingCounterTable(entries, counter_bits)
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.table.mask

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused path: computes the PC^history index once instead of
        twice (prediction and state bit-identical to predict+update)."""
        table = self.table
        index = (pc ^ self.history) & table.mask
        prediction = table.predict(index)
        table.update(index, taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask
        return prediction
