"""Bullseye-style hard-to-predict (H2P) side-table overlay.

Gupta et al.'s Bullseye observes that a handful of static branches —
the H2Ps of Lin & Tarsa's taxonomy — concentrate most of the remaining
mispredictions of a strong base predictor, and that dedicating small
per-branch side tables to exactly those branches beats growing the base.
This module is the "lite" version of that idea, layerable over *any*
registered base predictor:

* an identification stage counts, per static branch, how often the
  **base** predictor executes and mispredicts it;
* a branch is *promoted* into the side-table once it crosses both an
  absolute mispredict count and a mispredict-rate floor (and capacity
  remains — the side-table is a fixed budget, first-crossed-first-held);
* promoted branches get a dedicated local-history pattern table whose
  prediction *overrides* the base only when its counter leans at least
  ``confidence`` beyond the midpoint — an unconfident side entry defers.

The base predictor always trains (promotion must not starve it), so the
overlay never hurts the base's global history.  Identification tracks
the base's own accuracy (not the overlay's): H2P-ness is a property of
the base predictor, which is exactly what the arena's per-path
analytics compare across baselines.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.branch.base import (
    DirectionPredictor,
    SaturatingCounterTable,
    _check_power_of_two,
)


class _SideEntry:
    """Dedicated state for one promoted hard branch."""

    __slots__ = ("history", "pht")

    def __init__(self, history_entries: int, counter_bits: int):
        self.history = 0
        self.pht = SaturatingCounterTable(history_entries, counter_bits)


class H2PAugmentedPredictor(DirectionPredictor):
    """Any base predictor plus a dedicated side-table for H2P branches."""

    def __init__(
        self,
        base: DirectionPredictor,
        entries: int = 128,
        history_bits: int = 8,
        counter_bits: int = 3,
        promote_mispredicts: int = 32,
        promote_rate: float = 0.05,
        confidence: int = 1,
    ):
        _check_power_of_two(1 << history_bits, "2**history_bits")
        if entries <= 0:
            raise ValueError("side-table capacity must be positive")
        if not 0.0 <= promote_rate <= 1.0:
            raise ValueError("promote_rate must be in [0, 1]")
        self.base = base
        self.capacity = entries
        self.history_bits = history_bits
        self.history_entries = 1 << history_bits
        self.history_mask = self.history_entries - 1
        self.counter_bits = counter_bits
        mid = 1 << (counter_bits - 1)
        top = (1 << counter_bits) - 1
        #: side counter must be >= hi (or <= lo) to override the base
        self.hi = min(top, mid + confidence)
        self.lo = max(0, mid - 1 - confidence)
        self.promote_mispredicts = promote_mispredicts
        self.promote_rate = promote_rate
        #: pc -> [executions, base mispredicts] (identification stage)
        self.ident: Dict[int, list] = {}
        #: pc -> dedicated local-history table (promoted branches)
        self.side: Dict[int, _SideEntry] = {}
        # Statistics (observability only).
        self.overrides = 0
        self.override_correct = 0

    # -- pure lookup -------------------------------------------------------

    def _side_view(self, pc: int, base_pred: bool) -> Tuple[bool, bool]:
        """(final prediction, overrode) for ``pc`` given the base's
        prediction, reading side-table state without mutating it."""
        entry = self.side.get(pc)
        if entry is None:
            return base_pred, False
        counter = entry.pht.counter(entry.history)
        if counter >= self.hi:
            return True, True
        if counter <= self.lo:
            return False, True
        return base_pred, False

    # -- training ----------------------------------------------------------

    def _train(self, pc: int, base_pred: bool, overrode: bool,
               final_pred: bool, taken: bool) -> None:
        if overrode:
            self.overrides += 1
            if final_pred == taken:
                self.override_correct += 1
        # Identification: track the *base* predictor's H2P-ness.
        stat = self.ident.get(pc)
        if stat is None:
            stat = self.ident[pc] = [0, 0]
        stat[0] += 1
        if base_pred != taken:
            stat[1] += 1
        entry = self.side.get(pc)
        if entry is None:
            if (len(self.side) < self.capacity
                    and stat[1] >= self.promote_mispredicts
                    and stat[1] >= self.promote_rate * stat[0]):
                entry = self.side[pc] = _SideEntry(self.history_entries,
                                                  self.counter_bits)
        if entry is not None:
            entry.pht.update(entry.history, taken)
            entry.history = ((entry.history << 1) | (1 if taken else 0)) \
                & self.history_mask

    # -- DirectionPredictor interface --------------------------------------

    def predict(self, pc: int) -> bool:
        return self._side_view(pc, self.base.predict(pc))[0]

    def update(self, pc: int, taken: bool) -> None:
        base_pred = self.base.predict(pc)
        final_pred, overrode = self._side_view(pc, base_pred)
        self.base.update(pc, taken)
        self._train(pc, base_pred, overrode, final_pred, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused path: one base query via the base's own fused method
        (bit-identical to its split pair by contract) and one side-table
        read before training."""
        base_pred = self.base.predict_and_update(pc, taken)
        # NOTE: the side view must be read before _train mutates the
        # side entry; base state is independent of the side-table, so
        # querying the base fused-first is state-identical to the split
        # predict -> update sequence.
        final_pred, overrode = self._side_view(pc, base_pred)
        self._train(pc, base_pred, overrode, final_pred, taken)
        return final_pred

    # -- reporting ---------------------------------------------------------

    @property
    def promoted_count(self) -> int:
        """Branches currently holding a dedicated side entry."""
        return len(self.side)
