"""Hashed perceptron direction predictor (Jimenez & Lin).

One row of signed weights per hashed PC, dotted against the global
branch history: the prediction is the sign of
``bias + sum(w_i * h_i)`` with ``h_i`` in {-1, +1}.  Training bumps the
row's weights toward the outcome whenever the prediction was wrong or
the output magnitude was below the threshold ``theta`` (Jimenez's
``1.93 * history + 14``).

The perceptron captures long linearly-separable correlations that
counter-based tables dilute, and is the second modern baseline of the
arena (TAGE-lite being the first).  Like every zoo predictor it is
fully deterministic, and its split ``predict``/``update`` pair and the
fused ``predict_and_update`` are wrappers over one pure ``_output`` and
one mutating ``_train``.
"""

from __future__ import annotations

from array import array

from repro.branch.base import DirectionPredictor, _check_power_of_two


class HashedPerceptronPredictor(DirectionPredictor):
    """Global-history perceptron with a hashed weight-row index."""

    def __init__(
        self,
        entries: int = 4096,
        history: int = 28,
        weight_bits: int = 8,
        threshold: int = 0,
    ):
        _check_power_of_two(entries, "entries")
        if history <= 0:
            raise ValueError("history length must be positive")
        self.entries = entries
        self.row_mask = entries - 1
        self.history_bits = history
        self.history_mask = (1 << history) - 1
        self.history = 0
        self.theta = threshold if threshold > 0 else int(1.93 * history + 14)
        self.weight_max = (1 << (weight_bits - 1)) - 1
        self.weight_min = -(1 << (weight_bits - 1))
        self.row_size = history + 1  # +1: bias weight at offset 0
        self.weights = array("h", [0]) * (entries * self.row_size)
        # Statistics (observability only).
        self.train_events = 0
        self.saturated_updates = 0

    def _row(self, pc: int) -> int:
        """Weight-row base offset for ``pc`` (multiplicative hash)."""
        return ((pc * 0x9E3779B1) & self.row_mask) * self.row_size

    def _output(self, pc: int) -> int:
        """The perceptron output (dot product); pure."""
        weights = self.weights
        row = self._row(pc)
        total = weights[row]  # bias
        history = self.history
        for i in range(1, self.row_size):
            if history & 1:
                total += weights[row + i]
            else:
                total -= weights[row + i]
            history >>= 1
        return total

    def _train(self, output: int, pc: int, taken: bool) -> None:
        prediction = output >= 0
        if prediction != taken or abs(output) <= self.theta:
            self.train_events += 1
            weights = self.weights
            row = self._row(pc)
            step = 1 if taken else -1
            value = weights[row] + step
            if self.weight_min <= value <= self.weight_max:
                weights[row] = value
            else:
                self.saturated_updates += 1
            history = self.history
            for i in range(1, self.row_size):
                # Agreeing history bits strengthen, disagreeing weaken.
                delta = step if history & 1 else -step
                value = weights[row + i] + delta
                if self.weight_min <= value <= self.weight_max:
                    weights[row + i] = value
                history >>= 1
        self.history = ((self.history << 1) | (1 if taken else 0)) \
            & self.history_mask

    # -- DirectionPredictor interface --------------------------------------

    def predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool) -> None:
        self._train(self._output(pc), pc, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused path: one dot product for both halves."""
        output = self._output(pc)
        self._train(output, pc, taken)
        return output >= 0
