"""Versioned, task-key-canonical predictor configuration.

A :class:`PredictorConfig` is the *declarative* identity of a direction
predictor: a frozen dataclass whose canonical JSON rendering (via
``repro.parallel.taskkey.canonical_json``) participates in sweep task
keys, so every arena/sweep point that varies the baseline predictor is
content-addressed exactly like points that vary the machine or the
mechanism.  Constructing the predictor an instance describes is the
registry's job (:func:`repro.branch.zoo.registry.make_predictor`).

The dataclass is deliberately flat: one ``scheme`` selector plus one
field group per predictor family, with the unrelated groups ignored by
each scheme.  Flat fields keep the canonical JSON stable and diffable
(no nested opaque dicts), and let a single scaled-down instance drive
every registered scheme in the property tests.

``config_version`` is the *format* version of this dataclass.  It is
hashed into task keys alongside ``CODE_SCHEMA_VERSION``; bump it if a
field's meaning changes without the field set changing (renames and
additions already change the canonical JSON on their own).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Format version of :class:`PredictorConfig` (part of every task key).
PREDICTOR_CONFIG_VERSION = 1


def _require_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class PredictorConfig:
    """Declarative description of one direction predictor.

    ``scheme`` names a factory registered in
    :mod:`repro.branch.zoo.registry` (``hybrid``, ``gshare``, ``pas``,
    ``bimodal``, ``tage``, ``perceptron``, ``h2p``).  Defaults reproduce
    the paper's Table 3 baseline for the classic family and sensible
    2020-era "lite" geometries for the modern predictors.
    """

    scheme: str = "hybrid"
    #: format version of this config layout (see module docstring)
    config_version: int = PREDICTOR_CONFIG_VERSION

    # -- classic family (bimodal / gshare / PAs / hybrid) -----------------
    #: bimodal/gshare pattern-table entries
    entries: int = 128 * 1024
    #: gshare global-history bits
    history_bits: int = 17
    #: counter width for the classic tables
    counter_bits: int = 2
    pas_history_entries: int = 4096
    pas_history_bits: int = 12
    pas_pht_sets: int = 64
    #: hybrid selector entries (paper: 64K)
    selector_entries: int = 64 * 1024

    # -- TAGE-lite ---------------------------------------------------------
    #: base (tagless bimodal) table entries
    tage_base_entries: int = 16 * 1024
    #: number of tagged tables
    tage_tables: int = 6
    #: entries per tagged table
    tage_entries: int = 2048
    tage_tag_bits: int = 9
    tage_counter_bits: int = 3
    tage_useful_bits: int = 2
    #: geometric history series endpoints (inclusive)
    tage_min_history: int = 4
    tage_max_history: int = 128
    #: updates between graceful halvings of the useful counters
    tage_useful_reset: int = 262_144

    # -- hashed perceptron -------------------------------------------------
    ptron_entries: int = 4096
    #: global-history length (weights per row, plus a bias weight)
    ptron_history: int = 28
    ptron_weight_bits: int = 8
    #: training threshold theta; 0 selects Jimenez's 1.93*h + 14
    ptron_threshold: int = 0

    # -- Bullseye-style H2P side-table overlay ----------------------------
    #: base predictor the side-table layers over (any registered scheme
    #: except ``h2p`` itself)
    h2p_base: str = "tage"
    #: capacity of the side-table (tracked hard branches)
    h2p_entries: int = 128
    #: per-branch local-history bits (side-table PHT is 2**bits counters)
    h2p_history_bits: int = 8
    h2p_counter_bits: int = 3
    #: promotion: at least this many base-predictor mispredicts ...
    h2p_promote_mispredicts: int = 32
    #: ... at at least this misprediction rate
    h2p_promote_rate: float = 0.05
    #: override margin beyond the counter midpoint (0 = any lean)
    h2p_confidence: int = 1

    def __post_init__(self) -> None:
        if not self.scheme or not isinstance(self.scheme, str):
            raise ValueError("scheme must be a non-empty string")
        if self.h2p_base == "h2p":
            raise ValueError("h2p_base cannot itself be 'h2p'")
        for name in ("entries", "pas_history_entries", "pas_pht_sets",
                     "selector_entries", "tage_base_entries", "tage_entries",
                     "ptron_entries"):
            _require_power_of_two(getattr(self, name), name)
        for name in ("history_bits", "counter_bits", "pas_history_bits",
                     "tage_tables", "tage_tag_bits", "tage_counter_bits",
                     "tage_useful_bits", "tage_min_history",
                     "tage_max_history", "tage_useful_reset",
                     "ptron_history", "ptron_weight_bits", "h2p_entries",
                     "h2p_history_bits", "h2p_counter_bits",
                     "h2p_promote_mispredicts"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tage_max_history < self.tage_min_history:
            raise ValueError("tage_max_history must be >= tage_min_history")
        if not 0.0 <= self.h2p_promote_rate <= 1.0:
            raise ValueError("h2p_promote_rate must be in [0, 1]")
        if self.ptron_threshold < 0 or self.h2p_confidence < 0:
            raise ValueError("thresholds must be non-negative")


def small_config(scheme: str, **overrides: object) -> PredictorConfig:
    """A scaled-down config for tests: every family's tables shrunk so
    property tests can drive any registered scheme cheaply."""
    small = dict(
        scheme=scheme,
        entries=256, history_bits=6,
        pas_history_entries=16, pas_history_bits=4, pas_pht_sets=4,
        selector_entries=64,
        tage_base_entries=64, tage_tables=3, tage_entries=32,
        tage_tag_bits=7, tage_min_history=2, tage_max_history=16,
        tage_useful_reset=256,
        ptron_entries=32, ptron_history=8,
        h2p_entries=8, h2p_history_bits=4,
        h2p_promote_mispredicts=4, h2p_promote_rate=0.02,
    )
    small.update(overrides)
    return PredictorConfig(**small)  # type: ignore[arg-type]


_FIELD_NAMES = tuple(f.name for f in fields(PredictorConfig))


def config_from_dict(payload: dict) -> PredictorConfig:
    """Rebuild a :class:`PredictorConfig` from a JSON payload (e.g. a
    sweep-point's ``predictor`` section); unknown keys are rejected."""
    unknown = sorted(set(payload) - set(_FIELD_NAMES))
    if unknown:
        raise ValueError(f"unknown PredictorConfig fields: {unknown}")
    return PredictorConfig(**payload)
