"""TAGE-lite: geometric-history tagged tables with useful-bit allocation.

A reduced TAGE (Seznec & Michaud) — the modern baseline the arena pits
the paper's 2002 hybrid against:

* a tagless bimodal base table,
* ``tables`` tagged tables whose history lengths grow geometrically
  from ``min_history`` to ``max_history``,
* partial tags, 3-bit prediction counters and 2-bit useful counters per
  tagged entry,
* on a misprediction, allocation into one not-useful entry of a
  longer-history table (decaying every longer table's useful counters
  when none is free), and
* periodic graceful halving of all useful counters.

Omitted relative to full TAGE (hence "-lite"): the *dynamic*
``use_alt_on_na`` chooser (a static weak-provider-defers-to-alternate
rule stands in for it), the loop predictor and the statistical
corrector.  Everything is deterministic — allocation
picks the first free longer table rather than a random one — so runs
are bit-reproducible and cacheable by task key.

The split ``predict()``/``update()`` pair and the fused
``predict_and_update()`` are bit-identical by construction: both are
thin wrappers over one pure ``_lookup`` and one mutating ``_train``
(``tests/test_zoo_properties.py`` property-checks this for every
registered scheme).
"""

from __future__ import annotations

from array import array
from typing import List, Tuple

from repro.branch.base import DirectionPredictor, SaturatingCounterTable


def _fold(history: int, length: int, bits: int) -> int:
    """XOR-fold the low ``length`` history bits down to ``bits`` bits."""
    history &= (1 << length) - 1
    mask = (1 << bits) - 1
    folded = 0
    while history:
        folded ^= history & mask
        history >>= bits
    return folded


#: Lookup snapshot: (indices, tags, provider, alternate, provider_pred,
#: alt_pred, prediction).  ``provider``/``alternate`` are tagged-table
#: numbers, or -1 for the bimodal base.
_Lookup = Tuple[List[int], List[int], int, int, bool, bool, bool]


class TageLitePredictor(DirectionPredictor):
    """Tagged geometric-history predictor (TAGE-lite)."""

    def __init__(
        self,
        base_entries: int = 16 * 1024,
        tables: int = 6,
        entries: int = 2048,
        tag_bits: int = 9,
        counter_bits: int = 3,
        useful_bits: int = 2,
        min_history: int = 4,
        max_history: int = 128,
        useful_reset: int = 262_144,
    ):
        self.base = SaturatingCounterTable(base_entries, 2)
        self.tables = tables
        self.entries = entries
        self.index_mask = entries - 1
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.counter_bits = counter_bits
        self.counter_max = (1 << counter_bits) - 1
        self.counter_mid = 1 << (counter_bits - 1)
        self.useful_max = (1 << useful_bits) - 1
        self.useful_reset = useful_reset
        # Geometric history series L_1..L_tables (L_1 = min, L_T = max).
        self.history_lengths: List[int] = []
        for i in range(tables):
            if tables == 1:
                length = max_history
            else:
                ratio = (max_history / min_history) ** (i / (tables - 1))
                length = int(round(min_history * ratio))
            self.history_lengths.append(max(1, length))
        self.max_history = max(self.history_lengths)
        self.history_mask = (1 << self.max_history) - 1
        self.history = 0
        # Per tagged table: prediction counters (weakly taken), partial
        # tags (0 = empty; stored tags are offset by 1) and useful bits.
        self.ctr = [array("b", [self.counter_mid]) * entries
                    for _ in range(tables)]
        self.tag = [array("l", [0]) * entries for _ in range(tables)]
        self.useful = [array("b", [0]) * entries for _ in range(tables)]
        self.tick = 0
        # Statistics (observability only; not part of prediction state).
        self.provider_hits = [0] * (tables + 1)  # [-1] slot = base
        self.allocations = 0
        self.allocation_failures = 0

    # -- pure lookup -------------------------------------------------------

    def _lookup(self, pc: int) -> _Lookup:
        """Compute per-table indices/tags and the provider/alternate
        components for ``pc`` under the current history (no mutation)."""
        indices: List[int] = []
        tags: List[int] = []
        history = self.history
        index_bits = self.index_bits
        tag_bits = self.tag_bits
        for length in self.history_lengths:
            fold_index = _fold(history, length, index_bits) if index_bits else 0
            indices.append((pc ^ (pc >> index_bits) ^ fold_index)
                           & self.index_mask)
            tag_fold = _fold(history, length, tag_bits)
            tag_fold2 = _fold(history, length, tag_bits - 1) << 1
            # +1 offset keeps 0 as the "empty slot" sentinel.
            tags.append(((pc ^ tag_fold ^ tag_fold2) & self.tag_mask) + 1)
        provider = -1
        alternate = -1
        for t in range(self.tables - 1, -1, -1):
            if self.tag[t][indices[t]] == tags[t]:
                if provider < 0:
                    provider = t
                elif alternate < 0:
                    alternate = t
                    break
        base_pred = self.base.predict(pc)
        weak_provider = False
        if provider >= 0:
            counter = self.ctr[provider][indices[provider]]
            provider_pred = counter >= self.counter_mid
            # A newly-allocated entry (weak counter, never proved
            # useful) defers to the alternate prediction — the static
            # form of full TAGE's use_alt_on_na heuristic.
            weak_provider = (self.useful[provider][indices[provider]] == 0
                             and counter in (self.counter_mid - 1,
                                             self.counter_mid))
        else:
            provider_pred = base_pred
        if alternate >= 0:
            alt_pred = self.ctr[alternate][indices[alternate]] \
                >= self.counter_mid
        else:
            alt_pred = base_pred
        prediction = alt_pred if weak_provider else provider_pred
        return indices, tags, provider, alternate, provider_pred, alt_pred, \
            prediction

    # -- training ----------------------------------------------------------

    def _train(self, looked: _Lookup, pc: int, taken: bool) -> None:
        indices, tags, provider, _alternate, provider_pred, alt_pred, \
            prediction = looked
        correct = prediction == taken
        self.provider_hits[provider] += 1

        if provider >= 0:
            # Train the provider counter toward the outcome.
            ctr = self.ctr[provider]
            index = indices[provider]
            value = ctr[index]
            if taken:
                if value < self.counter_max:
                    ctr[index] = value + 1
            elif value > 0:
                ctr[index] = value - 1
            # Useful bit: the provider proved (un)useful only when it
            # disagreed with the alternate prediction.
            if provider_pred != alt_pred:
                useful = self.useful[provider]
                uval = useful[index]
                if provider_pred == taken:
                    if uval < self.useful_max:
                        useful[index] = uval + 1
                elif uval > 0:
                    useful[index] = uval - 1
        else:
            self.base.update(pc, taken)

        # Allocate a longer-history entry on a misprediction.
        if not correct and provider < self.tables - 1:
            victim = -1
            for t in range(provider + 1, self.tables):
                if self.useful[t][indices[t]] == 0:
                    victim = t
                    break
            if victim >= 0:
                self.allocations += 1
                index = indices[victim]
                self.tag[victim][index] = tags[victim]
                self.ctr[victim][index] = (self.counter_mid if taken
                                           else self.counter_mid - 1)
                self.useful[victim][index] = 0
            else:
                self.allocation_failures += 1
                for t in range(provider + 1, self.tables):
                    useful = self.useful[t]
                    index = indices[t]
                    if useful[index] > 0:
                        useful[index] -= 1

        # Graceful useful decay.
        self.tick += 1
        if self.tick >= self.useful_reset:
            self.tick = 0
            for useful in self.useful:
                for i, value in enumerate(useful):
                    if value:
                        useful[i] = value >> 1

        self.history = ((self.history << 1) | (1 if taken else 0)) \
            & self.history_mask

    # -- DirectionPredictor interface --------------------------------------

    def predict(self, pc: int) -> bool:
        return self._lookup(pc)[6]

    def update(self, pc: int, taken: bool) -> None:
        self._train(self._lookup(pc), pc, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused path: one table walk for both halves (the split pair
        recomputes the same pure lookup; state is bit-identical)."""
        looked = self._lookup(pc)
        self._train(looked, pc, taken)
        return looked[6]

    @property
    def total_entries(self) -> int:
        """Counters across base and tagged tables (for size reporting)."""
        return self.base.entries + self.tables * self.entries
