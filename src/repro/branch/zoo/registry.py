"""Scheme registry: from :class:`PredictorConfig` to a live predictor.

Every constructible direction predictor registers a factory under a
``scheme`` name; :func:`make_predictor` turns a config into an instance
and :func:`make_complex` wraps it in the full
:class:`~repro.branch.unit.BranchPredictorComplex` (paper BTB/RAS/target
cache, zoo direction predictor).

The registry is the arena's pluggability point: a new predictor needs
one factory registration (plus config fields if its geometry is new)
and it is automatically picked up by ``repro arena``, the fused-path
property tests and the strength benchmarks.

:data:`ARENA_BASELINES` names the canonical four-baselines study of the
SSMT-headroom experiment: the paper's hybrid, TAGE-lite, the hashed
perceptron, and the H2P side-table over TAGE-lite.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.branch.base import DirectionPredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.pas import PAsPredictor
from repro.branch.unit import BranchPredictorComplex
from repro.branch.zoo.config import PredictorConfig
from repro.branch.zoo.h2p import H2PAugmentedPredictor
from repro.branch.zoo.perceptron import HashedPerceptronPredictor
from repro.branch.zoo.tage import TageLitePredictor

PredictorFactory = Callable[[PredictorConfig], DirectionPredictor]

_FACTORIES: Dict[str, PredictorFactory] = {}


def register_scheme(name: str) -> Callable[[PredictorFactory],
                                           PredictorFactory]:
    """Class/function decorator registering a predictor factory."""
    def decorate(factory: PredictorFactory) -> PredictorFactory:
        if name in _FACTORIES:
            raise ValueError(f"scheme {name!r} is already registered")
        _FACTORIES[name] = factory
        return factory
    return decorate


def registered_schemes() -> Tuple[str, ...]:
    """Every registered scheme name, sorted."""
    return tuple(sorted(_FACTORIES))


def make_predictor(config: PredictorConfig) -> DirectionPredictor:
    """Construct the direction predictor a config describes."""
    factory = _FACTORIES.get(config.scheme)
    if factory is None:
        raise ValueError(f"unknown predictor scheme {config.scheme!r}; "
                         f"registered: {registered_schemes()}")
    return factory(config)


def make_complex(config: PredictorConfig) -> BranchPredictorComplex:
    """The full predictor complex with a zoo direction predictor (the
    paper's BTB, RAS and indirect target cache are unchanged)."""
    return BranchPredictorComplex(direction=make_predictor(config))


# -- factories -------------------------------------------------------------

@register_scheme("bimodal")
def _make_bimodal(config: PredictorConfig) -> DirectionPredictor:
    return BimodalPredictor(entries=config.entries,
                            counter_bits=config.counter_bits)


@register_scheme("gshare")
def _make_gshare(config: PredictorConfig) -> DirectionPredictor:
    return GsharePredictor(entries=config.entries,
                           history_bits=config.history_bits,
                           counter_bits=config.counter_bits)


@register_scheme("pas")
def _make_pas(config: PredictorConfig) -> DirectionPredictor:
    return PAsPredictor(history_entries=config.pas_history_entries,
                        history_bits=config.pas_history_bits,
                        pht_sets=config.pas_pht_sets,
                        counter_bits=config.counter_bits)


@register_scheme("hybrid")
def _make_hybrid(config: PredictorConfig) -> DirectionPredictor:
    return HybridPredictor(
        gshare=GsharePredictor(entries=config.entries,
                               history_bits=config.history_bits,
                               counter_bits=config.counter_bits),
        pas=PAsPredictor(history_entries=config.pas_history_entries,
                         history_bits=config.pas_history_bits,
                         pht_sets=config.pas_pht_sets,
                         counter_bits=config.counter_bits),
        selector_entries=config.selector_entries)


@register_scheme("tage")
def _make_tage(config: PredictorConfig) -> DirectionPredictor:
    return TageLitePredictor(
        base_entries=config.tage_base_entries,
        tables=config.tage_tables,
        entries=config.tage_entries,
        tag_bits=config.tage_tag_bits,
        counter_bits=config.tage_counter_bits,
        useful_bits=config.tage_useful_bits,
        min_history=config.tage_min_history,
        max_history=config.tage_max_history,
        useful_reset=config.tage_useful_reset)


@register_scheme("perceptron")
def _make_perceptron(config: PredictorConfig) -> DirectionPredictor:
    return HashedPerceptronPredictor(
        entries=config.ptron_entries,
        history=config.ptron_history,
        weight_bits=config.ptron_weight_bits,
        threshold=config.ptron_threshold)


@register_scheme("h2p")
def _make_h2p(config: PredictorConfig) -> DirectionPredictor:
    from dataclasses import replace

    base = make_predictor(replace(config, scheme=config.h2p_base))
    return H2PAugmentedPredictor(
        base,
        entries=config.h2p_entries,
        history_bits=config.h2p_history_bits,
        counter_bits=config.h2p_counter_bits,
        promote_mispredicts=config.h2p_promote_mispredicts,
        promote_rate=config.h2p_promote_rate,
        confidence=config.h2p_confidence)


#: The canonical arena study: paper hybrid vs two modern predictors vs
#: the H2P-augmented modern predictor.  Keys are display labels (and the
#: ``--predictors`` vocabulary of ``repro arena``); values are full
#: task-key-canonical configs.
ARENA_BASELINES: Dict[str, PredictorConfig] = {
    "hybrid": PredictorConfig(scheme="hybrid"),
    "tage": PredictorConfig(scheme="tage"),
    "perceptron": PredictorConfig(scheme="perceptron"),
    "h2p-tage": PredictorConfig(scheme="h2p", h2p_base="tage"),
}
