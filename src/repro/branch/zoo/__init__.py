"""repro.zoo — the pluggable modern-predictor arena.

The paper's 2002 baseline (gshare/PAs hybrid) leaves ~2x IPC on the
table behind mispredictions; the open question (ROADMAP item 1) is how
much of the SSMT mechanism's headroom survives a *modern* baseline.
This package supplies the contestants:

* :class:`~repro.branch.zoo.tage.TageLitePredictor` — geometric-history
  tagged tables with useful-bit allocation (Seznec & Michaud, reduced),
* :class:`~repro.branch.zoo.perceptron.HashedPerceptronPredictor` —
  Jimenez & Lin's perceptron over global history,
* :class:`~repro.branch.zoo.h2p.H2PAugmentedPredictor` — a
  Bullseye-style hard-to-predict side-table layered over any base,

each constructible from a frozen, task-key-canonical
:class:`~repro.branch.zoo.config.PredictorConfig` via the scheme
registry (:func:`make_predictor` / :func:`make_complex`), so arena
sweeps stay content-addressed and cacheable.

This package is intentionally **not** imported by the default simulation
path: ``repro.branch.unit`` and the sweep worker only import it when a
task actually requests a zoo predictor, keeping the paper-default hot
path zero-cost (``tests/test_zoo_zero_cost.py`` enforces this).

See ``docs/predictors.md`` for the architecture, the config schema and
the arena workflow.
"""

from repro.branch.zoo.config import (
    PREDICTOR_CONFIG_VERSION,
    PredictorConfig,
    config_from_dict,
    small_config,
)
from repro.branch.zoo.tage import TageLitePredictor
from repro.branch.zoo.perceptron import HashedPerceptronPredictor
from repro.branch.zoo.h2p import H2PAugmentedPredictor
from repro.branch.zoo.registry import (
    ARENA_BASELINES,
    make_complex,
    make_predictor,
    register_scheme,
    registered_schemes,
)

__all__ = [
    "PREDICTOR_CONFIG_VERSION",
    "PredictorConfig",
    "config_from_dict",
    "small_config",
    "TageLitePredictor",
    "HashedPerceptronPredictor",
    "H2PAugmentedPredictor",
    "ARENA_BASELINES",
    "make_complex",
    "make_predictor",
    "register_scheme",
    "registered_schemes",
]
