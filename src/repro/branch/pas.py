"""PAs two-level local-history predictor (Yeh & Patt).

A per-address branch history table feeds per-set pattern history tables.
This is the second component of the paper's baseline hybrid; it captures
short repeating local patterns (loop trip counts, alternating branches)
that gshare's global history dilutes.
"""

from __future__ import annotations

from typing import List

from repro.branch.base import (
    DirectionPredictor,
    SaturatingCounterTable,
    _check_power_of_two,
)


class PAsPredictor(DirectionPredictor):
    """Two-level predictor with per-address history, set-shared PHTs."""

    def __init__(
        self,
        history_entries: int = 4096,
        history_bits: int = 12,
        pht_sets: int = 64,
        counter_bits: int = 2,
    ):
        _check_power_of_two(history_entries, "history_entries")
        _check_power_of_two(pht_sets, "pht_sets")
        self.history_entries = history_entries
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.bht: List[int] = [0] * history_entries
        self.pht_sets = pht_sets
        self.pht = SaturatingCounterTable(pht_sets << history_bits, counter_bits)

    def _pht_index(self, pc: int) -> int:
        local_history = self.bht[pc & (self.history_entries - 1)]
        # Fold a multiplicative PC hash over the whole PHT rather than
        # concatenating a small set index: branches overwhelmingly share
        # saturated local histories, and pure concatenation makes them
        # collide pairwise within a set.
        return (local_history ^ (pc * 0x9E3779B1)) & self.pht.mask

    def predict(self, pc: int) -> bool:
        return self.pht.predict(self._pht_index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.pht.update(self._pht_index(pc), taken)
        slot = pc & (self.history_entries - 1)
        self.bht[slot] = ((self.bht[slot] << 1) | (1 if taken else 0)) & self.history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused path: one PHT index computation (BHT read + hash) for
        both the prediction and the training update."""
        pht = self.pht
        index = self._pht_index(pc)
        prediction = pht.predict(index)
        pht.update(index, taken)
        slot = pc & (self.history_entries - 1)
        self.bht[slot] = ((self.bht[slot] << 1) | (1 if taken else 0)) & self.history_mask
        return prediction

    @property
    def total_entries(self) -> int:
        """Total PHT counters (for reporting against the paper's 128K)."""
        return self.pht.entries
