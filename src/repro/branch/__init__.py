"""Baseline hardware branch prediction.

Implements the paper's baseline predictor complex (Table 3): a
128K-entry gshare/PAs hybrid with a 64K-entry selector, a 4K-entry branch
target buffer, a 32-entry call/return stack, and a 64K-entry target cache
for indirect branches.

:class:`BranchPredictorComplex` bundles all of these behind the interface
the timing model and the difficult-path profiler consume.
"""

from repro.branch.base import (
    DirectionPredictor,
    SaturatingCounterTable,
    AlwaysTakenPredictor,
    OraclePredictor,
)
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.pas import PAsPredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.target_cache import TargetCache
from repro.branch.unit import BranchPredictorComplex, BranchOutcome, default_complex

__all__ = [
    "DirectionPredictor",
    "SaturatingCounterTable",
    "AlwaysTakenPredictor",
    "OraclePredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "PAsPredictor",
    "HybridPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "TargetCache",
    "BranchPredictorComplex",
    "BranchOutcome",
    "default_complex",
]
