"""The paper's contribution: difficult-path microthread branch prediction.

Subsystem map (paper section in parentheses):

* :mod:`repro.core.path` — ``Path_Id`` shift-XOR hashing and the
  front-end path history tracker (§3).
* :mod:`repro.core.path_cache` — the Path Cache: training intervals,
  Difficult/Promoted bits, allocate-on-mispredict, difficulty-aware LRU
  (§4.1, §4.2.1).
* :mod:`repro.core.prb` — Post-Retirement Buffer with dependence links
  (§4.2.2).
* :mod:`repro.core.microthread` — microthread routine objects.
* :mod:`repro.core.mcb` — Microthread Construction Buffer optimizations:
  move elimination, constant propagation (§4.2.3) and pruning (§4.2.5).
* :mod:`repro.core.builder` — the Microthread Builder: data-flow tree
  extraction, termination rules, memory-dependence speculation, spawn
  point selection (§4.2.2, §4.2.4).
* :mod:`repro.core.microram` — MicroRAM routine store (§4.3.1).
* :mod:`repro.core.prediction_cache` — the Prediction Cache keyed by
  ``(Path_Id, Seq_Num)`` (§4.3.3).
* :mod:`repro.core.spawn` — microcontexts, spawn filtering and the
  ``Path_History`` abort mechanism (§4.3.1, §4.3.2).
* :mod:`repro.core.ssmt` — the full SSMT engine wired into the timing
  model, plus configuration (§4, §5).
* :mod:`repro.core.oracle` — the perfect difficult-path predictor used
  for the potential study (Figure 6).
"""

from repro.core.path import (
    PathKey,
    PathEvent,
    PathTracker,
    path_id_hash,
)
from repro.core.path_cache import PathCache, PathCacheConfig, PromotionEvent
from repro.core.prb import PostRetirementBuffer, PRBEntry
from repro.core.microthread import Microthread, MicroOp
from repro.core.builder import MicrothreadBuilder, BuilderConfig, BuildStats
from repro.core.microram import MicroRAM
from repro.core.prediction_cache import PredictionCache
from repro.core.spawn import SpawnManager, SpawnStats
from repro.core.ssmt import SSMTConfig, SSMTEngine, run_ssmt
from repro.core.oracle import PotentialConfig, PotentialEngine, run_potential
from repro.core.static import (
    ProfiledPath,
    StaticSSMTEngine,
    prebuild_microthreads,
    profile_difficult_paths,
    run_profile_guided,
)
from repro.core.events import Event, EventLog

__all__ = [
    "PathKey",
    "PathEvent",
    "PathTracker",
    "path_id_hash",
    "PathCache",
    "PathCacheConfig",
    "PromotionEvent",
    "PostRetirementBuffer",
    "PRBEntry",
    "Microthread",
    "MicroOp",
    "MicrothreadBuilder",
    "BuilderConfig",
    "BuildStats",
    "MicroRAM",
    "PredictionCache",
    "SpawnManager",
    "SpawnStats",
    "SSMTConfig",
    "SSMTEngine",
    "run_ssmt",
    "PotentialConfig",
    "PotentialEngine",
    "run_potential",
    "ProfiledPath",
    "StaticSSMTEngine",
    "prebuild_microthreads",
    "profile_difficult_paths",
    "run_profile_guided",
    "Event",
    "EventLog",
]
