"""Microthread routines as data-flow graphs.

The Microthread Builder extracts the backward slice of a terminating
branch into a small DAG of :class:`MicroOp` nodes.  Keeping the routine
as a graph (rather than re-registered instructions) makes the MCB
optimizations — move elimination, constant propagation, pruning, dead
code elimination — simple rewrites, and makes both functional execution
(does the microthread predict correctly?) and timing (when does
``Store_PCache`` complete?) a single topological walk.

Node kinds
----------
``op``      an ALU instruction (inputs = register sources)
``load``    a load; input 0 is the base address, ``imm`` the displacement
``const``   a known constant (an ``LI`` in instruction terms)
``livein``  a register value read from the primary thread at spawn
``vp``      a ``Vp_Inst``: queries the value predictor for ``pc``
``ap``      an ``Ap_Inst``: queries the address predictor for ``pc``
``branch``  the terminating branch, converted to ``Store_PCache``

``livein`` nodes cost no instruction; every other kind counts toward the
routine size reported in Figure 8.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.path import PathKey
from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    Opcode,
)
from repro.sim.functional import alu_op, to_signed

_node_ids = itertools.count()


class MicroOp:
    """One node of a microthread's data-flow graph."""

    __slots__ = ("uid", "kind", "op", "imm", "pc", "inputs", "reg",
                 "producer_idx", "ahead", "order")

    def __init__(self, kind: str, op: Optional[Opcode] = None, imm: int = 0,
                 pc: int = -1, inputs: Optional[List["MicroOp"]] = None,
                 reg: int = -1, producer_idx: Optional[int] = None,
                 ahead: int = 1, order: int = 0):
        self.uid = next(_node_ids)
        self.kind = kind
        self.op = op
        self.imm = imm
        self.pc = pc
        self.inputs: List[MicroOp] = inputs if inputs is not None else []
        self.reg = reg
        self.producer_idx = producer_idx
        self.ahead = ahead
        self.order = order  # original trace position, for stable listing

    @property
    def is_instruction(self) -> bool:
        """Does this node occupy an instruction slot in the routine?"""
        return self.kind != "livein"

    def describe(self) -> str:
        if self.kind == "livein":
            return f"livein r{self.reg}"
        if self.kind == "const":
            return f"li {self.imm}"
        if self.kind == "vp":
            return f"vp_inst pc={self.pc} ahead={self.ahead}"
        if self.kind == "ap":
            return f"ap_inst pc={self.pc} ahead={self.ahead}"
        if self.kind == "load":
            return f"ld [{self.imm}+...] pc={self.pc}"
        if self.kind == "branch":
            return f"store_pcache ({self.op.name.lower()}) pc={self.pc}"
        return f"{self.op.name.lower()} pc={self.pc}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MicroOp {self.describe()}>"


@dataclass
class MicrothreadPrediction:
    """The outcome a microthread wrote to the Prediction Cache."""

    taken: bool
    target: int
    loads_read: Tuple[int, ...]  # effective addresses read (violation check)


@dataclass
class Microthread:
    """A built microthread routine for one difficult path."""

    key: PathKey
    path_id: int
    root: MicroOp                        # the Store_PCache node
    nodes: List[MicroOp]                 # topological order (inputs first)
    live_in_regs: Tuple[int, ...]
    spawn_pc: int
    separation: int                      # instructions from spawn to branch
    term_pc: int
    term_taken_target: int               # taken target for conditional term
    prefix: Tuple[int, ...]              # path branches before the spawn point
    expected_suffix: Tuple[int, ...]     # taken-branch PCs spawn -> terminator
    built_from_idx: int = 0
    pruned: bool = False
    memdep_speculative: bool = False     # load with no in-scope store seen
    available_cycle: int = 0             # MicroRAM delivery time (build latency)
    rebuild_count: int = 0

    @property
    def routine_size(self) -> int:
        """Instruction count (Figure 8 'routine size')."""
        return sum(1 for n in self.nodes if n.is_instruction)

    @property
    def longest_chain(self) -> int:
        """Longest dependence chain in instructions (Figure 8)."""
        depth: Dict[int, int] = {}
        for node in self.nodes:  # topological: inputs precede users
            d = max((depth[i.uid] for i in node.inputs), default=0)
            depth[node.uid] = d + (1 if node.is_instruction else 0)
        return depth[self.root.uid] if self.nodes else 0

    def listing(self) -> str:
        """Human-readable routine listing (for examples and debugging)."""
        return "\n".join(n.describe() for n in self.nodes)

    # -- functional execution ---------------------------------------------

    def execute(
        self,
        live_in_values: Dict[int, int],
        memory_read: Callable[[int], int],
        value_predict: Callable[[int, int], Optional[int]],
        address_predict: Callable[[int, int], Optional[int]],
    ) -> MicrothreadPrediction:
        """Evaluate the routine and produce the branch prediction.

        ``memory_read`` sees the architectural memory image as of the
        spawn point — stores that retire between spawn and the branch are
        invisible, which is exactly the memory-dependence speculation the
        abort/rebuild machinery guards (paper §4.2.4).
        """
        values: Dict[int, int] = {}
        loads_read: List[int] = []
        mask = (1 << 64) - 1
        for node in self.nodes:
            kind = node.kind
            if kind == "livein":
                values[node.uid] = live_in_values.get(node.reg, 0)
            elif kind == "const":
                values[node.uid] = node.imm & mask
            elif kind == "vp":
                predicted = value_predict(node.pc, node.ahead)
                values[node.uid] = (predicted or 0) & mask
            elif kind == "ap":
                predicted = address_predict(node.pc, node.ahead)
                values[node.uid] = (predicted or 0) & mask
            elif kind == "load":
                base = values[node.inputs[0].uid]
                ea = (base + node.imm) & mask
                loads_read.append(ea)
                values[node.uid] = memory_read(ea) & mask
            elif kind == "op":
                values[node.uid] = self._eval_op(node, values)
            elif kind == "branch":
                return self._eval_branch(node, values, tuple(loads_read))
            else:  # pragma: no cover - construction guarantees kinds
                raise ValueError(f"unknown node kind {kind!r}")
        raise ValueError("microthread has no branch node")

    def _eval_op(self, node: MicroOp, values: Dict[int, int]) -> int:
        mask = (1 << 64) - 1
        op = node.op
        a = values[node.inputs[0].uid] if node.inputs else 0
        if op == Opcode.LI:
            return node.imm & mask
        if op == Opcode.MOV:
            return a
        if op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                  Opcode.SLLI, Opcode.SRLI, Opcode.SLTI):
            reg_op = _IMM_FORMS[op]
            if reg_op is None:  # ADDI
                return (a + node.imm) & mask
            return alu_op(reg_op, a, node.imm & mask)
        b = values[node.inputs[1].uid] if len(node.inputs) > 1 else 0
        return alu_op(op, a, b)

    def _eval_branch(self, node: MicroOp, values: Dict[int, int],
                     loads_read: Tuple[int, ...]) -> MicrothreadPrediction:
        op = node.op
        if op in CONDITIONAL_BRANCHES:
            a = values[node.inputs[0].uid] if node.inputs else 0
            b = values[node.inputs[1].uid] if len(node.inputs) > 1 else 0
            if op == Opcode.BEQ:
                taken = a == b
            elif op == Opcode.BNE:
                taken = a != b
            elif op == Opcode.BLT:
                taken = to_signed(a) < to_signed(b)
            else:  # BGE
                taken = to_signed(a) >= to_signed(b)
            target = self.term_taken_target if taken else self.term_pc + 1
            return MicrothreadPrediction(taken, target, loads_read)
        # Indirect terminator: the computed value *is* the target.
        target = values[node.inputs[0].uid] if node.inputs else 0
        return MicrothreadPrediction(True, target, loads_read)


_IMM_FORMS = {
    Opcode.ADDI: None,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SLTI: Opcode.SLT,
}


def topological_order(root: MicroOp) -> List[MicroOp]:
    """Inputs-first ordering of the graph reachable from ``root``.

    Iterative, so deep extraction chains (up to the PRB capacity) cannot
    hit the interpreter recursion limit.
    """
    nodes: Dict[int, MicroOp] = {}
    stack: List[MicroOp] = [root]
    while stack:
        node = stack.pop()
        if node.uid in nodes:
            continue
        nodes[node.uid] = node
        stack.extend(node.inputs)

    pending = {uid: len({i.uid for i in n.inputs}) for uid, n in nodes.items()}
    users: Dict[int, List[int]] = {}
    for node in nodes.values():
        for input_uid in {i.uid for i in node.inputs}:
            users.setdefault(input_uid, []).append(node.uid)

    ready = sorted((uid for uid, count in pending.items() if count == 0),
                   key=lambda uid: nodes[uid].order)
    order: List[MicroOp] = []
    while ready:
        uid = ready.pop(0)
        order.append(nodes[uid])
        for user_uid in users.get(uid, ()):
            pending[user_uid] -= 1
            if pending[user_uid] == 0:
                ready.append(user_uid)
    if len(order) != len(nodes):
        raise ValueError("cycle in microthread data-flow graph")
    return order
