"""Potential study: perfect prediction of difficult-path branches.

Figure 6 of the paper measures the speed-up available if the terminating
branch of every *promoted* difficult path were predicted perfectly — with
realistic difficult-path identification (an 8K-entry Path Cache, a
training interval of 32, and a MicroRAM-sized bound on concurrently
promoted paths) but idealized microthreads (always correct, always early,
zero overhead).

:class:`PotentialEngine` implements the same listener protocol as the
full SSMT engine but swaps the microthread machinery for an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.branch.unit import BranchPredictorComplex
from repro.core.path import PathKey, PathTracker, DEFAULT_PATH_ID_BITS
from repro.core.path_cache import PathCache, PathCacheConfig
from repro.sim.trace import Trace
from repro.uarch.config import MachineConfig, TABLE3_BASELINE
from repro.uarch.timing import OoOTimingModel, PredictionEntry, TimingResult


@dataclass
class PotentialConfig:
    n: int = 10
    difficulty_threshold: float = 0.10
    path_id_bits: int = DEFAULT_PATH_ID_BITS
    path_cache_entries: int = 8192
    path_cache_assoc: int = 8
    training_interval: int = 32
    #: bound on concurrently promoted paths (the MicroRAM size).
    promoted_capacity: int = 8192


class PotentialEngine:
    """Oracle predictions for promoted difficult paths; zero overhead."""

    def __init__(self, config: Optional[PotentialConfig] = None):
        self.config = config or PotentialConfig()
        cfg = self.config
        self.tracker = PathTracker(cfg.n, cfg.path_id_bits)
        self.path_cache = PathCache(PathCacheConfig(
            entries=cfg.path_cache_entries,
            assoc=cfg.path_cache_assoc,
            training_interval=cfg.training_interval,
            difficulty_threshold=cfg.difficulty_threshold,
        ))
        self._promoted: Dict[PathKey, int] = {}
        self._stamp = 0
        self._pending_mispredict: Dict[int, bool] = {}
        self.oracle_predictions = 0

    # -- listener protocol ------------------------------------------------------

    def lookup_prediction(self, idx: int, rec,
                          fetch_cycle: int) -> Optional[PredictionEntry]:
        key = PathKey(rec.pc, self.tracker.current_branches())
        if key not in self._promoted:
            return None
        self.oracle_predictions += 1
        self._stamp += 1
        self._promoted[key] = self._stamp
        # Perfect and early: arrival before fetch.
        return PredictionEntry(rec.taken, rec.next_pc, arrival_cycle=0)

    def on_control(self, idx: int, rec, outcome, fetch_cycle: int,
                   resolve_cycle: int) -> None:
        if rec.inst.is_path_terminating:
            self._pending_mispredict[idx] = outcome.mispredicted

    def on_retire(self, idx: int, rec, retire_cycle: int) -> None:
        event = self.tracker.observe(rec, idx)
        if event is None or event.partial:
            return
        mispredicted = self._pending_mispredict.pop(idx, False)
        promotion = self.path_cache.update(event.key, event.path_id,
                                           mispredicted)
        if promotion is None:
            return
        if promotion.promote:
            self._promote(event.key, event.path_id)
        else:
            self._promoted.pop(event.key, None)
            self.path_cache.mark_promoted(event.key, event.path_id, False)

    def _promote(self, key: PathKey, path_id: int) -> None:
        if len(self._promoted) >= self.config.promoted_capacity:
            victim = min(self._promoted, key=self._promoted.get)
            del self._promoted[victim]
            self.path_cache.mark_promoted(
                victim, victim.path_id(self.config.path_id_bits), False
            )
        self._stamp += 1
        self._promoted[key] = self._stamp
        self.path_cache.mark_promoted(key, path_id, True)

    @property
    def promoted_count(self) -> int:
        return len(self._promoted)


def run_potential(
    trace: Trace,
    config: Optional[PotentialConfig] = None,
    machine: MachineConfig = TABLE3_BASELINE,
    predictor: Optional[BranchPredictorComplex] = None,
) -> Tuple[TimingResult, PotentialEngine]:
    """Figure 6 potential run: oracle difficult-path prediction."""
    engine = PotentialEngine(config)
    model = OoOTimingModel(machine)
    predictor = predictor if predictor is not None else BranchPredictorComplex()
    result = model.run(trace, predictor, listener=engine)
    return result, engine
