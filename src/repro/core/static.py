"""Profile-guided (compile-time) difficult-path microthreading.

The paper focuses on the hardware-only implementation but notes that
"compile-time implementations, which we have also investigated, are
outside the scope of this paper" (§4).  This module supplies that
variant as an extension:

1. :func:`profile_difficult_paths` — offline profiling pass with an
   *unbounded* path table (the compiler is not limited to an 8K-entry
   Path Cache — exactly the advantage the paper ascribes to compile-time
   identification in §5.2's future-work discussion).
2. :func:`prebuild_microthreads` — a second pass that replays the
   profiling trace through the PRB/trainer and builds one routine per
   selected path, producing a static MicroRAM image.
3. :class:`StaticSSMTEngine` — the runtime engine with the MicroRAM
   preloaded and runtime promotion disabled: no Path Cache training, no
   builder, no build latency and no warm-up ramp; spawning, aborts,
   violations and the Prediction Cache work exactly as in the dynamic
   engine (a violated routine is simply dropped, since there is no
   builder to rebuild it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.branch.unit import BranchPredictorComplex
from repro.core.builder import MicrothreadBuilder
from repro.core.microthread import Microthread
from repro.core.path import PathKey, PathTracker
from repro.core.prb import PostRetirementBuffer
from repro.core.ssmt import SSMTConfig, SSMTEngine
from repro.sim.trace import Trace
from repro.uarch.config import MachineConfig, TABLE3_BASELINE
from repro.uarch.timing import OoOTimingModel, TimingResult
from repro.valuepred import PredictorTrainer


@dataclass
class ProfiledPath:
    """One difficult path discovered by offline profiling."""

    key: PathKey
    occurrences: int
    mispredicts: int

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.occurrences if self.occurrences else 0.0


def profile_difficult_paths(
    trace: Trace,
    n: int = 10,
    threshold: float = 0.10,
    min_occurrences: int = 8,
    warmup: Optional[int] = None,
    predictor: Optional[BranchPredictorComplex] = None,
) -> List[ProfiledPath]:
    """Offline pass: find every path whose terminating branch mispredicts
    above ``threshold``, with no table-capacity limits.

    Returns paths sorted by misprediction count (most damaging first) so
    callers can cap the static MicroRAM budget meaningfully.
    """
    if warmup is None:
        warmup = len(trace) // 4
    unit = predictor if predictor is not None else BranchPredictorComplex()
    tracker = PathTracker(n)
    stats: Dict[PathKey, List[int]] = {}
    for idx, rec in enumerate(trace.records):
        if not rec.inst.is_control:
            continue
        outcome = unit.process(rec)
        event = tracker.observe(rec, idx)
        if event is None or event.partial or idx < warmup:
            continue
        tally = stats.setdefault(event.key, [0, 0])
        tally[0] += 1
        tally[1] += outcome.mispredicted

    selected = [
        ProfiledPath(key, occurrences, mispredicts)
        for key, (occurrences, mispredicts) in stats.items()
        if occurrences >= min_occurrences
        and mispredicts / occurrences > threshold
    ]
    selected.sort(key=lambda p: p.mispredicts, reverse=True)
    return selected


def prebuild_microthreads(
    trace: Trace,
    paths: List[ProfiledPath],
    config: Optional[SSMTConfig] = None,
    build_instance: int = 2,
) -> List[Microthread]:
    """Second profiling pass: build one routine per selected path.

    ``build_instance`` selects which post-warm-up dynamic occurrence of a
    path to build from (later instances see warmer value predictors).
    Routines come back with ``available_cycle == 0`` — a static image.
    """
    config = config or SSMTConfig()
    wanted = {p.key for p in paths}
    seen_counts: Dict[PathKey, int] = {}
    tracker = PathTracker(config.n, config.path_id_bits)
    prb = PostRetirementBuffer(config.prb_capacity)
    trainer = PredictorTrainer()
    builder = MicrothreadBuilder(config.builder_config())
    threads: Dict[PathKey, Microthread] = {}

    warmup = len(trace) // 4
    for idx, rec in enumerate(trace.records):
        flags = trainer.observe(rec)
        prb.insert(rec, idx, *flags)
        event = tracker.observe(rec, idx)
        if event is None or event.partial or idx < warmup:
            continue
        key = event.key
        if key not in wanted or key in threads:
            continue
        seen_counts[key] = seen_counts.get(key, 0) + 1
        if seen_counts[key] < build_instance:
            continue
        builder.busy_until = 0  # offline build: latency is irrelevant
        thread = builder.request(event, prb, now_cycle=0)
        if thread is not None:
            thread.available_cycle = 0
            threads[key] = thread
    return list(threads.values())


class StaticSSMTEngine(SSMTEngine):
    """Runtime engine with a preloaded, fixed MicroRAM.

    Promotion, demotion and rebuilds are disabled; everything downstream
    of the MicroRAM (spawn filtering, microcontexts, aborts, violations,
    the Prediction Cache and early/late recovery) is inherited unchanged.
    """

    def __init__(self, threads: List[Microthread],
                 config: Optional[SSMTConfig] = None,
                 initial_memory: Optional[Dict[int, int]] = None):
        super().__init__(config, initial_memory)
        for thread in threads:
            self.microram.insert(thread)

    def on_retire(self, idx: int, rec, retire_cycle: int) -> None:
        inst = rec.inst
        if inst.is_store:
            for violated in self.spawner.on_store_retired(rec.ea, idx,
                                                          retire_cycle):
                self.prediction_cache.invalidate_writer(violated)
                self.microram.remove(violated.thread.key)
        if inst.is_control and rec.taken:
            for aborted in self.spawner.on_taken_control(rec.pc, idx,
                                                         retire_cycle):
                if aborted.arrival_cycle > retire_cycle:
                    self.prediction_cache.invalidate_writer(aborted)
        self.tracker.observe(rec, idx)
        # No Path Cache training in static mode, but the inherited
        # on_control still stashes outcomes: consume them so the stash
        # stays empty.
        self._pending_mispredict.pop(idx, None)
        self.spawner.retire_past(idx)
        # Value/address predictors still train at run time: Vp/Ap
        # micro-instructions query live predictor state.
        self.trainer.observe(rec)
        dest = inst.dest_reg()
        if dest is not None:
            self.reg_values[dest] = rec.result
        if inst.is_store:
            self.memory[rec.ea] = rec.result


def run_profile_guided(
    trace: Trace,
    config: Optional[SSMTConfig] = None,
    machine: MachineConfig = TABLE3_BASELINE,
    max_routines: Optional[int] = None,
    profile_trace: Optional[Trace] = None,
) -> Tuple[TimingResult, StaticSSMTEngine]:
    """Profile, prebuild, then run the static engine over ``trace``.

    ``profile_trace`` allows profiling on a different (training) input,
    as a compiler would; it defaults to ``trace`` itself.
    """
    config = config or SSMTConfig()
    source = profile_trace if profile_trace is not None else trace
    paths = profile_difficult_paths(source, n=config.n,
                                    threshold=config.difficulty_threshold)
    if max_routines is not None:
        paths = paths[:max_routines]
    threads = prebuild_microthreads(source, paths, config)
    engine = StaticSSMTEngine(threads, config,
                              initial_memory=trace.initial_memory)
    model = OoOTimingModel(machine)
    result = model.run(trace, BranchPredictorComplex(), listener=engine)
    return result, engine
