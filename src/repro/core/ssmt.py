"""The full SSMT difficult-path branch prediction engine (paper §4).

:class:`SSMTEngine` implements the timing model's listener protocol and
wires together every structure the paper describes:

* at **fetch** — spawn checks against the MicroRAM, pre-allocation path
  filtering, microcontext allocation, microthread functional execution
  and timing (consuming shared issue slots), and ``Store_PCache`` writes
  into the Prediction Cache;
* at **prediction** — ``(Path_Id, Seq_Num)`` Prediction Cache lookups
  feeding early predictions or late early-recoveries (handled by the
  timing engine);
* at **retire** — Path Cache training and promotion/demotion, the
  Microthread Builder, value/address predictor training, PRB insertion,
  the ``Path_History`` abort mechanism and memory-dependence violation
  rebuilds.

``use_predictions=False`` yields the paper's "overhead only"
configuration (Figure 7's third bar): microthreads spawn, execute and
consume resources (including their cache-warming side-effects) but their
predictions are never consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.branch.unit import BranchOutcome, BranchPredictorComplex
from repro.core.builder import BuilderConfig, MicrothreadBuilder
from repro.core.events import EventLog
from repro.core.microram import MicroRAM
from repro.core.microthread import Microthread
from repro.core.path import (
    DEFAULT_PATH_ID_BITS,
    PathEvent,
    PathKey,
    PathTracker,
)
from repro.core.path_cache import PathCache, PathCacheConfig
from repro.core.prb import PostRetirementBuffer
from repro.core.prediction_cache import (
    PredictionCache,
    PredictionCacheEntry,
)
from repro.core.spawn import ActiveMicrothread, SpawnManager
from repro.sim.trace import DynamicInstruction, Trace
from repro.uarch.config import MachineConfig, TABLE3_BASELINE
from repro.uarch.timing import OoOTimingModel, PredictionEntry, TimingResult
from repro.valuepred import AddressPredictor, PredictorTrainer, StridePredictor

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.telemetry.session import TelemetrySession
    from repro.verify.sanitizer import SimSanitizer
    from repro.verify.static import BuildVerifier


@dataclass
class SSMTConfig:
    """All knobs of the mechanism, with the paper's defaults."""

    n: int = 10                          # path length (Figure 7 uses 10)
    difficulty_threshold: float = 0.10   # T
    path_id_bits: int = DEFAULT_PATH_ID_BITS
    path_cache_entries: int = 8192
    path_cache_assoc: int = 8
    training_interval: int = 32
    allocate_on_mispredict_only: bool = True
    difficulty_aware_lru: bool = True
    prb_capacity: int = 512
    mcb_capacity: int = 64
    build_latency: int = 100
    builder_ports: int = 1
    pruning: bool = True
    move_elimination: bool = True
    constant_propagation: bool = True
    microram_entries: int = 8192
    prediction_cache_entries: int = 128
    n_contexts: int = 32
    use_predictions: bool = True
    abort_enabled: bool = True
    spawn_dispatch_latency: int = 3
    vp_latency: int = 2
    confidence_threshold: int = 4
    #: Usefulness-feedback throttling (the paper's §5.3 future work:
    #: "feedback mechanisms to throttle microthread usage").  When
    #: enabled, a promoted path whose consumed predictions are
    #: persistently unhelpful (late_harmful or useless) is demoted.
    throttle_enabled: bool = False
    throttle_window: int = 16
    #: demote when at least this fraction of a window's consumed
    #: predictions did not help (i.e. did not correct a hardware
    #: mispredict).  Lower values throttle harder: they contain overhead
    #: on well-predicted code sooner but sacrifice paths whose rarer
    #: corrections still carry wins.  0.85 balances the two on both the
    #: suite and the kernel workloads.
    throttle_useless_fraction: float = 0.85
    #: Rebuild-on-violation policy (paper §4.2.4).  1 reproduces the
    #: paper's simple immediate rebuild; higher values implement the
    #: "more advanced rebuilding approach [that corrects] only
    #: speculations that cause repeated violations".
    rebuild_violation_threshold: int = 1
    #: Ablation of the paper's core idea (§3.2.1): classify difficulty
    #: per static *branch* instead of per path.  One routine per branch
    #: (instead of per path), predictions keyed by branch identity alone,
    #: spawning on every reaching path — the "previous studies" strawman
    #: the paper's difficult-path classification improves on.
    classify_by_branch: bool = False

    def __post_init__(self):
        if self.n <= 0:
            raise ValueError("path length n must be positive")
        if not 0.0 <= self.difficulty_threshold <= 1.0:
            raise ValueError("difficulty threshold must be in [0, 1]")
        if self.n_contexts <= 0:
            raise ValueError("need at least one microcontext")
        if self.spawn_dispatch_latency < 0 or self.vp_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.throttle_window <= 0:
            raise ValueError("throttle window must be positive")
        if not 0.0 < self.throttle_useless_fraction <= 1.0:
            raise ValueError("throttle fraction must be in (0, 1]")
        if self.rebuild_violation_threshold <= 0:
            raise ValueError("rebuild threshold must be positive")

    def path_cache_config(self) -> PathCacheConfig:
        return PathCacheConfig(
            entries=self.path_cache_entries,
            assoc=self.path_cache_assoc,
            training_interval=self.training_interval,
            difficulty_threshold=self.difficulty_threshold,
            allocate_on_mispredict_only=self.allocate_on_mispredict_only,
            difficulty_aware_lru=self.difficulty_aware_lru,
        )

    def builder_config(self) -> BuilderConfig:
        return BuilderConfig(
            mcb_capacity=self.mcb_capacity,
            build_latency=self.build_latency,
            pruning=self.pruning,
            move_elimination=self.move_elimination,
            constant_propagation=self.constant_propagation,
            ports=self.builder_ports,
        )


class SSMTEngine:
    """Listener implementing the complete mechanism; see module docstring."""

    def __init__(self, config: Optional[SSMTConfig] = None,
                 initial_memory: Optional[Dict[int, int]] = None,
                 event_log: Optional[EventLog] = None,
                 verifier: Optional["BuildVerifier"] = None,
                 sanitizer: Optional["SimSanitizer"] = None,
                 telemetry: Optional["TelemetrySession"] = None):
        self.config = config or SSMTConfig()
        self.event_log = event_log
        #: optional static verifier, run over every successfully built
        #: routine while its extraction window is still PRB-resident
        self.verifier = verifier
        #: optional runtime invariant sanitizer ("simsan"); ``None``
        #: keeps the hooks at a single identity test per site
        self.sanitizer = sanitizer
        #: optional telemetry session (registry + interval sampler +
        #: lifecycle tracer); same opt-in cost model as the sanitizer
        self.telemetry = telemetry
        cfg = self.config
        self.tracker = PathTracker(cfg.n, cfg.path_id_bits)
        self.trainer = PredictorTrainer(
            StridePredictor(confidence_threshold=cfg.confidence_threshold),
            AddressPredictor(confidence_threshold=cfg.confidence_threshold),
        )
        self.prb = PostRetirementBuffer(cfg.prb_capacity)
        self.path_cache = PathCache(cfg.path_cache_config())
        self.builder = MicrothreadBuilder(cfg.builder_config())
        self.microram = MicroRAM(cfg.microram_entries)
        self.prediction_cache = PredictionCache(cfg.prediction_cache_entries)
        tracer = telemetry.tracer if telemetry is not None else None
        self.spawner = SpawnManager(cfg.n_contexts, cfg.abort_enabled,
                                    event_log=event_log, tracer=tracer)
        self._timing_model: Optional[OoOTimingModel] = None
        self.reg_values = [0] * 32
        self.memory: Dict[int, int] = dict(initial_memory or {})
        self._pending_mispredict: Dict[int, bool] = {}
        self.prediction_kind_counts: Dict[str, int] = {}
        self.correct_microthread_predictions = 0
        self.incorrect_microthread_predictions = 0
        # throttling feedback state: per-path consumed-prediction tallies
        self._throttle_tallies: Dict[PathKey, List[int]] = {}
        self._throttled: Set[PathKey] = set()
        self.throttled_paths = 0
        # repeated-violation rebuild policy state
        self._violation_counts: Dict[PathKey, int] = {}
        # -- hot-path bindings -------------------------------------------
        # ``on_retire``/``on_fetch`` run once per instruction; these
        # bound methods avoid re-resolving two attribute hops per call.
        # The subsystems are never reassigned after construction.
        self._trainer_observe = self.trainer.observe
        self._prb_insert = self.prb.insert
        self._tracker_observe = self.tracker.observe
        self._spawner_retire_past = self.spawner.retire_past
        self._routines_at = self.microram.routines_at
        #: all observability hooks detached — the telemetry-off fast
        #: path through the retire loop skips their dispatch entirely
        self._quiet = (event_log is None and sanitizer is None
                       and telemetry is None)
        #: per-retire telemetry callable, bound once (see
        #: ``TelemetrySession.retire_hook`` for why the session's
        #: pass-through ``on_retire`` is not on the hot path)
        self._telemetry_retire = (telemetry.retire_hook
                                  if telemetry is not None else None)
        #: per-terminating-branch observability callable, bound once
        #: (``None`` for plain telemetry sessions; see
        #: ``TelemetrySession.control_hook``)
        self._telemetry_control = (telemetry.control_hook
                                   if telemetry is not None else None)
        if telemetry is not None:
            telemetry.attach(self)

    # -- memory / predictor closures for microthread execution ----------------

    def _memory_read(self, ea: int) -> int:
        return self.memory.get(ea, 0)

    def _value_predict(self, pc: int, ahead: int) -> Optional[int]:
        return self.trainer.value_predictor.predict(pc, ahead)

    def _address_predict(self, pc: int, ahead: int) -> Optional[int]:
        return self.trainer.address_predictor.predict(pc, ahead)

    # -- listener protocol -------------------------------------------------------

    def on_fetch(self, idx: int, rec: DynamicInstruction, fetch_cycle: int,
                 engine: OoOTimingModel) -> None:
        routines = self._routines_at(rec.pc)
        if not routines:
            return
        recent = self.tracker.current_branches()
        log = self.event_log
        for thread in list(routines):
            if thread.available_cycle > fetch_cycle:
                continue
            # Spawn rejections (pre-allocation aborts, context exhaustion)
            # are emitted by the SpawnManager itself, so no outcome can
            # bypass the event log.
            instance = self.spawner.attempt_spawn(thread, idx, fetch_cycle,
                                                  recent)
            if instance is not None:
                self.microram.touch(thread.key)
                self._run_microthread(instance, idx, fetch_cycle, engine)
                if log is not None:
                    log.emit("spawn", idx, fetch_cycle, thread.term_pc,
                             f"sep={thread.separation}")

    def lookup_prediction(self, idx: int, rec: DynamicInstruction,
                          fetch_cycle: int) -> Optional[PredictionEntry]:
        if not self.config.use_predictions:
            return None
        if self.config.classify_by_branch:
            lookup_id = rec.pc & ((1 << self.config.path_id_bits) - 1)
        else:
            lookup_id = self.tracker.current_path_id()
        entry = self.prediction_cache.lookup(lookup_id, idx)
        if entry is None:
            return None
        if self.telemetry is not None:
            self.telemetry.note_lookup(idx, entry.writer, fetch_cycle)
        return PredictionEntry(entry.taken, entry.target, entry.arrival_cycle)

    def on_control(self, idx: int, rec: DynamicInstruction,
                   outcome: BranchOutcome, fetch_cycle: int,
                   resolve_cycle: int) -> None:
        if rec.inst.is_path_terminating:
            self._pending_mispredict[idx] = outcome.mispredicted
            control_hook = self._telemetry_control
            if control_hook is not None:
                control_hook(self, idx, rec, outcome, fetch_cycle,
                             resolve_cycle)

    def on_prediction_outcome(self, idx: int, rec: DynamicInstruction,
                              kind: str, used: bool, correct: bool,
                              hw_mispredict: bool) -> None:
        self.prediction_kind_counts[kind] = \
            self.prediction_kind_counts.get(kind, 0) + 1
        if kind != "useless":
            if correct:
                self.correct_microthread_predictions += 1
            else:
                self.incorrect_microthread_predictions += 1
        if self.event_log is not None:
            self.event_log.emit(
                "prediction", idx, 0, rec.pc,
                f"{kind} correct={correct} hw_mis={hw_mispredict}")
        if self.telemetry is not None:
            self.telemetry.on_outcome(idx, rec, kind, correct)
        if self.config.throttle_enabled:
            self._throttle_feedback(rec, kind, correct, hw_mispredict)

    def _throttle_feedback(self, rec: DynamicInstruction, kind: str,
                           correct: bool, hw_mispredict: bool) -> None:
        """Demote paths whose predictions persistently do not help.

        A consumed prediction is *helpful* when it changed the outcome
        for the better: an early or late prediction that was correct
        while the hardware was wrong.  Everything else (useless arrivals,
        harmful disagreements, predictions merely confirming a correct
        hardware prediction) counts against the path.
        """
        key, _ = self._classification_identity(
            PathKey(rec.pc, self.tracker.current_branches()), 0)
        helpful = correct and hw_mispredict and kind in (
            "early", "late_useful")
        tally = self._throttle_tallies.setdefault(key, [0, 0])
        tally[0] += 1
        tally[1] += 0 if helpful else 1
        if tally[0] >= self.config.throttle_window:
            if tally[1] / tally[0] >= self.config.throttle_useless_fraction:
                self._throttled.add(key)
                self.throttled_paths += 1
                self._demote(key, self._key_id(key))
            self._throttle_tallies[key] = [0, 0]

    def on_retire(self, idx: int, rec: DynamicInstruction,
                  retire_cycle: int) -> None:
        inst = rec.inst
        quiet = self._quiet  # all observability hooks detached

        # Memory-dependence violation: a store hits an address a live
        # microthread already read -> abort and rebuild (paper §4.2.4).
        is_store = inst.is_store
        if is_store and rec.ea is not None and self.spawner.active:
            self._retire_store_violation(idx, rec, retire_cycle)

        # Path_History deviation aborts (paper §4.3.2).  The SpawnManager
        # emits the ``active_abort`` event itself.
        if inst.is_control and rec.taken and self.spawner.active:
            self._retire_taken_control(idx, rec, retire_cycle)

        # Predictor training and PRB insertion (paper §4.2.2, §4.2.5).
        # This happens before promotion handling so that, when the builder
        # is invoked for this branch, the branch is the PRB's youngest
        # entry ("as it just retired").
        value_conf, addr_conf = self._trainer_observe(rec)
        self._prb_insert(rec, idx, value_conf, addr_conf)

        # Path Cache training and promotion/demotion (paper §4.1, §4.2.1).
        event = self._tracker_observe(rec, idx)
        if event is not None:
            # Always consume the stashed outcome, including for partial
            # (warm-up) events, so the stash cannot accumulate entries.
            mispredicted = self._pending_mispredict.pop(idx, False)
            if not event.partial:
                self._retire_path_event(event, mispredicted, retire_cycle)

        self._spawner_retire_past(idx, retire_cycle)

        # Architectural state for microthread live-ins / memory view.
        dest = inst.dest
        if dest is not None:
            self.reg_values[dest] = rec.result
        if is_store and rec.ea is not None:
            self.memory[rec.ea] = rec.result

        if quiet:
            return  # fast path: no sanitizer / telemetry dispatch
        if self.sanitizer is not None:
            self.sanitizer.on_retire(self, idx, rec)
        telemetry_retire = self._telemetry_retire
        if telemetry_retire is not None:
            telemetry_retire(self, idx, retire_cycle)

    # -- retire-loop rare paths (shared with the batched kernel) ---------------
    # These are the single source of truth for the retire loop's
    # conditional blocks: ``on_retire`` above (the scalar path) and the
    # fused loop in :mod:`repro.kernel.batched` both dispatch into them,
    # so the two kernels cannot drift apart behaviourally.

    def _retire_store_violation(self, idx: int, rec: DynamicInstruction,
                                retire_cycle: int) -> None:
        """A store retired with live microthreads: check memory-dependence
        violations and apply the rebuild policy (paper §4.2.4)."""
        log = self.event_log
        for violated in self.spawner.on_store_retired(rec.ea, idx,
                                                      retire_cycle):
            self.prediction_cache.invalidate_writer(violated)
            if self.sanitizer is not None:
                self.sanitizer.note_violation(violated)
            key = violated.thread.key
            count = self._violation_counts.get(key, 0) + 1
            if log is not None:
                log.emit("violation", idx, retire_cycle,
                         violated.thread.term_pc, f"ea={rec.ea}")
            if count >= self.config.rebuild_violation_threshold:
                self._violation_counts[key] = 0
                self._schedule_rebuild(violated.thread)
            else:
                self._violation_counts[key] = count

    def _retire_taken_control(self, idx: int, rec: DynamicInstruction,
                              retire_cycle: int) -> None:
        """A taken control retired with live microthreads: advance
        Path_History suffix matching, aborting deviators (paper §4.3.2)."""
        for aborted in self.spawner.on_taken_control(rec.pc, idx,
                                                     retire_cycle):
            if aborted.arrival_cycle > retire_cycle:
                # Store_PCache had not completed: the write never lands.
                self.prediction_cache.invalidate_writer(aborted)

    def _retire_path_event(self, event: PathEvent, mispredicted: bool,
                           retire_cycle: int) -> None:
        """A complete path event retired: train the Path Cache and apply
        any promotion/demotion decision (paper §4.1, §4.2.1)."""
        classify_key, classify_id = self._classification_identity(
            event.key, event.path_id)
        promotion = self.path_cache.update(classify_key, classify_id,
                                           mispredicted)
        if self.sanitizer is not None:
            self.sanitizer.note_path_update(self, classify_key, classify_id)
        if promotion is not None:
            if promotion.promote:
                self._promote(event, retire_cycle)
            else:
                self._demote(classify_key, classify_id)

    # -- run lifecycle (timing-model listener extensions) ------------------------

    def on_run_start(self, model: OoOTimingModel, trace: Trace) -> None:
        """Called by the timing model before its main loop."""
        self._timing_model = model
        if self.telemetry is not None:
            self.telemetry.on_run_start(model, trace)

    def on_run_end(self, result: TimingResult,
                   model: OoOTimingModel) -> None:
        """Called by the timing model after its main loop."""
        if self.telemetry is not None:
            self.telemetry.on_run_end(self, result)

    def live_timing_result(self) -> Optional[TimingResult]:
        """The in-progress :class:`TimingResult` of the current run, if a
        run is active (used by the interval sampler)."""
        model = self._timing_model
        return model.result if model is not None else None

    # -- promotion machinery ---------------------------------------------------

    def _classification_identity(self, key: PathKey,
                                 path_id: int) -> Tuple[PathKey, int]:
        """The identity difficulty is tracked under: the full path (the
        paper's mechanism) or the bare branch (the ablation)."""
        if self.config.classify_by_branch:
            branch_key = PathKey(key.term_pc, ())
            return branch_key, self._key_id(branch_key)
        return key, path_id

    def _key_id(self, key: PathKey) -> int:
        """The cache-indexing id for a classification key."""
        if self.config.classify_by_branch:
            return key.term_pc & ((1 << self.config.path_id_bits) - 1)
        return key.path_id(self.config.path_id_bits)

    def _promote(self, event: PathEvent, now_cycle: int) -> None:
        classify_key, classify_id = self._classification_identity(
            event.key, event.path_id)
        if classify_key in self._throttled:
            return  # usefulness feedback barred this path
        if self.telemetry is not None:
            self.telemetry.on_promote(event, now_cycle)
        thread = self.builder.request(event, self.prb, now_cycle)
        if thread is None:
            if self.event_log is not None:
                self.event_log.emit("build_failed", event.branch_idx,
                                    now_cycle, event.key.term_pc)
            if self.telemetry is not None:
                self.telemetry.on_build_failed(event, now_cycle,
                                               "builder busy or extraction "
                                               "failed")
            return  # builder busy/failed; Promoted stays clear, will retry
        if self.telemetry is not None:
            self.telemetry.on_build(thread, event, now_cycle,
                                    thread.available_cycle - now_cycle)
        if self.verifier is not None:
            # Audit while the extraction window is still PRB-resident
            # (and before the classify-by-branch key rewrite below).
            self.verifier.verify_built(thread, self.prb)
        if self.event_log is not None:
            self.event_log.emit(
                "build", event.branch_idx, now_cycle, event.key.term_pc,
                f"size={thread.routine_size} chain={thread.longest_chain} "
                f"sep={thread.separation}")
            self.event_log.emit("promote", event.branch_idx, now_cycle,
                                event.key.term_pc)
        if self.config.classify_by_branch:
            # One routine per branch, predictions keyed by branch identity.
            thread.key = classify_key
            thread.path_id = classify_id
        evicted = self.microram.insert(thread)
        if evicted is not None:
            self.path_cache.mark_promoted(evicted, self._key_id(evicted),
                                          False)
        self.path_cache.mark_promoted(classify_key, classify_id, True)
        if self.sanitizer is not None:
            self.sanitizer.note_promote(classify_key)

    def _demote(self, key: PathKey, path_id: int) -> None:
        self.microram.remove(key)
        self.path_cache.mark_promoted(key, path_id, False)
        if self.sanitizer is not None:
            self.sanitizer.note_demote(key)
        if self.event_log is not None:
            self.event_log.emit("demote", 0, 0, key.term_pc)
        if self.telemetry is not None:
            self.telemetry.on_demote(key.term_pc)

    def _schedule_rebuild(self, thread: Microthread) -> None:
        """Demote a violated routine; re-promotion rebuilds it against a
        PRB that now contains the conflicting store."""
        self.builder.stats.rebuilds += 1
        self._demote(thread.key, self._key_id(thread.key))

    # -- microthread execution -----------------------------------------------

    def _run_microthread(self, instance: ActiveMicrothread, idx: int,
                         fetch_cycle: int, engine: OoOTimingModel) -> None:
        cfg = self.config
        thread = instance.thread
        live_in_values = {reg: self.reg_values[reg]
                          for reg in thread.live_in_regs}
        prediction = thread.execute(
            live_in_values, self._memory_read,
            self._value_predict, self._address_predict,
        )
        instance.prediction = prediction
        instance.load_set = frozenset(prediction.loads_read)

        # Timing: one topological walk over the routine, claiming shared
        # issue slots and decode/rename bandwidth so microthread overhead
        # is visible to the primary thread.
        engine.add_frontend_debt(thread.routine_size)
        dispatch = fetch_cycle + cfg.spawn_dispatch_latency
        ready: Dict[int, int] = {}
        loads = iter(prediction.loads_read)
        completion = dispatch
        arrival = dispatch
        for node in thread.nodes:
            if node.kind == "livein":
                ready[node.uid] = max(dispatch, engine.reg_ready[node.reg])
                continue
            earliest = dispatch
            for child in node.inputs:
                t = ready[child.uid]
                if t > earliest:
                    earliest = t
            slot = engine.alloc_issue_slot(earliest)
            if node.kind == "load":
                latency = engine.caches.load_latency(next(loads), slot)
            elif node.kind in ("vp", "ap"):
                latency = cfg.vp_latency
            elif node.kind == "op" and node.op is not None:
                latency = engine.op_latency(node.op)
            else:  # const, branch (Store_PCache)
                latency = 1
            done = slot + latency
            ready[node.uid] = done
            if done > completion:
                completion = done
            if node.kind == "branch":
                arrival = done
        self.spawner.commit_timing(instance, completion, arrival)
        if self.telemetry is not None:
            self.telemetry.on_execute(instance, dispatch)

        entry = PredictionCacheEntry(prediction.taken, prediction.target,
                                     arrival, writer=instance)
        self.prediction_cache.write(thread.path_id, instance.target_seq,
                                    entry, current_seq=idx)

    # -- reporting ---------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """Aggregate statistics from every subsystem."""
        return {
            "path_cache": self.path_cache.stats,
            "builder": self.builder.stats,
            "spawn": self.spawner.stats,
            "prediction_cache": self.prediction_cache.stats,
            "prediction_kinds": dict(self.prediction_kind_counts),
            "microram_routines": len(self.microram),
            "microthread_correct": self.correct_microthread_predictions,
            "microthread_incorrect": self.incorrect_microthread_predictions,
            "throttled_paths": self.throttled_paths,
        }


def run_ssmt(
    trace: Trace,
    config: Optional[SSMTConfig] = None,
    machine: MachineConfig = TABLE3_BASELINE,
    predictor: Optional[BranchPredictorComplex] = None,
    verifier: Optional["BuildVerifier"] = None,
    sanitizer: Optional["SimSanitizer"] = None,
    telemetry: Optional["TelemetrySession"] = None,
    event_log: Optional[EventLog] = None,
    kernel: str = "scalar",
    sample: Optional[object] = None,
) -> Tuple[TimingResult, SSMTEngine]:
    """Run the full SSMT machine over ``trace``; returns timing + engine.

    ``kernel`` selects the retire-loop implementation: ``"scalar"`` (the
    per-record reference loop) or ``"batched"`` (the predecoded-column
    kernel of :mod:`repro.kernel`, bit-identical and faster).  ``sample``
    takes a :class:`~repro.kernel.sampling.SampleSpec` to run sampled
    simulation (detailed windows + functional fast-forward) instead of
    the exact full run.  Both imports are deferred so the default path
    never touches :mod:`repro.kernel`.
    """
    engine = SSMTEngine(config, initial_memory=trace.initial_memory,
                        event_log=event_log,
                        verifier=verifier, sanitizer=sanitizer,
                        telemetry=telemetry)
    predictor = predictor if predictor is not None else BranchPredictorComplex()
    if sample is not None:
        from repro.kernel.sampling import run_sampled

        result = run_sampled(trace, predictor, sample, machine=machine,
                             engine=engine)
        return result, engine
    if kernel == "batched":
        from repro.kernel.batched import BatchedOoOTimingModel

        model: OoOTimingModel = BatchedOoOTimingModel(machine)
    elif kernel == "scalar":
        model = OoOTimingModel(machine)
    else:
        raise ValueError(f"unknown kernel {kernel!r}; "
                         f"expected 'scalar' or 'batched'")
    result = model.run(trace, predictor, listener=engine)
    return result, engine
