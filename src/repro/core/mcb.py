"""Microthread Construction Buffer optimizations (paper §4.2.3, §4.2.5).

All passes are rewrites of the microthread data-flow graph:

* **Move elimination** — ``MOV`` nodes forward their input.
* **Constant propagation** — operations whose inputs are all constants
  fold into ``const`` nodes (the hardware analogue lives in fill-unit
  literature the paper cites).
* **Pruning** — nodes whose producing instruction is value-confident are
  replaced by ``Vp_Inst`` nodes; loads whose base address is
  address-confident get their base sub-tree replaced by an ``Ap_Inst``.
  Dead sub-trees disappear because the final routine is rebuilt from
  whatever remains reachable from the ``Store_PCache`` root.

Each pass returns the (possibly unchanged) root; callers re-linearize
with :func:`repro.core.microthread.topological_order`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.microthread import MicroOp, topological_order
from repro.isa.instructions import Opcode
from repro.sim.functional import alu_op

_MASK = (1 << 64) - 1

_IMM_TO_REG = {
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SLTI: Opcode.SLT,
}


def _rewire(root: MicroOp, replacements: Dict[int, MicroOp]) -> MicroOp:
    """Apply a uid->node replacement map across the whole graph."""
    if not replacements:
        return root

    def resolve(node: MicroOp) -> MicroOp:
        while node.uid in replacements:
            node = replacements[node.uid]
        return node

    for node in topological_order(root):
        node.inputs = [resolve(child) for child in node.inputs]
    return resolve(root)


def move_elimination(root: MicroOp) -> Tuple[MicroOp, int]:
    """Drop MOV nodes, wiring consumers directly to the moved value."""
    replacements: Dict[int, MicroOp] = {}
    for node in topological_order(root):
        if node.kind == "op" and node.op == Opcode.MOV and node.inputs:
            replacements[node.uid] = node.inputs[0]
    return _rewire(root, replacements), len(replacements)


def constant_propagation(root: MicroOp) -> Tuple[MicroOp, int]:
    """Fold operations over known constants into ``const`` nodes."""
    replacements: Dict[int, MicroOp] = {}
    folded = 0

    def as_const(node: MicroOp) -> Optional[int]:
        node = replacements.get(node.uid, node)
        return node.imm if node.kind == "const" else None

    for node in topological_order(root):
        if node.kind != "op" or node.op in (Opcode.LI, Opcode.MOV):
            continue
        const_inputs = [as_const(child) for child in node.inputs]
        if any(value is None for value in const_inputs) or not const_inputs:
            continue
        value = _fold(node, const_inputs)
        if value is None:
            continue
        replacements[node.uid] = MicroOp("const", imm=value, pc=node.pc,
                                         order=node.order)
        folded += 1
    return _rewire(root, replacements), folded


def _fold(node: MicroOp, const_inputs: List[int]) -> Optional[int]:
    op = node.op
    a = const_inputs[0]
    if op == Opcode.ADDI:
        return (a + node.imm) & _MASK
    if op in _IMM_TO_REG:
        return alu_op(_IMM_TO_REG[op], a, node.imm & _MASK)
    if len(const_inputs) > 1:
        try:
            return alu_op(op, a, const_inputs[1])
        except Exception:
            return None
    return None


def prune(
    root: MicroOp,
    value_confident: Callable[[MicroOp], bool],
    address_confident: Callable[[MicroOp], bool],
) -> Tuple[MicroOp, int, int]:
    """Replace predictable sub-trees with ``Vp_Inst``/``Ap_Inst`` nodes.

    ``value_confident`` / ``address_confident`` are predicates over nodes
    (the builder wires them to the confidence snapshots stored in the
    PRB).  Returns ``(root, value_pruned, address_pruned)``.
    """
    replacements: Dict[int, MicroOp] = {}
    value_pruned = 0
    address_pruned = 0
    for node in topological_order(root):
        if node.kind in ("op", "load") and value_confident(node):
            replacements[node.uid] = MicroOp(
                "vp", pc=node.pc, order=node.order, ahead=1
            )
            value_pruned += 1
        elif node.kind == "load" and node.inputs and address_confident(node):
            base = node.inputs[0]
            if base.kind in ("const", "ap", "livein"):
                continue  # nothing to win
            # The Ap_Inst supplies the base register value; the load stays.
            node.inputs[0] = MicroOp("ap", pc=node.pc, order=node.order,
                                     ahead=1)
            address_pruned += 1
    root = _rewire(root, replacements)
    return root, value_pruned, address_pruned
