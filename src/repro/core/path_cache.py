"""The Path Cache (paper §4.1, §4.2.1).

A back-end, set-associative structure indexed by ``Path_Id`` that tracks
per-path occurrence and misprediction counters over a *training
interval*.  At the end of each interval the measured misprediction rate
is compared to the difficulty threshold ``T`` and the entry's
``Difficult`` bit is set accordingly; the counters then reset.

Two paper-specific policies:

* **Allocate on mispredict** — a new entry is allocated only when the
  retiring terminating branch was mispredicted by the hardware predictor
  ("roughly 45% of the possible allocations can be ignored").
* **Difficulty-aware LRU** — replacement prefers invalid entries, then
  the LRU entry among those without the Difficult bit, then plain LRU.

Promotion logic (§4.2.1): on every update, if ``Difficult`` is set but
``Promoted`` is not, a promotion request is emitted; a demotion request
is emitted when the Difficult bit falls while Promoted is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.path import PathKey
from repro.telemetry.registry import StatsBase


@dataclass
class PathCacheConfig:
    entries: int = 8192
    assoc: int = 8
    training_interval: int = 32
    difficulty_threshold: float = 0.10
    #: allocate entries only for mispredicted terminating branches
    allocate_on_mispredict_only: bool = True
    #: prefer evicting non-difficult entries
    difficulty_aware_lru: bool = True

    def __post_init__(self):
        if self.entries % self.assoc:
            raise ValueError("entries must be divisible by assoc")
        sets = self.entries // self.assoc
        if sets & (sets - 1):
            raise ValueError("number of sets must be a power of two")
        if not 0.0 <= self.difficulty_threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.training_interval <= 0:
            raise ValueError("training interval must be positive")


class _Entry:
    __slots__ = ("key", "occurrences", "mispredicts", "difficult",
                 "promoted", "lru_stamp")

    def __init__(self, key: PathKey):
        self.key = key
        self.occurrences = 0
        self.mispredicts = 0
        self.difficult = False
        self.promoted = False
        # Stamped by ``update`` (the sole caller of ``_allocate``): a
        # just-allocated entry and a just-hit entry take the stamp from
        # the same assignment, so the two paths cannot diverge.
        self.lru_stamp = 0


@dataclass
class PromotionEvent:
    """A promotion or demotion request emitted by the Path Cache."""

    key: PathKey
    promote: bool  # True = promote, False = demote


@dataclass
class PathCacheStats(StatsBase):
    """Path Cache counters; uniform export via :class:`StatsBase`."""

    updates: int = 0
    hits: int = 0
    allocations: int = 0
    allocations_avoided: int = 0  # misses not allocated (correctly predicted)
    evictions: int = 0
    difficult_evictions: int = 0
    promotions: int = 0
    demotions: int = 0

    @property
    def allocation_avoid_rate(self) -> float:
        total = self.allocations + self.allocations_avoided
        return self.allocations_avoided / total if total else 0.0


class PathCache:
    """Set-associative difficulty tracker; see module docstring."""

    def __init__(self, config: Optional[PathCacheConfig] = None):
        self.config = config or PathCacheConfig()
        self.n_sets = self.config.entries // self.config.assoc
        self._set_mask = self.n_sets - 1
        self._sets: List[Dict[PathKey, _Entry]] = [dict() for _ in range(self.n_sets)]
        self._stamp = 0
        self.stats = PathCacheStats()

    # -- main update (called at terminating-branch retire) -------------------

    def update(self, key: PathKey, path_id: int,
               mispredicted: bool) -> Optional[PromotionEvent]:
        """Record one dynamic occurrence of ``key``.

        ``path_id`` selects the set (it is what the hardware indexes by);
        ``key`` is the tag.  Returns a promotion/demotion request or None.
        """
        cfg = self.config
        self.stats.updates += 1
        self._stamp += 1
        ways = self._sets[path_id & self._set_mask]
        entry = ways.get(key)
        if entry is None:
            if cfg.allocate_on_mispredict_only and not mispredicted:
                self.stats.allocations_avoided += 1
                return None
            entry = self._allocate(ways, key)
        else:
            self.stats.hits += 1
        entry.lru_stamp = self._stamp
        entry.occurrences += 1
        if mispredicted:
            entry.mispredicts += 1
        if entry.occurrences >= cfg.training_interval:
            rate = entry.mispredicts / entry.occurrences
            entry.difficult = rate > cfg.difficulty_threshold
            entry.occurrences = 0
            entry.mispredicts = 0
        return self._promotion_check(entry)

    def _promotion_check(self, entry: _Entry) -> Optional[PromotionEvent]:
        if entry.difficult and not entry.promoted:
            return PromotionEvent(entry.key, promote=True)
        if not entry.difficult and entry.promoted:
            return PromotionEvent(entry.key, promote=False)
        return None

    def mark_promoted(self, key: PathKey, path_id: int, promoted: bool) -> None:
        """Set/clear the Promoted bit (called by the SSMT engine once the
        Microthread Builder accepts the request or the routine is evicted).

        Only *transitions* are counted: re-marking an already-promoted
        entry, or clearing one that was never promoted (both reachable
        from the MicroRAM-eviction path), must not move the counters, so
        ``stats.promotions``/``demotions`` always reconcile with the
        number of observed ``Promoted``-bit flips."""
        ways = self._sets[path_id & self._set_mask]
        entry = ways.get(key)
        if entry is not None:
            if promoted and not entry.promoted:
                self.stats.promotions += 1
            elif entry.promoted and not promoted:
                self.stats.demotions += 1
            entry.promoted = promoted

    # -- allocation / replacement ----------------------------------------------

    def _allocate(self, ways: Dict[PathKey, _Entry], key: PathKey) -> _Entry:
        cfg = self.config
        if len(ways) >= cfg.assoc:
            victim = self._choose_victim(ways)
            if ways[victim].difficult:
                self.stats.difficult_evictions += 1
            del ways[victim]
            self.stats.evictions += 1
        entry = _Entry(key)
        ways[key] = entry
        self.stats.allocations += 1
        return entry

    def _choose_victim(self, ways: Dict[PathKey, _Entry]) -> PathKey:
        if self.config.difficulty_aware_lru:
            easy = [k for k, e in ways.items() if not e.difficult]
            pool = easy if easy else list(ways)
        else:
            pool = list(ways)
        return min(pool, key=lambda k: ways[k].lru_stamp)

    # -- queries -------------------------------------------------------------

    def lookup(self, key: PathKey, path_id: int) -> Optional[_Entry]:
        return self._sets[path_id & self._set_mask].get(key)

    def entries(self) -> Iterator[Tuple[PathKey, _Entry]]:
        """Every resident ``(key, entry)`` pair (used by the sanitizer)."""
        for ways in self._sets:
            yield from ways.items()

    def is_difficult(self, key: PathKey, path_id: int) -> bool:
        entry = self.lookup(key, path_id)
        return entry is not None and entry.difficult

    def difficult_count(self) -> int:
        return sum(1 for ways in self._sets
                   for e in ways.values() if e.difficult)

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)
