"""Structured event logging for the SSMT engine.

Attach an :class:`EventLog` to :class:`~repro.core.ssmt.SSMTEngine` to
record the mechanism's decisions — promotions, demotions, builds,
spawns, aborts, violations, prediction consumptions — with their trace
indices and cycles.  Useful for debugging workload/mechanism
interactions ("why did this path never get promoted?") and for the
narrated walkthrough in ``examples/event_log.py``.

The log is bounded (a ring) so attaching it to long runs is safe.
Events that are counted but not stored — because a kind filter excludes
them, or because the ring evicted them — are tallied per kind in
:attr:`EventLog.dropped`, so ``counts`` and ``events`` can never
disagree silently: for every kind,
``counts[kind] == stored(kind) + dropped[kind]`` holds exactly.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

#: event kinds, for filtering
KINDS = (
    "promote", "demote", "build", "build_failed", "spawn",
    "pre_alloc_abort", "no_context", "active_abort", "violation",
    "prediction",
)


@dataclass
class Event:
    """One mechanism decision."""

    kind: str
    idx: int                 # trace index where it happened
    cycle: int               # machine cycle (0 when not cycle-anchored)
    term_pc: int             # terminating branch PC of the path involved
    detail: str = ""

    def __str__(self) -> str:
        return (f"[{self.idx:>8}] {self.kind:<16} branch@{self.term_pc}"
                + (f"  {self.detail}" if self.detail else ""))


class EventLog:
    """Bounded event recorder with per-kind counters."""

    def __init__(self, capacity: int = 10_000,
                 kinds: Optional[Iterable[str]] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if kinds is not None:
            unknown = set(kinds) - set(KINDS)
            if unknown:
                raise ValueError(f"unknown event kinds in filter: "
                                 f"{sorted(unknown)}")
        self.capacity = capacity
        self._filter = frozenset(kinds) if kinds is not None else None
        self.events: Deque[Event] = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        #: per-kind tally of events counted but not stored (kind-filtered
        #: or evicted by the ring); see the module docstring invariant
        self.dropped: Counter = Counter()

    def emit(self, kind: str, idx: int, cycle: int, term_pc: int,
             detail: str = "") -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        self.counts[kind] += 1
        if self._filter is not None and kind not in self._filter:
            self.dropped[kind] += 1
            return
        if len(self.events) == self.capacity:
            # The ring is about to evict its oldest event.
            self.dropped[self.events[0].kind] += 1
        self.events.append(Event(kind, idx, cycle, term_pc, detail))

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def for_branch(self, term_pc: int) -> List[Event]:
        """The life story of one terminating branch's paths."""
        return [e for e in self.events if e.term_pc == term_pc]

    def summary(self) -> Dict[str, int]:
        return dict(self.counts)

    def dropped_count(self, kind: Optional[str] = None) -> int:
        """Events counted but not stored, for ``kind`` or in total."""
        if kind is not None:
            return self.dropped[kind]
        return sum(self.dropped.values())

    def narrate(self, limit: int = 40) -> str:
        """The most recent events, one line each."""
        recent = list(self.events)[-limit:]
        return "\n".join(str(e) for e in recent)

    def __len__(self) -> int:
        return len(self.events)
