"""Post-Retirement Buffer (paper §4.2.2).

Stores the last ``i`` retired instructions (512 in the paper) together
with dependence information "computed during instruction execution":
for each source register the buffer position of its producer, and for
loads the position of the most recent in-buffer store to the same
address.  The Microthread Builder scans it youngest-to-oldest.

Entries also carry the value/address-predictor confidence snapshot taken
just before insertion (paper §4.2.5: "we access the current confidence
and store it with each retired instruction in the PRB").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.trace import DynamicInstruction


class PRBEntry:
    """One retired instruction with dependence links."""

    __slots__ = ("rec", "idx", "pos", "src_producers", "mem_producer",
                 "value_confident", "address_confident")

    def __init__(self, rec: DynamicInstruction, idx: int, pos: int,
                 src_producers: Tuple[Optional[int], ...],
                 mem_producer: Optional[int],
                 value_confident: bool, address_confident: bool):
        self.rec = rec
        self.idx = idx          # trace index
        self.pos = pos          # monotonic PRB position
        self.src_producers = src_producers
        self.mem_producer = mem_producer
        self.value_confident = value_confident
        self.address_confident = address_confident


class PostRetirementBuffer:
    """Ring buffer of the last ``capacity`` retired instructions."""

    __slots__ = ("capacity", "_ring", "_next_pos", "_reg_writer",
                 "_mem_writer")

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[PRBEntry]] = [None] * capacity
        self._next_pos = 0
        self._reg_writer: Dict[int, int] = {}
        self._mem_writer: Dict[int, int] = {}

    def insert(self, rec: DynamicInstruction, idx: int,
               value_confident: bool = False,
               address_confident: bool = False) -> PRBEntry:
        """Insert a retiring instruction; returns its entry.

        Runs once per retired instruction: producer positions are
        resolved with the liveness floor hoisted out of the loop instead
        of going through :meth:`_live_pos` per source.
        """
        pos = self._next_pos
        self._next_pos = pos + 1
        inst = rec.inst
        reg_writer = self._reg_writer
        floor = pos + 1 - self.capacity
        src_producers = tuple(
            p if p is not None and p >= floor else None
            for p in map(reg_writer.get, inst.srcs)
        )
        mem_producer = None
        if inst.is_load:
            p = self._mem_writer.get(rec.ea)
            mem_producer = p if p is not None and p >= floor else None
        entry = PRBEntry(rec, idx, pos, src_producers, mem_producer,
                         value_confident, address_confident)
        self._ring[pos % self.capacity] = entry
        dest = inst.dest
        if dest is not None:
            reg_writer[dest] = pos
        if inst.is_store:
            self._mem_writer[rec.ea] = pos
        return entry

    def _live_pos(self, pos: Optional[int]) -> Optional[int]:
        """A producer position, or None if it has fallen out of the buffer."""
        if pos is None or pos < self._next_pos - self.capacity:
            return None
        return pos

    def get(self, pos: int) -> Optional[PRBEntry]:
        """Entry at monotonic position ``pos`` if still resident."""
        if pos < 0 or pos >= self._next_pos or pos < self._next_pos - self.capacity:
            return None
        entry = self._ring[pos % self.capacity]
        return entry if entry is not None and entry.pos == pos else None

    @property
    def youngest_pos(self) -> int:
        """Position of the most recently inserted entry (-1 if empty)."""
        return self._next_pos - 1

    def youngest(self) -> Optional[PRBEntry]:
        return self.get(self.youngest_pos)

    def __len__(self) -> int:
        return min(self._next_pos, self.capacity)
