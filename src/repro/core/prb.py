"""Post-Retirement Buffer (paper §4.2.2).

Stores the last ``i`` retired instructions (512 in the paper) together
with dependence information "computed during instruction execution":
for each source register the buffer position of its producer, and for
loads the position of the most recent in-buffer store to the same
address.  The Microthread Builder scans it youngest-to-oldest.

Entries also carry the value/address-predictor confidence snapshot taken
just before insertion (paper §4.2.5: "we access the current confidence
and store it with each retired instruction in the PRB").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.trace import DynamicInstruction


class PRBEntry:
    """One retired instruction with dependence links."""

    __slots__ = ("rec", "idx", "pos", "src_producers", "mem_producer",
                 "value_confident", "address_confident")

    def __init__(self, rec: DynamicInstruction, idx: int, pos: int,
                 src_producers: Tuple[Optional[int], ...],
                 mem_producer: Optional[int],
                 value_confident: bool, address_confident: bool):
        self.rec = rec
        self.idx = idx          # trace index
        self.pos = pos          # monotonic PRB position
        self.src_producers = src_producers
        self.mem_producer = mem_producer
        self.value_confident = value_confident
        self.address_confident = address_confident


class PostRetirementBuffer:
    """Ring buffer of the last ``capacity`` retired instructions."""

    __slots__ = ("capacity", "_ring", "_next_pos", "_reg_writer",
                 "_mem_writer", "_sweep_at")

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[PRBEntry]] = [None] * capacity
        self._next_pos = 0
        self._reg_writer: Dict[int, int] = {}
        self._mem_writer: Dict[int, int] = {}
        #: next position at which the writer maps are swept for dead
        #: producers (once per ring wrap; see :meth:`_sweep_writers`)
        self._sweep_at = capacity

    def insert(self, rec: DynamicInstruction, idx: int,
               value_confident: bool = False,
               address_confident: bool = False) -> PRBEntry:
        """Insert a retiring instruction; returns its entry.

        Runs once per retired instruction: producer positions are
        resolved with the liveness floor hoisted out of the loop instead
        of going through :meth:`_live_pos` per source.
        """
        pos = self._next_pos
        self._next_pos = pos + 1
        inst = rec.inst
        reg_writer = self._reg_writer
        floor = pos + 1 - self.capacity
        src_producers = tuple(
            p if p is not None and p >= floor else None
            for p in map(reg_writer.get, inst.srcs)
        )
        mem_producer = None
        if inst.is_load:
            p = self._mem_writer.get(rec.ea)
            mem_producer = p if p is not None and p >= floor else None
        entry = PRBEntry(rec, idx, pos, src_producers, mem_producer,
                         value_confident, address_confident)
        self._ring[pos % self.capacity] = entry
        dest = inst.dest
        if dest is not None:
            reg_writer[dest] = pos
        if inst.is_store:
            self._mem_writer[rec.ea] = pos
        if pos >= self._sweep_at:
            self._sweep_writers(floor)
        return entry

    def insert_decoded(self, rec: DynamicInstruction, idx: int,
                       value_confident: bool, address_confident: bool,
                       dest: int, src1: int, src2: int, nsrc: int,
                       is_load: bool, is_store: bool, ea: int) -> PRBEntry:
        """Predecoded-column fast path of :meth:`insert`.

        The batched kernel (:mod:`repro.kernel`) has the instruction's
        dataflow already unpacked into flat columns (``dest``/``src1``/
        ``src2`` use ``-1`` for "none"), so this variant skips the
        ``rec.inst`` attribute walk and the producer-tuple generator of
        the scalar path.  Must stay behaviourally identical to
        :meth:`insert` — ``tests/test_kernel.py`` property-checks the
        equivalence.
        """
        pos = self._next_pos
        self._next_pos = pos + 1
        reg_writer = self._reg_writer
        floor = pos + 1 - self.capacity
        if nsrc == 0:
            src_producers: Tuple[Optional[int], ...] = ()
        elif nsrc == 1:
            p = reg_writer.get(src1)
            src_producers = (p if p is not None and p >= floor else None,)
        else:
            p = reg_writer.get(src1)
            q = reg_writer.get(src2)
            src_producers = (p if p is not None and p >= floor else None,
                             q if q is not None and q >= floor else None)
        mem_producer = None
        if is_load:
            p = self._mem_writer.get(ea)
            if p is not None and p >= floor:
                mem_producer = p
        entry = PRBEntry(rec, idx, pos, src_producers, mem_producer,
                         value_confident, address_confident)
        self._ring[pos % self.capacity] = entry
        if dest >= 0:
            reg_writer[dest] = pos
        if is_store:
            self._mem_writer[ea] = pos
        if pos >= self._sweep_at:
            self._sweep_writers(floor)
        return entry

    def _sweep_writers(self, floor: int) -> None:
        """Prune producer positions that fell below the liveness floor.

        Reads already filter by the floor, so the maps' *contents* never
        affect builder output — but without pruning ``_mem_writer`` keeps
        one key per unique store address ever seen (and ``_reg_writer``
        up to one dead key per register), growing without bound on long
        traces.  Sweeping once per ring wrap keeps the maps bounded by
        the addresses touched in the last ``capacity`` instructions at
        amortized O(1) per insert.
        """
        self._sweep_at += self.capacity
        reg_writer = self._reg_writer
        for key in [k for k, p in reg_writer.items() if p < floor]:
            del reg_writer[key]
        mem_writer = self._mem_writer
        for key in [k for k, p in mem_writer.items() if p < floor]:
            del mem_writer[key]

    def _live_pos(self, pos: Optional[int]) -> Optional[int]:
        """A producer position, or None if it has fallen out of the buffer."""
        if pos is None or pos < self._next_pos - self.capacity:
            return None
        return pos

    def get(self, pos: int) -> Optional[PRBEntry]:
        """Entry at monotonic position ``pos`` if still resident."""
        if pos < 0 or pos >= self._next_pos or pos < self._next_pos - self.capacity:
            return None
        entry = self._ring[pos % self.capacity]
        return entry if entry is not None and entry.pos == pos else None

    @property
    def youngest_pos(self) -> int:
        """Position of the most recently inserted entry (-1 if empty)."""
        return self._next_pos - 1

    def youngest(self) -> Optional[PRBEntry]:
        return self.get(self.youngest_pos)

    def __len__(self) -> int:
        return min(self._next_pos, self.capacity)
