"""The Microthread Builder (paper §4.2).

On a promotion request the builder freezes the PRB (whose youngest entry
is the just-retired terminating branch) and scans youngest-to-oldest,
extracting the branch's backward data-flow tree into the MCB.  Tree
construction terminates when (paper §4.2.2):

1. the MCB fills up,
2. the next instruction examined lies outside the path's scope, or
3. a memory dependence is encountered (the store is not included; the
   spawn point is constrained to fall after it — §4.2.4).

The extracted graph then runs through the MCB optimizations (move
elimination, constant propagation, optional pruning) and a spawn point is
selected: the earliest instruction inside the scope that satisfies every
surviving live-in register and memory dependence.

The builder is a single, serially-occupied unit with a fixed build
latency (100 cycles in the paper's experiments); requests that arrive
while it is busy are refused, leaving the path unpromoted so the request
naturally retries at a later retire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core import mcb
from repro.core.microthread import Microthread, MicroOp, topological_order
from repro.core.path import PathEvent
from repro.core.prb import PostRetirementBuffer, PRBEntry
from repro.isa.instructions import Opcode
from repro.telemetry.registry import StatsBase


@dataclass
class BuilderConfig:
    mcb_capacity: int = 64
    build_latency: int = 100
    pruning: bool = True
    move_elimination: bool = True
    constant_propagation: bool = True
    #: number of concurrently-building units.  The paper assumes one
    #: ("our current design assumes there is only one Microthread
    #: Builder"); more ports let promotion requests that arrive while a
    #: build is in flight be served instead of refused.
    ports: int = 1

    def __post_init__(self) -> None:
        if self.mcb_capacity <= 0:
            raise ValueError("mcb_capacity must be positive")
        if self.build_latency < 0:
            raise ValueError("build_latency must be >= 0")
        if self.ports <= 0:
            raise ValueError("need at least one builder port")


@dataclass
class BuildStats(StatsBase):
    """Builder counters; uniform export via :class:`StatsBase`."""

    requests: int = 0
    built: int = 0
    refused_busy: int = 0
    failed_no_spawn: int = 0
    failed_empty: int = 0
    moves_eliminated: int = 0
    constants_folded: int = 0
    value_pruned: int = 0
    address_pruned: int = 0
    total_routine_size: int = 0
    total_chain_length: int = 0
    rebuilds: int = 0

    @property
    def mean_routine_size(self) -> float:
        return self.total_routine_size / self.built if self.built else 0.0

    @property
    def mean_chain_length(self) -> float:
        return self.total_chain_length / self.built if self.built else 0.0


def _instances_ahead(prb: PostRetirementBuffer, pc: int, spawn_idx: int,
                     target_idx: int) -> int:
    """Dynamic instances of ``pc`` between spawn point and target.

    Positive when the target instance executes at or after the spawn
    point (the common case); negative when the target already retired
    and *newer* instances have trained the predictor since.
    """
    if target_idx >= spawn_idx:
        count = 0
        for pos in range(spawn_idx, target_idx + 1):
            entry = prb.get(pos)
            if entry is not None and entry.rec.pc == pc:
                count += 1
        return count
    count = 0
    for pos in range(target_idx + 1, spawn_idx):
        entry = prb.get(pos)
        if entry is not None and entry.rec.pc == pc:
            count += 1
    return -count


class MicrothreadBuilder:
    """Single-ported builder with a fixed build latency."""

    def __init__(self, config: Optional[BuilderConfig] = None) -> None:
        self.config = config or BuilderConfig()
        self._port_busy_until: List[int] = [0] * self.config.ports
        self.stats = BuildStats()

    @property
    def busy_until(self) -> int:
        """Cycle the next port frees (single-port: the busy horizon)."""
        return min(self._port_busy_until)

    @busy_until.setter
    def busy_until(self, cycle: int) -> None:
        self._port_busy_until = [cycle] * self.config.ports

    def request(self, event: PathEvent, prb: PostRetirementBuffer,
                now_cycle: int) -> Optional[Microthread]:
        """Attempt to build a microthread for ``event``'s path.

        Returns the routine (available in the MicroRAM after the build
        latency) or ``None`` if every builder port is busy or the build
        fails.
        """
        self.stats.requests += 1
        port = None
        for i, free_at in enumerate(self._port_busy_until):
            if now_cycle >= free_at:
                port = i
                break
        if port is None:
            self.stats.refused_busy += 1
            return None
        thread = self._build(event, prb)
        if thread is None:
            return None
        self._port_busy_until[port] = now_cycle + self.config.build_latency
        thread.available_cycle = now_cycle + self.config.build_latency
        self.stats.built += 1
        self.stats.total_routine_size += thread.routine_size
        self.stats.total_chain_length += thread.longest_chain
        return thread

    # -- extraction -----------------------------------------------------------

    def _build(self, event: PathEvent,
               prb: PostRetirementBuffer) -> Optional[Microthread]:
        branch_idx = event.branch_idx
        branch_entry = prb.get(branch_idx)
        if branch_entry is None or branch_entry.idx != branch_idx:
            self.stats.failed_empty += 1
            return None
        scope_start = event.scope_start_idx
        # The builder can only see what is resident in the PRB.
        oldest_visible = max(scope_start + 1, branch_idx - prb.capacity + 1)

        needed: Set[int] = {branch_idx}
        included: Dict[int, PRBEntry] = {}
        memdep_constraints: List[int] = []
        memdep_speculative = False
        capacity = self.config.mcb_capacity

        # Youngest-to-oldest scan; producers always sit at lower positions,
        # so a single descending pass collects the whole tree.
        for pos in range(branch_idx, oldest_visible - 1, -1):
            if pos not in needed:
                continue
            entry = prb.get(pos)
            if entry is None:
                continue
            if len(included) >= capacity:
                break  # termination condition 1: MCB full
            included[pos] = entry
            for producer in entry.src_producers:
                if producer is not None and producer >= oldest_visible:
                    needed.add(producer)
                # else: live-in (outside scope / fallen out of the PRB)
            if entry.rec.inst.is_load:
                store_pos = entry.mem_producer
                if store_pos is not None and store_pos > scope_start:
                    # condition 3: stop at the store; spawn after it.
                    memdep_constraints.append(store_pos)
                elif store_pos is None:
                    memdep_speculative = True

        if branch_idx not in included:
            self.stats.failed_empty += 1
            return None

        root = self._graph_from_entries(included, branch_idx)
        root = self._optimize(root, included)
        nodes = topological_order(root)

        spawn_idx = self._select_spawn(nodes, memdep_constraints,
                                       scope_start, oldest_visible)
        if spawn_idx is None or spawn_idx >= branch_idx:
            self.stats.failed_no_spawn += 1
            return None
        spawn_entry = prb.get(spawn_idx)
        if spawn_entry is None:
            self.stats.failed_no_spawn += 1
            return None

        # Look-ahead distances for Vp/Ap (paper §4.2.5: "compute the
        # number of predictions that the Vp_Inst/Ap_Inst is ahead").  At
        # spawn the predictor has trained on every instance retired
        # before the spawn point, so the distance to the target instance
        # is the count of dynamic instances of the pruned PC between the
        # spawn point and the target, inclusive; targets that retired
        # before the spawn point get non-positive distances.
        for node in nodes:
            if node.kind in ("vp", "ap"):
                node.ahead = _instances_ahead(prb, node.pc, spawn_idx,
                                              node.order)

        window = (prb.get(pos) for pos in range(spawn_idx, branch_idx))
        expected_suffix = tuple(
            entry.rec.pc for entry in window
            if entry is not None and entry.rec.is_taken_control
        )
        prefix = tuple(
            pc for pc, idx in zip(event.key.branches, event.branch_idxs)
            if idx < spawn_idx
        )
        live_in_regs = tuple(sorted({
            n.reg for n in nodes if n.kind == "livein"
        }))

        branch_inst = branch_entry.rec.inst
        taken_target = branch_inst.target if branch_inst.target is not None else 0

        return Microthread(
            key=event.key,
            path_id=event.path_id,
            root=root,
            nodes=nodes,
            live_in_regs=live_in_regs,
            spawn_pc=spawn_entry.rec.pc,
            separation=branch_idx - spawn_idx,
            term_pc=event.key.term_pc,
            term_taken_target=taken_target,
            prefix=prefix,
            expected_suffix=expected_suffix,
            built_from_idx=branch_idx,
            pruned=self.config.pruning,
            memdep_speculative=memdep_speculative,
        )

    def _graph_from_entries(self, included: Dict[int, PRBEntry],
                            branch_idx: int) -> MicroOp:
        """Turn the extracted PRB entries into a data-flow graph."""
        nodes: Dict[int, MicroOp] = {}
        liveins: Dict[Tuple[int, Optional[int]], MicroOp] = {}

        def livein_for(reg: int, producer: Optional[int]) -> MicroOp:
            key = (reg, producer)
            if key not in liveins:
                liveins[key] = MicroOp("livein", reg=reg, producer_idx=producer,
                                       order=producer if producer is not None else -1)
            return liveins[key]

        for pos in sorted(included):
            entry = included[pos]
            inst = entry.rec.inst
            op = inst.opcode
            srcs = inst.src_regs()
            inputs: List[MicroOp] = []
            for reg, producer in zip(srcs, entry.src_producers):
                if producer is not None and producer in included:
                    inputs.append(nodes[producer])
                else:
                    inputs.append(livein_for(reg, producer))
            if pos == branch_idx:
                node = MicroOp("branch", op=op, pc=inst.pc, inputs=inputs,
                               order=pos)
            elif op == Opcode.LI:
                node = MicroOp("const", imm=inst.imm, pc=inst.pc, order=pos)
            elif op == Opcode.CALL:
                # A CALL's register product is the constant return address.
                node = MicroOp("const", imm=inst.pc + 1, pc=inst.pc, order=pos)
            elif inst.is_load:
                node = MicroOp("load", op=op, imm=inst.imm, pc=inst.pc,
                               inputs=inputs, order=pos)
            else:
                node = MicroOp("op", op=op, imm=inst.imm, pc=inst.pc,
                               inputs=inputs, order=pos)
            nodes[pos] = node
        return nodes[branch_idx]

    def _optimize(self, root: MicroOp,
                  included: Dict[int, PRBEntry]) -> MicroOp:
        cfg = self.config
        if cfg.move_elimination:
            root, eliminated = mcb.move_elimination(root)
            self.stats.moves_eliminated += eliminated
        if cfg.constant_propagation:
            root, folded = mcb.constant_propagation(root)
            self.stats.constants_folded += folded
        if cfg.pruning:
            def value_conf(node: MicroOp) -> bool:
                entry = included.get(node.order)
                return entry is not None and entry.value_confident

            def addr_conf(node: MicroOp) -> bool:
                entry = included.get(node.order)
                return entry is not None and entry.address_confident

            root, vp, ap = mcb.prune(root, value_conf, addr_conf)
            self.stats.value_pruned += vp
            self.stats.address_pruned += ap
        return root

    def _select_spawn(self, nodes: List[MicroOp],
                      memdep_constraints: List[int], scope_start: int,
                      oldest_visible: int) -> Optional[int]:
        """Earliest in-scope instruction satisfying all dependences."""
        spawn = oldest_visible
        for node in nodes:
            if node.kind == "livein" and node.producer_idx is not None \
                    and node.producer_idx > scope_start:
                spawn = max(spawn, node.producer_idx + 1)
        for store_pos in memdep_constraints:
            spawn = max(spawn, store_pos + 1)
        return spawn
