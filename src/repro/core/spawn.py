"""Spawning, microcontexts and the abort mechanism (paper §4.3.1-§4.3.2).

A microthread is invoked when its spawn point is fetched.  Before a
microcontext is allocated, the concatenated path history is compared
against the prefix of the difficult path that should already have
executed — a mismatch aborts the spawn pre-allocation (the paper reports
~67% of attempted spawns abort this way).  After allocation, the active
microthread carries the expected taken-branch suffix from spawn point to
terminating branch; any deviation observed at retire aborts it and
reclaims the microcontext (~66% of successful spawns).

Observability: the manager itself emits ``pre_alloc_abort``,
``no_context`` and ``active_abort`` events into an attached
:class:`~repro.core.events.EventLog` (no spawn outcome bypasses the
log), and notifies an attached
:class:`~repro.telemetry.tracer.ThreadTracer` of every instance's
lifecycle transitions (spawn, abort with cause, completion).  Both are
optional and cost one ``is None`` test when detached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Tuple

from repro.core.microthread import Microthread, MicrothreadPrediction
from repro.telemetry.registry import StatsBase
from repro.telemetry.tracer import (
    CAUSE_MEMDEP_VIOLATION,
    CAUSE_PATH_DEVIATION,
    REJECT_NO_CONTEXT,
    REJECT_PATH_PREFIX,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.events import EventLog
    from repro.telemetry.tracer import ThreadTracer


@dataclass
class ActiveMicrothread:
    """Bookkeeping for one in-flight microthread instance."""

    thread: Microthread
    spawn_idx: int
    spawn_cycle: int
    context_id: int
    target_seq: int                 # trace index of the predicted branch
    completion_cycle: int = 0       # when the routine drains naturally
    arrival_cycle: int = 0          # Store_PCache completion
    prediction: Optional[MicrothreadPrediction] = None
    load_set: FrozenSet[int] = frozenset()
    suffix_progress: int = 0
    aborted: bool = False
    abort_cycle: int = 0


@dataclass
class SpawnStats(StatsBase):
    """Spawn/abort counters; uniform export via :class:`StatsBase`."""

    attempts: int = 0
    pre_allocation_aborts: int = 0
    no_free_context: int = 0
    spawned: int = 0
    aborted_active: int = 0
    completed: int = 0
    memdep_violations: int = 0

    @property
    def pre_allocation_abort_rate(self) -> float:
        return self.pre_allocation_aborts / self.attempts if self.attempts else 0.0

    @property
    def active_abort_rate(self) -> float:
        return self.aborted_active / self.spawned if self.spawned else 0.0


class SpawnManager:
    """Microcontext pool plus the Path_History abort mechanism."""

    def __init__(self, n_contexts: int = 32, abort_enabled: bool = True,
                 event_log: Optional["EventLog"] = None,
                 tracer: Optional["ThreadTracer"] = None):
        if n_contexts <= 0:
            raise ValueError("need at least one microcontext")
        self.n_contexts = n_contexts
        self.abort_enabled = abort_enabled
        self.event_log = event_log
        self.tracer = tracer
        self._context_free_cycle: List[int] = [0] * n_contexts
        self.active: List[ActiveMicrothread] = []
        self.stats = SpawnStats()

    # -- spawning --------------------------------------------------------------

    def attempt_spawn(self, thread: Microthread, idx: int, cycle: int,
                      recent_taken: Tuple[int, ...]) -> Optional[ActiveMicrothread]:
        """Try to launch ``thread`` at the fetch of its spawn point.

        ``recent_taken`` is the front-end's current taken-branch history
        (most recent last), compared against the routine's path prefix.
        """
        self.stats.attempts += 1
        log = self.event_log
        prefix = thread.prefix
        if self.abort_enabled and prefix:
            if tuple(recent_taken[-len(prefix):]) != prefix:
                self.stats.pre_allocation_aborts += 1
                if log is not None:
                    log.emit("pre_alloc_abort", idx, cycle, thread.term_pc)
                if self.tracer is not None:
                    self.tracer.on_spawn_rejected(thread, idx, cycle,
                                                  REJECT_PATH_PREFIX)
                return None
        context_id = self._find_free_context(cycle)
        if context_id is None:
            self.stats.no_free_context += 1
            if log is not None:
                log.emit("no_context", idx, cycle, thread.term_pc)
            if self.tracer is not None:
                self.tracer.on_spawn_rejected(thread, idx, cycle,
                                              REJECT_NO_CONTEXT)
            return None
        instance = ActiveMicrothread(
            thread=thread,
            spawn_idx=idx,
            spawn_cycle=cycle,
            context_id=context_id,
            target_seq=idx + thread.separation,
        )
        self.active.append(instance)
        self.stats.spawned += 1
        if self.tracer is not None:
            self.tracer.on_spawn(instance)
        return instance

    def _find_free_context(self, cycle: int) -> Optional[int]:
        for context_id, free_cycle in enumerate(self._context_free_cycle):
            if free_cycle <= cycle:
                return context_id
        return None

    def commit_timing(self, instance: ActiveMicrothread,
                      completion_cycle: int, arrival_cycle: int) -> None:
        """Record when the routine drains; the context frees then."""
        instance.completion_cycle = completion_cycle
        instance.arrival_cycle = arrival_cycle
        self._context_free_cycle[instance.context_id] = completion_cycle

    # -- runtime monitoring (called at retire) ------------------------------------

    def on_taken_control(self, pc: int, idx: int, cycle: int) -> List[ActiveMicrothread]:
        """Advance suffix matching; returns instances aborted by deviation."""
        if not self.abort_enabled:
            return []
        aborted: List[ActiveMicrothread] = []
        for instance in self.active:
            if instance.aborted or idx <= instance.spawn_idx \
                    or idx >= instance.target_seq:
                continue
            suffix = instance.thread.expected_suffix
            if instance.suffix_progress < len(suffix) \
                    and suffix[instance.suffix_progress] == pc:
                instance.suffix_progress += 1
            else:
                self._abort(instance, idx, cycle, CAUSE_PATH_DEVIATION,
                            f"at pc={pc}")
                aborted.append(instance)
        return aborted

    def on_store_retired(self, ea: int, idx: int,
                         cycle: int) -> List[ActiveMicrothread]:
        """Memory-dependence violation check (paper §4.2.4): a store to an
        address a live microthread already loaded from."""
        violated: List[ActiveMicrothread] = []
        for instance in self.active:
            if instance.aborted or idx <= instance.spawn_idx \
                    or idx > instance.target_seq:
                continue
            if ea in instance.load_set:
                self._abort(instance, idx, cycle, CAUSE_MEMDEP_VIOLATION,
                            f"ea={ea}")
                self.stats.memdep_violations += 1
                violated.append(instance)
        return violated

    def _abort(self, instance: ActiveMicrothread, idx: int, cycle: int,
               cause: str, detail: str = "") -> None:
        instance.aborted = True
        instance.abort_cycle = cycle
        self.stats.aborted_active += 1
        if self.event_log is not None:
            self.event_log.emit("active_abort", idx, cycle,
                                instance.thread.term_pc,
                                f"{detail} cause={cause}".strip())
        if self.tracer is not None:
            self.tracer.on_abort(instance, cause, idx, cycle)
        # Reclaim the context now if the routine had not yet drained.
        slot = instance.context_id
        if self._context_free_cycle[slot] > cycle:
            self._context_free_cycle[slot] = cycle

    def retire_past(self, idx: int, cycle: int = 0) -> None:
        """Drop bookkeeping for instances whose target has been passed."""
        if not self.active:
            return  # common case: nothing in flight, nothing to scan
        kept: List[ActiveMicrothread] = []
        for instance in self.active:
            if idx >= instance.target_seq:
                if not instance.aborted:
                    self.stats.completed += 1
                    if self.tracer is not None:
                        self.tracer.on_complete(instance, idx, cycle)
            else:
                kept.append(instance)
        self.active = kept
