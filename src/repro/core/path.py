"""Path identification (paper §3).

A *path* is the sequence of the ``n`` taken-branch addresses prior to a
terminating branch (conditional or indirect).  The ``Path_Id`` is a
shift-XOR hash of those addresses; the exact tuple plus the terminating
branch PC forms the full :class:`PathKey` used by oracle analyses and as
the Path Cache tag.

The *scope* of a path is the set of instructions in the ``n`` control-flow
blocks of the path: everything retired after the oldest path branch up to
the terminating branch (paper Figure 1).  In trace terms the scope is the
half-open index interval ``(oldest_idx, branch_idx]`` and its size is
``branch_idx - oldest_idx``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.sim.trace import DynamicInstruction

DEFAULT_PATH_ID_BITS = 24


_ROTATE = 7


def path_id_hash(branch_pcs: Tuple[int, ...], bits: int = DEFAULT_PATH_ID_BITS) -> int:
    """Shift-XOR hash over taken-branch addresses, oldest first.

    Each step rotates the accumulator left by 7 and XORs in the next
    address, so order matters — the hardware-friendly hash family the
    paper assumes the front-end can generate trivially.

    The rotation amount must not divide the hash width: a rotate-3 /
    24-bit variant wraps a branch 8 positions back exactly onto the
    newest branch's bits, creating systematic collisions between paths
    that differ only at that depth (measured in
    ``benchmarks/test_aliasing.py``).  7 is coprime to all common widths.
    """
    mask = (1 << bits) - 1
    rot = _ROTATE % bits
    h = 0
    for pc in branch_pcs:
        h = (((h << rot) & mask) | (h >> (bits - rot))) ^ (pc & mask)
    return h


@dataclass(frozen=True, slots=True)
class PathKey:
    """Exact identity of a path: terminating PC + prior taken branches."""

    term_pc: int
    branches: Tuple[int, ...]

    def path_id(self, bits: int = DEFAULT_PATH_ID_BITS) -> int:
        """The hardware ``Path_Id`` hash for this path."""
        return path_id_hash(self.branches, bits)


@dataclass(slots=True)
class PathEvent:
    """Emitted once per retired terminating branch."""

    key: PathKey
    path_id: int
    branch_idx: int          # trace index of the terminating branch
    scope_start_idx: int     # trace index of the oldest path branch
    partial: bool            # fewer than n taken branches seen yet
    #: trace indices of the path's taken branches (parallel to key.branches)
    branch_idxs: Tuple[int, ...] = ()

    @property
    def scope_size(self) -> int:
        """Scope size in instructions (paper Table 1's 'scope')."""
        return self.branch_idx - self.scope_start_idx


class PathTracker:
    """Tracks the last ``n`` taken control transfers along the trace.

    Call :meth:`observe` for every retired instruction, in order.  For a
    terminating branch it returns the :class:`PathEvent` *before* folding
    the branch itself into the history (the path consists of branches
    *prior* to the terminator).

    The ``Path_Id`` hash is maintained *incrementally*: appending a
    branch applies one rotate-XOR step, and evicting the oldest branch
    first XORs out its (fully rotated) contribution.  Each history
    element's contribution to :func:`path_id_hash` is a pure rotation of
    its masked PC — rotations compose by adding amounts mod the hash
    width — so the sliding-window maintenance is exact, not
    approximate.  This turns the per-terminating-branch O(n) hash
    recomputation into O(1); ``tests/test_perf.py`` property-checks the
    equivalence against the reference recompute.
    """

    __slots__ = ("n", "id_bits", "_history", "_hash", "_mask", "_rot",
                 "_evict_rot")

    def __init__(self, n: int, id_bits: int = DEFAULT_PATH_ID_BITS):
        if n <= 0:
            raise ValueError("path length n must be positive")
        self.n = n
        self.id_bits = id_bits
        self._history: Deque[Tuple[int, int]] = deque()  # (pc, idx)
        self._hash = 0
        self._mask = (1 << id_bits) - 1
        self._rot = _ROTATE % id_bits
        # rotation accumulated by the oldest element of a full window
        self._evict_rot = (self._rot * (n - 1)) % id_bits

    def observe(self, rec: DynamicInstruction, idx: int) -> Optional[PathEvent]:
        event = None
        inst = rec.inst
        if inst.is_path_terminating:
            event = self._make_event(rec, idx)
        if inst.is_control and rec.taken:
            self._append(rec.pc, idx)
        return event

    def _append(self, pc: int, idx: int) -> None:
        history = self._history
        bits = self.id_bits
        mask = self._mask
        h = self._hash
        if len(history) == self.n:
            old_pc = history.popleft()[0] & mask
            rot = self._evict_rot
            if rot:
                old_pc = ((old_pc << rot) & mask) | (old_pc >> (bits - rot))
            h ^= old_pc
        rot = self._rot
        h = ((h << rot) & mask) | (h >> (bits - rot))
        self._hash = h ^ (pc & mask)
        history.append((pc, idx))

    def _make_event(self, rec: DynamicInstruction, idx: int) -> PathEvent:
        # One pass over the history instead of two genexprs: this runs
        # once per terminating branch, the hottest event path.
        branch_list = []
        idx_list = []
        for pc, i in self._history:
            branch_list.append(pc)
            idx_list.append(i)
        branches = tuple(branch_list)
        idxs = tuple(idx_list)
        partial = len(branches) < self.n
        scope_start = idxs[0] if idxs else idx
        key = PathKey(term_pc=rec.pc, branches=branches)
        return PathEvent(
            key=key,
            path_id=self._hash,
            branch_idx=idx,
            scope_start_idx=scope_start,
            partial=partial,
            branch_idxs=idxs,
        )

    def current_branches(self) -> Tuple[int, ...]:
        """The taken-branch addresses currently in the history window."""
        return tuple(pc for pc, _ in self._history)

    def current_path_id(self) -> int:
        return self._hash

    def reset(self) -> None:
        self._history.clear()
        self._hash = 0
