"""MicroRAM: storage for microthread routines (paper §4.3.1, §5.2).

The MicroRAM holds the routines of currently promoted paths and is
indexed two ways: by :class:`~repro.core.path.PathKey` for promotion /
demotion, and by spawn PC for the front-end spawn check.  Its size (8K
routines in the paper's experiments) bounds the number of concurrently
promoted paths; on overflow the least-recently-spawned routine is
evicted, which demotes its path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.microthread import Microthread
from repro.core.path import PathKey


class MicroRAM:
    """Routine store with LRU eviction and a spawn-PC index."""

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._by_key: Dict[PathKey, Microthread] = {}
        self._by_spawn_pc: Dict[int, List[Microthread]] = {}
        self._lru: Dict[PathKey, int] = {}
        self._stamp = 0
        self.insertions = 0
        self.evictions = 0

    def insert(self, thread: Microthread) -> Optional[PathKey]:
        """Store a routine; returns the evicted path's key, if any."""
        evicted: Optional[PathKey] = None
        if thread.key in self._by_key:
            self._unlink(thread.key)
        elif len(self._by_key) >= self.capacity:
            victim = min(self._lru, key=self._lru.get)
            self._unlink(victim)
            self.evictions += 1
            evicted = victim
        self._by_key[thread.key] = thread
        self._by_spawn_pc.setdefault(thread.spawn_pc, []).append(thread)
        self._stamp += 1
        self._lru[thread.key] = self._stamp
        self.insertions += 1
        return evicted

    def remove(self, key: PathKey) -> bool:
        """Demotion: drop the routine for ``key`` if present."""
        if key not in self._by_key:
            return False
        self._unlink(key)
        return True

    def _unlink(self, key: PathKey) -> None:
        thread = self._by_key.pop(key)
        self._lru.pop(key, None)
        bucket = self._by_spawn_pc.get(thread.spawn_pc)
        if bucket is not None:
            bucket[:] = [t for t in bucket if t.key != key]
            if not bucket:
                del self._by_spawn_pc[thread.spawn_pc]

    def routines(self) -> List[Microthread]:
        """Every resident routine (used by the sanitizer)."""
        return list(self._by_key.values())

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Occupancy and churn counters (telemetry collector surface)."""
        return {
            "routines": len(self._by_key),
            "capacity": self.capacity,
            "pressure": round(len(self._by_key) / self.capacity, 6),
            "insertions": self.insertions,
            "evictions": self.evictions,
        }

    def spawn_index_len(self) -> int:
        """Total routines reachable through the spawn-PC index."""
        return sum(len(bucket) for bucket in self._by_spawn_pc.values())

    def routines_at(self, spawn_pc: int) -> List[Microthread]:
        """Routines whose spawn point is ``spawn_pc`` (front-end check)."""
        return self._by_spawn_pc.get(spawn_pc, [])

    def get(self, key: PathKey) -> Optional[Microthread]:
        return self._by_key.get(key)

    def touch(self, key: PathKey) -> None:
        """Record a spawn use for LRU purposes."""
        if key in self._lru:
            self._stamp += 1
            self._lru[key] = self._stamp

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: PathKey) -> bool:
        return key in self._by_key
