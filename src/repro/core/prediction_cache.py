"""The Prediction Cache (paper §4.3.3).

Microthreads write their pre-computed branch outcomes here via
``Store_PCache``, keyed by ``(Path_Id, Seq_Num)``: the path the routine
was built for, and the sequence number of the branch instance being
predicted (spawn sequence number plus the build-time instruction
separation).  Because both components are used, "aliasing is almost
non-existent", and a small cache (128 entries in the paper) suffices:
entries whose ``Seq_Num`` lies behind the front-end are stale and can be
deallocated on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.telemetry.registry import StatsBase


@dataclass
class PredictionCacheEntry:
    taken: bool
    target: int
    arrival_cycle: int
    writer: object = None          # the ActiveMicrothread that wrote it
    valid: bool = True


@dataclass
class PredictionCacheStats(StatsBase):
    """Prediction Cache counters; uniform export via :class:`StatsBase`."""

    writes: int = 0
    hits: int = 0
    misses: int = 0
    stale_deallocations: int = 0
    live_evictions: int = 0
    invalidations: int = 0
    #: invalidated entries whose slot was actually freed (on lookup
    #: touch or by reclaim preference); disjoint from
    #: ``stale_deallocations`` (valid entries reclaimed because their
    #: ``Seq_Num`` fell behind the front-end) and never larger than
    #: ``invalidations`` (each entry invalidates once, deallocates once)
    invalid_deallocations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PredictionCache:
    """(Path_Id, Seq_Num)-keyed prediction buffer with stale reclaim."""

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[Tuple[int, int], PredictionCacheEntry] = {}
        self.stats = PredictionCacheStats()

    def write(self, path_id: int, seq: int, entry: PredictionCacheEntry,
              current_seq: int) -> None:
        """Insert a microthread prediction.

        ``current_seq`` is the front-end's position; entries targeting
        older sequence numbers are stale and reclaimed first when the
        cache is full.
        """
        self.stats.writes += 1
        key = (path_id, seq)
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._reclaim(current_seq)
        self._entries[key] = entry

    def _reclaim(self, current_seq: int) -> None:
        entries = self._entries
        # Invalidated entries are dead storage — they can never hit
        # again — so they are the cheapest victims and go first.
        invalid = [k for k, e in entries.items() if not e.valid]
        if invalid:
            for k in invalid:
                del entries[k]
            self.stats.invalid_deallocations += len(invalid)
            return
        stale = [k for k in entries if k[1] < current_seq]
        if stale:
            for k in stale:
                del entries[k]
            self.stats.stale_deallocations += len(stale)
            return
        # No invalid or stale entries: evict the most distant target.
        victim = max(entries, key=lambda k: k[1])
        del entries[victim]
        self.stats.live_evictions += 1

    def lookup(self, path_id: int, seq: int) -> Optional[PredictionCacheEntry]:
        key = (path_id, seq)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if not entry.valid:
            # Deallocate on touch: an invalidated entry can never hit,
            # so leaving it resident only wastes one of the 128 slots
            # until capacity pressure happens to reclaim it.
            del self._entries[key]
            self.stats.misses += 1
            self.stats.invalid_deallocations += 1
            return None
        self.stats.hits += 1
        return entry

    def entries(self) -> Iterator[PredictionCacheEntry]:
        """Every resident entry, valid or not (used by the sanitizer)."""
        return iter(self._entries.values())

    def invalidate_writer(self, writer: object) -> None:
        """Invalidate entries written by an aborted/violated microthread."""
        for entry in self._entries.values():
            if entry.writer is writer and entry.valid:
                entry.valid = False
                self.stats.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)
