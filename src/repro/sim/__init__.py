"""Architectural (functional) simulation.

Executes a :class:`~repro.isa.program.Program` and produces the retirement
instruction stream — the ground truth every other model (branch predictors,
the timing model, the difficult-path profiler and the SSMT machine)
consumes.  This substitutes for the authors' trace generation over Alpha
SPEC binaries.
"""

from repro.sim.trace import DynamicInstruction, Trace
from repro.sim.functional import FunctionalSimulator, SimulationError, run_program
from repro.sim.traceio import TraceIOError, load_trace, save_trace

__all__ = [
    "DynamicInstruction",
    "Trace",
    "FunctionalSimulator",
    "SimulationError",
    "run_program",
    "TraceIOError",
    "load_trace",
    "save_trace",
]
