"""The architectural simulator.

Straight-line interpretation of the ISA with 64-bit wraparound integer
semantics.  Produces a :class:`~repro.sim.trace.Trace` of retired dynamic
instructions with source values, results, effective addresses and control
outcomes recorded — everything the back-end models need.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, REG_RA, REG_SP, REG_ZERO
from repro.sim.trace import DynamicInstruction, Trace

_MASK = (1 << 64) - 1
_SIGN = 1 << 63

#: Default stack pointer; grows downward, far below the data segment.
DEFAULT_SP = 0xF000


def to_signed(value: int) -> int:
    """Interpret a 64-bit pattern as a signed integer."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def to_unsigned(value: int) -> int:
    """Mask a Python int to its 64-bit pattern."""
    return value & _MASK


class SimulationError(Exception):
    """Raised on illegal execution (bad PC, runaway store, micro-op, ...)."""


class FunctionalSimulator:
    """Executes a program, recording the retirement stream.

    Parameters
    ----------
    program:
        The linked program to run.
    max_instructions:
        Hard budget; execution stops (without error) when exhausted.
    """

    def __init__(self, program: Program, max_instructions: int = 200_000):
        self.program = program
        self.max_instructions = max_instructions
        self.regs: List[int] = [0] * NUM_REGS
        self.regs[REG_SP] = DEFAULT_SP
        self.memory: Dict[int, int] = dict(program.data.values)
        self.pc = program.entry
        self.halted = False

    def run(self) -> Trace:
        """Run to ``HALT`` or the instruction budget; return the trace."""
        records: List[DynamicInstruction] = []
        append = records.append
        regs = self.regs
        memory = self.memory
        instructions = self.program.instructions
        n_static = len(instructions)
        pc = self.pc
        budget = self.max_instructions

        for seq in range(budget):
            if not 0 <= pc < n_static:
                raise SimulationError(f"pc {pc} out of range at seq {seq}")
            inst = instructions[pc]
            op = inst.opcode
            rec = DynamicInstruction(seq, inst)
            next_pc = pc + 1

            if op == Opcode.ADD:
                a, b = regs[inst.rs1], regs[inst.rs2]
                r = (a + b) & _MASK
                rec.src1_val, rec.src2_val, rec.result = a, b, r
                if inst.rd != REG_ZERO:
                    regs[inst.rd] = r
            elif op == Opcode.ADDI:
                a = regs[inst.rs1]
                r = (a + inst.imm) & _MASK
                rec.src1_val, rec.result = a, r
                if inst.rd != REG_ZERO:
                    regs[inst.rd] = r
            elif op == Opcode.LD:
                a = regs[inst.rs1]
                ea = (a + inst.imm) & _MASK
                r = memory.get(ea, 0)
                rec.src1_val, rec.ea, rec.result = a, ea, r
                if inst.rd != REG_ZERO:
                    regs[inst.rd] = r
            elif op == Opcode.ST:
                a, v = regs[inst.rs1], regs[inst.rs2]
                ea = (a + inst.imm) & _MASK
                memory[ea] = v
                rec.src1_val, rec.src2_val, rec.ea, rec.result = a, v, ea, v
            elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
                a, b = regs[inst.rs1], regs[inst.rs2]
                if op == Opcode.BEQ:
                    taken = a == b
                elif op == Opcode.BNE:
                    taken = a != b
                elif op == Opcode.BLT:
                    taken = to_signed(a) < to_signed(b)
                else:
                    taken = to_signed(a) >= to_signed(b)
                rec.src1_val, rec.src2_val = a, b
                rec.taken = taken
                rec.result = 1 if taken else 0
                if taken:
                    next_pc = inst.target
            elif op == Opcode.LI:
                r = inst.imm & _MASK
                rec.result = r
                if inst.rd != REG_ZERO:
                    regs[inst.rd] = r
            elif op == Opcode.MOV:
                a = regs[inst.rs1]
                rec.src1_val, rec.result = a, a
                if inst.rd != REG_ZERO:
                    regs[inst.rd] = a
            elif op in (Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
                        Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT,
                        Opcode.SLTU, Opcode.MUL):
                a, b = regs[inst.rs1], regs[inst.rs2]
                r = _alu(op, a, b)
                rec.src1_val, rec.src2_val, rec.result = a, b, r
                if inst.rd != REG_ZERO:
                    regs[inst.rd] = r
            elif op in (Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
                        Opcode.SRLI, Opcode.SLTI):
                a = regs[inst.rs1]
                r = _alu(_IMM_TO_REG[op], a, inst.imm & _MASK)
                rec.src1_val, rec.result = a, r
                if inst.rd != REG_ZERO:
                    regs[inst.rd] = r
            elif op == Opcode.JMP:
                rec.taken = True
                next_pc = inst.target
            elif op == Opcode.CALL:
                regs[REG_RA] = pc + 1
                rec.taken = True
                rec.result = pc + 1
                next_pc = inst.target
            elif op == Opcode.RET:
                a = regs[REG_RA]
                rec.src1_val = a
                rec.taken = True
                next_pc = a
            elif op == Opcode.JR:
                a = regs[inst.rs1]
                rec.src1_val = a
                rec.taken = True
                next_pc = a
            elif op == Opcode.NOP:
                pass
            elif op == Opcode.HALT:
                rec.next_pc = pc
                append(rec)
                self.halted = True
                break
            else:
                raise SimulationError(
                    f"illegal opcode {op.name} at pc {pc} (seq {seq})"
                )

            rec.next_pc = next_pc
            append(rec)
            pc = next_pc

        self.pc = pc
        return Trace(records, name=self.program.name, halted=self.halted,
                     initial_memory=dict(self.program.data.values))


_IMM_TO_REG = {
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SLTI: Opcode.SLT,
}


def _alu(op: Opcode, a: int, b: int) -> int:
    """64-bit ALU semantics shared by reg-reg and reg-imm forms."""
    if op == Opcode.ADD:
        return (a + b) & _MASK
    if op == Opcode.SUB:
        return (a - b) & _MASK
    if op == Opcode.AND:
        return a & b
    if op == Opcode.OR:
        return a | b
    if op == Opcode.XOR:
        return a ^ b
    if op == Opcode.SLL:
        return (a << (b & 63)) & _MASK
    if op == Opcode.SRL:
        return (a & _MASK) >> (b & 63)
    if op == Opcode.SRA:
        return (to_signed(a) >> (b & 63)) & _MASK
    if op == Opcode.SLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op == Opcode.SLTU:
        return 1 if (a & _MASK) < (b & _MASK) else 0
    if op == Opcode.MUL:
        return (a * b) & _MASK
    raise SimulationError(f"not an ALU op: {op.name}")


#: Public alias: evaluate one ALU operation with 64-bit semantics.
alu_op = _alu


def run_program(program: Program, max_instructions: int = 200_000) -> Trace:
    """Convenience wrapper: simulate ``program`` and return its trace."""
    return FunctionalSimulator(program, max_instructions=max_instructions).run()
