"""Trace serialization.

Traces take seconds to minutes to generate; saving them lets analyses
re-run instantly and lets users ship reproducible inputs.  The format is
a compact line-oriented text container (versioned header, one record per
line) — trivially diffable, no pickle, no external dependencies.

Round-tripping preserves everything downstream models consume: the
static program is embedded (disassembly cannot round-trip tags, so the
instruction list is serialized field-by-field), and dynamic records
carry their values, effective addresses and control outcomes.
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO, Union

from repro.isa.instructions import Instruction, Opcode
from repro.sim.trace import DynamicInstruction, Trace

FORMAT_VERSION = 1
_MAGIC = "repro-trace"


class TraceIOError(Exception):
    """Raised on malformed trace files."""


def save_trace(trace: Trace, destination: Union[str, TextIO]) -> None:
    """Write ``trace`` to a path or text file object."""
    own = isinstance(destination, str)
    handle = open(destination, "w") if own else destination
    try:
        _write(trace, handle)
    finally:
        if own:
            handle.close()


def _write(trace: Trace, out: TextIO) -> None:
    out.write(f"{_MAGIC} v{FORMAT_VERSION}\n")
    out.write(f"name {trace.name}\n")
    out.write(f"halted {int(trace.halted)}\n")

    # static instructions (deduplicated by pc)
    static: Dict[int, Instruction] = {}
    for rec in trace.records:
        static.setdefault(rec.pc, rec.inst)
    out.write(f"static {len(static)}\n")
    for pc in sorted(static):
        inst = static[pc]
        target = inst.target if inst.target is not None else "-"
        tag = inst.tag if inst.tag else "-"
        out.write(f"I {pc} {inst.opcode.value} {inst.rd} {inst.rs1} "
                  f"{inst.rs2} {inst.imm} {target} {tag}\n")

    out.write(f"memory {len(trace.initial_memory)}\n")
    for address in sorted(trace.initial_memory):
        out.write(f"M {address} {trace.initial_memory[address]}\n")

    out.write(f"records {len(trace.records)}\n")
    for rec in trace.records:
        ea = rec.ea if rec.ea is not None else "-"
        out.write(f"D {rec.pc} {rec.src1_val} {rec.src2_val} {rec.result} "
                  f"{ea} {int(rec.taken)} {rec.next_pc}\n")


def load_trace(source: Union[str, TextIO]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        return _read(handle)
    finally:
        if own:
            handle.close()


def _expect(line: str, prefix: str) -> List[str]:
    parts = line.split()
    if not parts or parts[0] != prefix:
        raise TraceIOError(f"expected {prefix!r} line, got {line!r}")
    return parts[1:]


def _read(handle: TextIO) -> Trace:
    header = handle.readline().split()
    if header[:1] != [_MAGIC]:
        raise TraceIOError("not a repro trace file")
    if header[1] != f"v{FORMAT_VERSION}":
        raise TraceIOError(f"unsupported version {header[1]}")

    name = _expect(handle.readline(), "name")
    trace_name = name[0] if name else "trace"
    halted = bool(int(_expect(handle.readline(), "halted")[0]))

    (static_count,) = _expect(handle.readline(), "static")
    static: Dict[int, Instruction] = {}
    for _ in range(int(static_count)):
        fields = _expect(handle.readline(), "I")
        pc, opcode, rd, rs1, rs2, imm = (int(x) for x in fields[:6])
        target = None if fields[6] == "-" else int(fields[6])
        tag = None if fields[7] == "-" else fields[7]
        static[pc] = Instruction(Opcode(opcode), rd=rd, rs1=rs1, rs2=rs2,
                                 imm=imm, target=target, pc=pc, tag=tag)

    (memory_count,) = _expect(handle.readline(), "memory")
    initial_memory: Dict[int, int] = {}
    for _ in range(int(memory_count)):
        address, value = (int(x) for x in _expect(handle.readline(), "M"))
        initial_memory[address] = value

    (record_count,) = _expect(handle.readline(), "records")
    records: List[DynamicInstruction] = []
    for seq in range(int(record_count)):
        fields = _expect(handle.readline(), "D")
        pc = int(fields[0])
        inst = static.get(pc)
        if inst is None:
            raise TraceIOError(f"dynamic record references unknown pc {pc}")
        ea = None if fields[4] == "-" else int(fields[4])
        records.append(DynamicInstruction(
            seq, inst,
            src1_val=int(fields[1]), src2_val=int(fields[2]),
            result=int(fields[3]), ea=ea,
            taken=bool(int(fields[5])), next_pc=int(fields[6]),
        ))
    return Trace(records, name=trace_name, halted=halted,
                 initial_memory=initial_memory)


def dumps(trace: Trace) -> str:
    """Serialize to a string (tests / small traces)."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def loads(text: str) -> Trace:
    """Deserialize from a string."""
    return _read(io.StringIO(text))
