"""Dynamic instruction records and the retirement trace container."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.isa.instructions import Instruction, Opcode


class DynamicInstruction:
    """One retired dynamic instruction.

    Carries everything downstream models need: the static instruction, the
    sequence number (``seq``, the paper's ``Seq_Num``), source values, the
    result, the effective address for memory operations, and the control
    outcome (``taken``/``next_pc``) for branches.
    """

    __slots__ = (
        "seq",
        "pc",
        "inst",
        "src1_val",
        "src2_val",
        "result",
        "ea",
        "taken",
        "next_pc",
    )

    def __init__(
        self,
        seq: int,
        inst: Instruction,
        src1_val: int = 0,
        src2_val: int = 0,
        result: int = 0,
        ea: Optional[int] = None,
        taken: bool = False,
        next_pc: int = 0,
    ):
        self.seq = seq
        self.pc = inst.pc
        self.inst = inst
        self.src1_val = src1_val
        self.src2_val = src2_val
        self.result = result
        self.ea = ea
        self.taken = taken
        self.next_pc = next_pc

    @property
    def opcode(self) -> Opcode:
        return self.inst.opcode

    @property
    def is_control(self) -> bool:
        return self.inst.is_control

    @property
    def is_conditional_branch(self) -> bool:
        return self.inst.is_conditional_branch

    @property
    def is_path_terminating(self) -> bool:
        return self.inst.is_path_terminating

    @property
    def is_taken_control(self) -> bool:
        """True if this instruction redirected the PC."""
        return self.inst.is_control and self.taken

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.inst.is_control:
            extra = f" taken={self.taken} next={self.next_pc}"
        return f"<#{self.seq} pc={self.pc} {self.inst.disassemble()}{extra}>"


class Trace:
    """A retirement trace: an ordered list of :class:`DynamicInstruction`.

    ``halted`` records whether the program reached ``HALT`` before the
    instruction budget expired.
    """

    def __init__(self, records: Iterable[DynamicInstruction], name: str = "trace",
                 halted: bool = False, initial_memory: Optional[dict] = None):
        self.records: List[DynamicInstruction] = list(records)
        self.name = name
        self.halted = halted
        #: the data-segment image before the first instruction ran; the
        #: SSMT engine replays stores on top of this to give microthreads
        #: an architectural memory view.
        self.initial_memory: dict = initial_memory if initial_memory is not None else {}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return iter(self.records)

    def __getitem__(self, index: int) -> DynamicInstruction:
        return self.records[index]

    def conditional_branches(self) -> Iterator[DynamicInstruction]:
        return (r for r in self.records if r.is_conditional_branch)

    def branch_count(self) -> int:
        """Dynamic count of path-terminating (conditional or indirect) branches."""
        return sum(1 for r in self.records if r.is_path_terminating)

    def control_count(self) -> int:
        return sum(1 for r in self.records if r.is_control)
